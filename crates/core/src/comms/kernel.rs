//! The sharded halo-exchange dslash: the communication policies *executed*,
//! not just modeled.
//!
//! [`ShardedHopping`] runs the Wilson hopping stencil over a
//! [`DomainDecomposition`], exchanging face buffers between ranks through
//! the in-memory [`Mailboxes`] transport. The per-site arithmetic is
//! [`hop_site_block`] — the same per-column `hop_site` the single-domain
//! [`HoppingKernel`] calls, with the site's eight links fetched once —
//! applied to ghost spinors and gauge links gathered bit-exactly from the
//! global field, so the output is bit-identical to the single-domain kernel
//! at any rank grid, thread width, precision, and RHS block size. Batched
//! ([`ShardedField::zeros_block`]) fields carry all N right-hand-sides in
//! each halo frame: the message *count* is that of a single solve, frames
//! just grow N× fatter.
//!
//! The [`CommPolicy`] knobs change execution, not just a cost formula:
//!
//! - `Coarse` exchanges every direction, unpacks everything, then runs one
//!   fused pass over all sites (no overlap window).
//! - `Fine` posts all sends, computes the interior while messages are "in
//!   flight" (the measured overlap window), then pipelines per direction:
//!   unpack `mu`, compute the sites whose last missing ghosts were `mu`'s.
//! - `StagedDma` copies pack → staging → wire → ghost (3 copies/message),
//!   `ZeroCopy` packs straight into the wire buffer (2), and `GdrDirect`
//!   skips the channel: the receiver gathers the remote face in place (1).
//!
//! Every apply cross-checks its actual pack/unpack event counts against the
//! analytic expectation (exactly-once delivery) and accumulates
//! [`CommStats`], published to the `obs` registry as `comms.*` metrics.
//!
//! Halo messages travel through the CRC-framed [`FaultyTransport`], so
//! `apply` is fallible: with the (default) disabled fault profile every
//! exchange succeeds on the first attempt and results are bit-identical to
//! the fault-free kernel; with faults injected, recovered exchanges are
//! still bit-exact (the retransmit path redelivers the clean frame) and
//! unrecoverable ones surface as typed [`CommError`]s for the solver's
//! checkpoint-restart machinery ([`crate::solver::cg_ft`]). Injection and
//! recovery tallies are published post-parallel in a fixed order
//! (`comms.retries`, `comms.crc_failures`, `comms.timeouts`, plus
//! `comms.fault_injected`/`comms.crc_reject`/`comms.retry`/`comms.timeout`
//! events), so obs timelines are deterministic at any thread width.

use super::domain::{surviving_grid, DomainDecomposition};
use super::fault::{CommError, CommFaultProfile, CommRetryPolicy};
use super::transport::{CommFaultStats, CommStats, FaultyTransport, BOX_BWD, BOX_FWD};
use crate::dirac::{hop_site_block, MobiusDirac, MobiusParams, HOPPING_FLOPS_PER_SITE};
use crate::field::GaugeLinks;
use crate::lattice::{volume_string, Lattice, ND};
use crate::layout::SoaSpinorField;
use crate::real::Real;
use crate::solver::FallibleOp;
use crate::spinor::Spinor;
use crate::su3::Su3;
use autotune::{ParamSpace, TimingHarness, Tunable, TuneKey, TuneParam, Tuner};
use coral_machine::commpolicy::{CommGranularity, CommPolicy, CommTransport};
use obs::{Clock, Json, Registry, WallClock};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A 5D fermion vector — or an interleaved multi-RHS block of them —
/// sharded over the ranks of a decomposition: per-rank local storage
/// (s-major, RHS-innermost like [`crate::block::BlockSpinor`]) plus a ghost
/// region refreshed by each halo exchange. With `nrhs > 1` every halo frame
/// carries all columns of each face site, so N right-hand-sides ride one
/// exchange's worth of messages.
#[derive(Clone, Debug)]
pub struct ShardedField<R: Real> {
    l5: usize,
    nrhs: usize,
    v_loc: usize,
    ghost_len: usize,
    /// `locals[r][(s * v_loc + lx) * nrhs + j]`: rank `r`'s spinor at local
    /// site `lx`, fifth-dimension slice `s`, column `j`.
    locals: Vec<Vec<Spinor<R>>>,
    /// `ghosts[r][(s * ghost_len + e) * nrhs + j]`: ghost slot `e`.
    ghosts: Vec<Vec<Spinor<R>>>,
}

impl<R: Real> ShardedField<R> {
    /// All-zero field over `domain` with `l5` fifth-dimension slices.
    pub fn zeros(domain: &DomainDecomposition, l5: usize) -> Self {
        Self::zeros_block(domain, l5, 1)
    }

    /// All-zero `nrhs`-column block over `domain`.
    pub fn zeros_block(domain: &DomainDecomposition, l5: usize, nrhs: usize) -> Self {
        assert!(nrhs > 0, "a sharded block needs at least one column");
        let v_loc = domain.local_volume();
        let ghost_len = domain.ghost_len();
        Self {
            l5,
            nrhs,
            v_loc,
            ghost_len,
            locals: vec![vec![Spinor::zero(); l5 * v_loc * nrhs]; domain.n_ranks()],
            ghosts: vec![vec![Spinor::zero(); l5 * ghost_len * nrhs]; domain.n_ranks()],
        }
    }

    /// Shard a global s-major 5D vector (`l5 × volume` spinors) onto ranks.
    pub fn scatter(domain: &DomainDecomposition, global: &[Spinor<R>], l5: usize) -> Self {
        Self::scatter_block(domain, global, l5, 1)
    }

    /// Shard a global s-major, RHS-innermost block
    /// (`l5 × volume × nrhs` spinors, `global[(s*V + x)*nrhs + j]`).
    pub fn scatter_block(
        domain: &DomainDecomposition,
        global: &[Spinor<R>],
        l5: usize,
        nrhs: usize,
    ) -> Self {
        let v = domain.lattice().volume();
        assert_eq!(global.len(), l5 * v * nrhs, "global vector length mismatch");
        let mut f = Self::zeros_block(domain, l5, nrhs);
        let v_loc = f.v_loc;
        for (r, rank) in domain.ranks().iter().enumerate() {
            let local = &mut f.locals[r];
            for s in 0..l5 {
                for lx in 0..v_loc {
                    let g = rank.local_to_global[lx] as usize;
                    local[(s * v_loc + lx) * nrhs..(s * v_loc + lx + 1) * nrhs]
                        .copy_from_slice(&global[(s * v + g) * nrhs..(s * v + g + 1) * nrhs]);
                }
            }
        }
        f
    }

    /// Reassemble the global s-major (RHS-innermost) vector from the rank
    /// locals.
    pub fn gather_into(&self, domain: &DomainDecomposition, global: &mut [Spinor<R>]) {
        let v = domain.lattice().volume();
        let nrhs = self.nrhs;
        assert_eq!(
            global.len(),
            self.l5 * v * nrhs,
            "global vector length mismatch"
        );
        for (r, rank) in domain.ranks().iter().enumerate() {
            let local = &self.locals[r];
            for s in 0..self.l5 {
                for lx in 0..self.v_loc {
                    let g = rank.local_to_global[lx] as usize;
                    global[(s * v + g) * nrhs..(s * v + g + 1) * nrhs].copy_from_slice(
                        &local[(s * self.v_loc + lx) * nrhs..(s * self.v_loc + lx + 1) * nrhs],
                    );
                }
            }
        }
    }

    /// Shard a blocked-SoA 5D vector (`l5 × volume` spinors in
    /// [`SoaSpinorField`] lane order) onto ranks. The halo frames stay
    /// plain `Spinor` AoS on the wire, so storage layout is a per-rank
    /// choice that never changes what gets packed, sent, or unpacked — and
    /// the sharded apply stays bit-identical to the AoS scatter path.
    pub fn scatter_soa(domain: &DomainDecomposition, soa: &SoaSpinorField<R>, l5: usize) -> Self {
        let v = domain.lattice().volume();
        assert_eq!(soa.len(), l5 * v, "SoA vector length mismatch");
        let mut f = Self::zeros_block(domain, l5, 1);
        let v_loc = f.v_loc;
        for (r, rank) in domain.ranks().iter().enumerate() {
            let local = &mut f.locals[r];
            for s in 0..l5 {
                for lx in 0..v_loc {
                    let g = rank.local_to_global[lx] as usize;
                    local[s * v_loc + lx] = soa.get(s * v + g);
                }
            }
        }
        f
    }

    /// Reassemble the rank locals into a blocked-SoA vector (inverse of
    /// [`Self::scatter_soa`]; single-column fields only).
    pub fn gather_into_soa(&self, domain: &DomainDecomposition, out: &mut SoaSpinorField<R>) {
        let v = domain.lattice().volume();
        assert_eq!(self.nrhs, 1, "SoA gather is single-column");
        assert_eq!(out.len(), self.l5 * v, "SoA vector length mismatch");
        for (r, rank) in domain.ranks().iter().enumerate() {
            let local = &self.locals[r];
            for s in 0..self.l5 {
                for lx in 0..self.v_loc {
                    let g = rank.local_to_global[lx] as usize;
                    out.set(s * v + g, &local[s * self.v_loc + lx]);
                }
            }
        }
    }

    /// Fifth-dimension extent.
    pub fn l5(&self) -> usize {
        self.l5
    }

    /// Number of interleaved right-hand-side columns.
    pub fn nrhs(&self) -> usize {
        self.nrhs
    }
}

/// The decomposed hopping kernel.
pub struct ShardedHopping<R: Real> {
    domain: Arc<DomainDecomposition>,
    /// Per rank: gauge links over the *extended* index space,
    /// `links[r][e * ND + mu]`, gathered from the global field at
    /// construction (bit-identical to single-domain link fetches, including
    /// half-precision decode).
    links: Vec<Vec<Su3<R>>>,
    antiperiodic_t: bool,
    policy: CommPolicy,
    transport: FaultyTransport<R>,
    clock: Arc<dyn Clock>,
    stats: CommStats,
    /// Exchange sequence number: incremented on every apply *attempt*
    /// (successful or not), so frames stranded by a failed apply are stale
    /// by sequence number and deduped, never unpacked, on later applies.
    seq: u64,
    /// Transport fault-stat snapshot at the end of the previous apply, for
    /// per-apply delta publication.
    fault_base: CommFaultStats,
}

impl<R: Real> ShardedHopping<R> {
    /// Bind the kernel to a decomposition and gauge field under `policy`.
    pub fn new(
        domain: Arc<DomainDecomposition>,
        gauge: &impl GaugeLinks<R>,
        antiperiodic_t: bool,
        policy: CommPolicy,
    ) -> Self {
        assert_eq!(
            gauge.volume(),
            domain.lattice().volume(),
            "gauge/lattice mismatch"
        );
        let links = domain
            .ranks()
            .iter()
            .map(|rank| {
                let mut tbl = Vec::with_capacity(rank.local_to_global.len() * ND);
                for &g in &rank.local_to_global {
                    for mu in 0..ND {
                        tbl.push(gauge.link(g as usize, mu));
                    }
                }
                tbl
            })
            .collect();
        let transport = FaultyTransport::new(domain.n_ranks());
        Self {
            domain,
            links,
            antiperiodic_t,
            policy,
            transport,
            clock: Arc::new(WallClock::new()),
            stats: CommStats::default(),
            seq: 0,
            fault_base: CommFaultStats::default(),
        }
    }

    /// The decomposition.
    pub fn domain(&self) -> &Arc<DomainDecomposition> {
        &self.domain
    }

    /// Current communication policy.
    pub fn policy(&self) -> CommPolicy {
        self.policy
    }

    /// Switch communication policy (the autotuner's knob).
    pub fn set_policy(&mut self, policy: CommPolicy) {
        self.policy = policy;
    }

    /// Inject a time source for the overlap-window measurement (tests use
    /// `obs::ManualClock`).
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Cumulative execution statistics.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Zero the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CommStats::default();
    }

    /// Install a message-fault profile and retry policy on the transport.
    pub fn set_fault_profile(&mut self, profile: CommFaultProfile, retry: CommRetryPolicy) {
        self.transport.set_faults(profile, retry);
    }

    /// The transport's active fault profile.
    pub fn fault_profile(&self) -> &CommFaultProfile {
        self.transport.profile()
    }

    /// Cumulative transport injection/recovery statistics.
    pub fn fault_stats(&self) -> CommFaultStats {
        self.transport.fault_stats()
    }

    /// The next exchange sequence number (== apply attempts so far).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Send-side copies into intermediate buffers per message (before the
    /// wire) and total copies per message including the ghost unpack.
    fn copy_profile(&self) -> (u64, u64) {
        match self.policy.transport {
            CommTransport::StagedDma => (2, 3),
            CommTransport::ZeroCopy => (1, 2),
            CommTransport::GdrDirect => (0, 1),
        }
    }

    /// Pack and post both faces of partitioned direction `k` for every rank.
    /// No-op for GPU-Direct (the receiver gathers in [`Self::deliver_dim`]).
    ///
    /// Every rank attempts both its posts regardless of other ranks'
    /// failures, so the set of transmissions — and hence the deterministic
    /// injection draws — is independent of thread schedule; the surfaced
    /// error is the canonical minimum over all failures ([`merge_err`]).
    fn send_dim(
        &self,
        inp: &ShardedField<R>,
        k: usize,
        seq: u64,
        packs: &AtomicU64,
    ) -> Result<(), CommError> {
        if self.policy.transport == CommTransport::GdrDirect {
            return Ok(());
        }
        let staged = self.policy.transport == CommTransport::StagedDma;
        let domain = &self.domain;
        let transport = &self.transport;
        let l5 = inp.l5;
        let nrhs = inp.nrhs;
        let v_loc = inp.v_loc;
        let locals = &inp.locals;
        let first_err: Mutex<Option<CommError>> = Mutex::new(None);
        rayon::for_each_chunk(domain.n_ranks(), 1, |ranks| {
            for r in ranks {
                let ex = &domain.ranks()[r].exchanges[k];
                let local = &locals[r];
                let post = |face: &[u32], dest: usize, side: usize| -> Result<(), CommError> {
                    // Batched faces: one frame carries every RHS column of
                    // each face site (columns innermost, like the storage).
                    let mut buf = Vec::with_capacity(l5 * ex.face_len * nrhs);
                    for s in 0..l5 {
                        for &lx in face {
                            let base = (s * v_loc + lx as usize) * nrhs;
                            buf.extend_from_slice(&local[base..base + nrhs]);
                        }
                    }
                    let wire = if staged {
                        // Stage through a second buffer: the DMA-to-CPU copy
                        // the staged transport pays before MPI sees the data.
                        buf.clone()
                    } else {
                        buf
                    };
                    transport.send(r, dest, ex.mu, side, wire, seq)?;
                    packs.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                };
                // Low face backward: fills the backward neighbor's forward
                // ghost zone. High face forward: the converse.
                if let Err(e) = post(&ex.low_face, ex.bwd_rank, BOX_FWD) {
                    merge_err(&first_err, e);
                }
                if let Err(e) = post(&ex.high_face, ex.fwd_rank, BOX_BWD) {
                    merge_err(&first_err, e);
                }
            }
        });
        let taken = first_err.lock().take();
        match taken {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Fill every rank's ghost zones for partitioned direction `k`: receive
    /// and unpack the two expected frames (CRC-verified, retried, deduped by
    /// the transport), or (GPU-Direct) gather the neighbor faces straight
    /// out of their local storage — no wire, so immune to message faults,
    /// but a dead peer still surfaces as [`CommError::RankLost`].
    fn deliver_dim(
        &self,
        inp: &mut ShardedField<R>,
        k: usize,
        seq: u64,
        unpacks: &AtomicU64,
    ) -> Result<(), CommError> {
        let gdr = self.policy.transport == CommTransport::GdrDirect;
        let domain = &self.domain;
        let transport = &self.transport;
        let l5 = inp.l5;
        let nrhs = inp.nrhs;
        let v_loc = inp.v_loc;
        let ghost_len = inp.ghost_len;
        let locals = &inp.locals;
        let first_err: Mutex<Option<CommError>> = Mutex::new(None);
        rayon::for_each_chunk_mut(&mut inp.ghosts, 1, |r, chunk| {
            let ghosts = &mut chunk[0];
            let ex = &domain.ranks()[r].exchanges[k];
            if gdr {
                for rank in [r, ex.fwd_rank, ex.bwd_rank] {
                    if !transport.rank_alive(rank, seq) {
                        merge_err(&first_err, CommError::RankLost { rank });
                        return;
                    }
                }
                let mut gather = |src_rank: usize, face: &[u32], base: usize| {
                    let src = &locals[src_rank];
                    for s in 0..l5 {
                        for (i, &lx) in face.iter().enumerate() {
                            let dst = (s * ghost_len + base + i) * nrhs;
                            let from = (s * v_loc + lx as usize) * nrhs;
                            ghosts[dst..dst + nrhs].copy_from_slice(&src[from..from + nrhs]);
                        }
                    }
                    unpacks.fetch_add(1, Ordering::Relaxed);
                };
                // Forward ghosts are the forward neighbor's low face.
                let fwd = &domain.ranks()[ex.fwd_rank].exchanges[k];
                gather(ex.fwd_rank, &fwd.low_face, ex.fwd_ghost_base);
                let bwd = &domain.ranks()[ex.bwd_rank].exchanges[k];
                gather(ex.bwd_rank, &bwd.high_face, ex.bwd_ghost_base);
            } else {
                let mut unpack = |side: usize, src: usize, base: usize| -> Result<(), CommError> {
                    let buf = transport.recv(r, ex.mu, side, src, seq, l5 * ex.face_len * nrhs)?;
                    for s in 0..l5 {
                        for i in 0..ex.face_len {
                            let dst = (s * ghost_len + base + i) * nrhs;
                            let from = (s * ex.face_len + i) * nrhs;
                            ghosts[dst..dst + nrhs].copy_from_slice(&buf[from..from + nrhs]);
                        }
                    }
                    unpacks.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                };
                // Forward ghost zone holds the forward neighbor's low face.
                let res = unpack(BOX_FWD, ex.fwd_rank, ex.fwd_ghost_base)
                    .and_then(|()| unpack(BOX_BWD, ex.bwd_rank, ex.bwd_ghost_base));
                if let Err(e) = res {
                    merge_err(&first_err, e);
                }
            }
        });
        let taken = first_err.lock().take();
        match taken {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Compute `out = H inp` on a per-rank list of local sites (`None`: all
    /// sites). Each output site is written exactly once by shared
    /// [`hop_site`] arithmetic, so results are bit-identical at any thread
    /// width and for any site-list schedule.
    fn compute(&self, out: &mut ShardedField<R>, inp: &ShardedField<R>, which: SiteSet) -> u64 {
        let domain = &self.domain;
        let links = &self.links;
        let apbc = self.antiperiodic_t;
        let l5 = inp.l5;
        let nrhs = inp.nrhs;
        let v_loc = inp.v_loc;
        let ghost_len = inp.ghost_len;
        let in_locals = &inp.locals;
        let in_ghosts = &inp.ghosts;
        let counted = AtomicU64::new(0);
        rayon::for_each_chunk_mut(&mut out.locals, 1, |r, chunk| {
            let o = &mut chunk[0];
            let rank = &domain.ranks()[r];
            let lk = &links[r];
            let loc = &in_locals[r];
            let gh = &in_ghosts[r];
            let link = |site: usize, mu: usize| lk[site * ND + mu];
            let mut run_list = |sites: &mut dyn Iterator<Item = usize>| {
                let mut n = 0u64;
                for lx in sites {
                    let nb = &rank.neighbors[lx];
                    for s in 0..l5 {
                        let base_l = s * v_loc;
                        let base_g = s * ghost_len;
                        let fetch = |e: usize, j: usize| {
                            if e < v_loc {
                                loc[(base_l + e) * nrhs + j]
                            } else {
                                gh[(base_g + e - v_loc) * nrhs + j]
                            }
                        };
                        // One link fetch per site feeds every RHS column.
                        let row = &mut o[(base_l + lx) * nrhs..(base_l + lx + 1) * nrhs];
                        hop_site_block(nb, lx, apbc, &fetch, &link, row);
                    }
                    n += l5 as u64;
                }
                counted.fetch_add(n, Ordering::Relaxed);
            };
            match which {
                SiteSet::All => run_list(&mut (0..v_loc)),
                SiteSet::Interior => run_list(&mut rank.interior.iter().map(|&x| x as usize)),
                SiteSet::Boundary(k) => run_list(&mut rank.boundary[k].iter().map(|&x| x as usize)),
            }
        });
        counted.load(Ordering::Relaxed)
    }

    /// The exchange + compute phases of one apply attempt under sequence
    /// number `seq`. Stops at the first failing direction.
    fn exchange(
        &self,
        out: &mut ShardedField<R>,
        inp: &mut ShardedField<R>,
        seq: u64,
        packs: &AtomicU64,
        unpacks: &AtomicU64,
        overlap: &mut f64,
    ) -> Result<(u64, u64), CommError> {
        let n_dims = self.domain.decomp().halos.len();
        match self.policy.granularity {
            CommGranularity::Coarse => {
                // Exchange everything, then one fused pass over all sites.
                for k in 0..n_dims {
                    self.send_dim(inp, k, seq, packs)?;
                }
                for k in 0..n_dims {
                    self.deliver_dim(inp, k, seq, unpacks)?;
                }
                Ok((0, self.compute(out, inp, SiteSet::All)))
            }
            CommGranularity::Fine => {
                // Post all sends, overlap interior compute with the
                // "in-flight" messages, then pipeline per direction.
                for k in 0..n_dims {
                    self.send_dim(inp, k, seq, packs)?;
                }
                let t0 = self.clock.now();
                let interior = self.compute(out, inp, SiteSet::Interior);
                *overlap = self.clock.now() - t0;
                let mut boundary = 0;
                for k in 0..n_dims {
                    self.deliver_dim(inp, k, seq, unpacks)?;
                    boundary += self.compute(out, inp, SiteSet::Boundary(k));
                }
                Ok((interior, boundary))
            }
        }
    }

    /// `out = H inp` over every rank, exchanging halos under the current
    /// policy. `inp` is mutable because the exchange refreshes its ghost
    /// zones; local (owned) input sites are never written.
    ///
    /// Fallible: an exchange the transport could not heal within its retry
    /// budget — or one touching a lost rank — surfaces as a typed
    /// [`CommError`], with `out`'s contents unspecified. Fault-stat deltas
    /// are published to obs on *every* attempt (a failed apply still leaves
    /// its forensic trail); [`CommStats`] only advance on success.
    pub fn apply(
        &mut self,
        out: &mut ShardedField<R>,
        inp: &mut ShardedField<R>,
    ) -> Result<(), CommError> {
        let l5 = inp.l5;
        assert_eq!(out.l5, l5, "l5 mismatch");
        assert_eq!(out.nrhs, inp.nrhs, "nrhs mismatch");
        assert_eq!(inp.v_loc, self.domain.local_volume(), "input shape");
        assert_eq!(out.v_loc, self.domain.local_volume(), "output shape");
        let seq = self.seq;
        self.seq += 1;
        let packs = AtomicU64::new(0);
        let unpacks = AtomicU64::new(0);
        let mut overlap = 0.0;
        let outcome = self.exchange(out, inp, seq, &packs, &unpacks, &mut overlap);

        // Injection/recovery deltas go out before any error does, in fixed
        // post-parallel order — deterministic timelines at any thread width.
        let fault_now = self.transport.fault_stats();
        let fault_delta = fault_now.delta(&self.fault_base);
        self.fault_base = fault_now;
        publish_faults(&fault_delta);

        let (interior_sites, boundary_sites) = outcome?;

        // Exactly-once delivery, cross-checked against the analytic message
        // count every apply.
        let expected_msgs = self.domain.total_messages_per_apply() as u64;
        let gdr = self.policy.transport == CommTransport::GdrDirect;
        assert_eq!(
            packs.load(Ordering::Relaxed),
            if gdr { 0 } else { expected_msgs },
            "every face must be packed exactly once"
        );
        assert_eq!(
            unpacks.load(Ordering::Relaxed),
            expected_msgs,
            "every ghost zone must be filled exactly once"
        );
        let total_sites = (self.domain.n_ranks() * self.domain.local_volume() * l5) as u64;
        assert_eq!(
            interior_sites + boundary_sites,
            total_sites,
            "interior/boundary passes must tile the lattice"
        );

        // Halo spinors delivered: both faces of every partitioned direction,
        // per rank, l5-fat messages, every RHS column per face site.
        let halo_sites: u64 = self
            .domain
            .ranks()
            .iter()
            .flat_map(|rank| rank.exchanges.iter())
            .map(|ex| 2 * (ex.face_len * l5 * inp.nrhs) as u64)
            .sum();
        let spinor_bytes = std::mem::size_of::<Spinor<R>>() as u64;
        let (pack_copies, total_copies) = self.copy_profile();
        let d = CommStats {
            applies: 1,
            messages: expected_msgs,
            halo_sites,
            bytes_packed: pack_copies * halo_sites * spinor_bytes,
            bytes_sent: halo_sites * spinor_bytes,
            copies: total_copies * expected_msgs,
            sites_interior: interior_sites,
            sites_boundary: boundary_sites,
            overlap_seconds: overlap,
        };
        self.stats.applies += d.applies;
        self.stats.messages += d.messages;
        self.stats.halo_sites += d.halo_sites;
        self.stats.bytes_packed += d.bytes_packed;
        self.stats.bytes_sent += d.bytes_sent;
        self.stats.copies += d.copies;
        self.stats.sites_interior += d.sites_interior;
        self.stats.sites_boundary += d.sites_boundary;
        self.stats.overlap_seconds += d.overlap_seconds;
        publish(&d);
        Ok(())
    }

    /// Flops of one apply (the standard Wilson-dslash figure over all
    /// ranks).
    pub fn flops_per_apply(&self, l5: usize) -> f64 {
        (self.domain.n_ranks() * self.domain.local_volume() * l5) as f64 * HOPPING_FLOPS_PER_SITE
    }
}

/// Which sites a compute pass covers.
#[derive(Clone, Copy)]
enum SiteSet {
    All,
    Interior,
    Boundary(usize),
}

/// Keep the canonical error of a parallel exchange pass: [`CommError::RankLost`]
/// beats wire faults, then lowest (rank, mu, side) wins — so the surfaced
/// error is independent of thread schedule.
fn merge_err(slot: &Mutex<Option<CommError>>, e: CommError) {
    fn key(e: &CommError) -> (u8, usize, usize, usize) {
        match *e {
            CommError::RankLost { rank } => (0, rank, 0, 0),
            CommError::ChannelClosed { rank, mu, side } => (1, rank, mu, side),
            CommError::Corrupt { rank, mu, side, .. } => (1, rank, mu, side),
            CommError::Missing { rank, mu, side, .. } => (1, rank, mu, side),
            CommError::SizeMismatch { rank, mu, side } => (1, rank, mu, side),
        }
    }
    let mut g = slot.lock();
    match &*g {
        Some(cur) if key(cur) <= key(&e) => {}
        _ => *g = Some(e),
    }
}

/// Publish one apply's injection/recovery deltas: the `comms.retries` /
/// `comms.crc_failures` / `comms.timeouts` counters plus fixed-order events
/// for golden timelines. A fault-free apply publishes nothing, so existing
/// metric goldens are untouched.
fn publish_faults(d: &CommFaultStats) {
    if *d == CommFaultStats::default() {
        return;
    }
    let reg = Registry::current();
    reg.counter("comms.crc_failures").add(d.crc_failures);
    reg.counter("comms.timeouts").add(d.timeouts);
    reg.counter("comms.retries").add(d.retries);
    reg.counter("comms.duplicates_dropped")
        .add(d.duplicates_dropped);
    reg.float_counter("comms.backoff_seconds")
        .add(d.backoff_seconds);
    let injected = [
        ("corrupt", d.injected_corruptions),
        ("drop", d.injected_drops),
        ("duplicate", d.injected_duplicates),
        ("reorder", d.injected_reorders),
        ("delay", d.injected_delays),
    ];
    for (kind, n) in injected {
        if n > 0 {
            reg.event(
                "comms.fault_injected",
                vec![("kind", Json::from(kind)), ("count", Json::from(n))],
            );
        }
    }
    if d.crc_failures > 0 {
        reg.event(
            "comms.crc_reject",
            vec![("count", Json::from(d.crc_failures))],
        );
    }
    if d.timeouts > 0 {
        reg.event("comms.timeout", vec![("count", Json::from(d.timeouts))]);
    }
    if d.retries > 0 {
        reg.event(
            "comms.retry",
            vec![
                ("count", Json::from(d.retries)),
                ("backoff_seconds", Json::from(d.backoff_seconds)),
            ],
        );
    }
}

/// Publish one apply's stat deltas as `comms.*` metrics.
fn publish(d: &CommStats) {
    let reg = Registry::current();
    reg.counter("comms.messages").add(d.messages);
    reg.counter("comms.halo_sites").add(d.halo_sites);
    reg.counter("comms.bytes_packed").add(d.bytes_packed);
    reg.counter("comms.bytes_sent").add(d.bytes_sent);
    reg.counter("comms.copies").add(d.copies);
    reg.counter("comms.sites_interior").add(d.sites_interior);
    reg.counter("comms.sites_boundary").add(d.sites_boundary);
    reg.float_counter("comms.overlap_seconds")
        .add(d.overlap_seconds);
}

/// Autotune adapter: sweeps the policy index over [`CommPolicy::all`] with
/// measured (injected-clock) timings, per (geometry, precision, rank grid).
struct PolicySweep<'a, R: Real> {
    kernel: &'a mut ShardedHopping<R>,
    out: &'a mut ShardedField<R>,
    inp: &'a mut ShardedField<R>,
}

impl<'a, R: Real> Tunable for PolicySweep<'a, R> {
    fn key(&self) -> TuneKey {
        TuneKey::new(
            "comms_dslash",
            format!(
                "{}x{}",
                volume_string(self.kernel.domain.lattice().dims()),
                self.inp.l5
            ),
            format!("prec={},grid={}", R::NAME, self.kernel.domain.grid_string()),
        )
        .with_nrhs(self.inp.nrhs)
    }

    fn param_space(&self) -> ParamSpace {
        ParamSpace::policies(CommPolicy::all().len())
    }

    fn run(&mut self, param: TuneParam) {
        self.kernel.set_policy(policy_from_index(param.policy));
        if let Err(e) = self.kernel.apply(self.out, self.inp) {
            unreachable!("autotune sweeps require a fault-free transport: {e}");
        }
    }

    fn harness(&self) -> TimingHarness {
        TimingHarness::WallClock { reps: 2 }
    }

    fn flops(&self) -> f64 {
        self.kernel.flops_per_apply(self.inp.l5) * self.inp.nrhs as f64
    }
}

/// Stable policy-index decoding shared by the sweep and its consumers.
pub fn policy_from_index(idx: usize) -> CommPolicy {
    let all = CommPolicy::all();
    all[idx % all.len()]
}

/// Sweep every communication policy on `kernel` through `tuner` (measured
/// timings via the tuner's injected clock), leave the winner installed, and
/// return it. Cached per (geometry, L5, precision, rank grid).
pub fn tune_comm_policy<R: Real>(
    tuner: &Tuner,
    kernel: &mut ShardedHopping<R>,
    out: &mut ShardedField<R>,
    inp: &mut ShardedField<R>,
) -> CommPolicy {
    assert!(
        !kernel.fault_profile().enabled(),
        "policy tuning must run on a fault-free transport"
    );
    let param = tuner.tune(&mut PolicySweep { kernel, out, inp });
    let best = policy_from_index(param.policy);
    kernel.set_policy(best);
    best
}

/// The Möbius domain-wall operator with its 4D hopping term executed by the
/// sharded halo-exchange kernel. The fifth-dimension algebra is
/// [`MobiusDirac`]'s own, so the full apply is bit-identical to the
/// single-domain operator.
pub struct ShardedMobius<'a, R: Real, G: GaugeLinks<R>> {
    mobius: MobiusDirac<'a, R, G>,
    hop: ShardedHopping<R>,
}

impl<'a, R: Real, G: GaugeLinks<R>> ShardedMobius<'a, R, G> {
    /// Bind the operator. `domain` must decompose `lattice`.
    pub fn new(
        lattice: &'a Lattice,
        gauge: &'a G,
        params: MobiusParams,
        domain: Arc<DomainDecomposition>,
        policy: CommPolicy,
    ) -> Self {
        assert_eq!(
            domain.lattice().volume(),
            lattice.volume(),
            "domain/lattice mismatch"
        );
        // Antiperiodic-t matches MobiusDirac::new (the physical choice).
        let hop = ShardedHopping::new(domain, gauge, true, policy);
        Self {
            mobius: MobiusDirac::new(lattice, gauge, params),
            hop,
        }
    }

    /// The sharded hopping kernel (policy knob, stats, clock injection).
    pub fn hopping_mut(&mut self) -> &mut ShardedHopping<R> {
        &mut self.hop
    }

    /// Vector length of the operator (`L5 × volume`).
    pub fn vec_len(&self) -> usize {
        self.mobius.params().l5 * self.mobius.lattice().volume()
    }

    /// `out = D inp` on global s-major 5D vectors: scatter the hopping
    /// operand, run the decomposed dslash, gather — fifth-dimension algebra
    /// untouched. On a comm failure, `out` is unspecified and the error is
    /// surfaced for the solver's recovery machinery.
    pub fn apply(&mut self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) -> Result<(), CommError> {
        let Self { mobius, hop } = self;
        let l5 = mobius.params().l5;
        let domain = hop.domain().clone();
        let mut err = None;
        mobius.apply_with_hop(out, inp, &mut |o, i| {
            if err.is_some() {
                return;
            }
            let mut si = ShardedField::scatter(&domain, i, l5);
            let mut so = ShardedField::zeros(&domain, l5);
            match hop.apply(&mut so, &mut si) {
                Ok(()) => so.gather_into(&domain, o),
                Err(e) => err = Some(e),
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Fifth-dimension extent × volume geometry parameters.
    pub fn params(&self) -> &MobiusParams {
        self.mobius.params()
    }

    /// `out = D† inp` with the sharded hopping term (`H† = γ5 H γ5`),
    /// fallible like [`Self::apply`].
    pub fn apply_dagger(
        &mut self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
    ) -> Result<(), CommError> {
        let Self { mobius, hop } = self;
        let l5 = mobius.params().l5;
        let domain = hop.domain().clone();
        let mut err = None;
        mobius.apply_dagger_with_hop(out, inp, &mut |o, i| {
            if err.is_some() {
                return;
            }
            let mut si = ShardedField::scatter(&domain, i, l5);
            let mut so = ShardedField::zeros(&domain, l5);
            match hop.apply(&mut so, &mut si) {
                Ok(()) => so.gather_into(&domain, o),
                Err(e) => err = Some(e),
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Batched [`Self::apply`] on RHS-innermost interleaved vectors: one
    /// halo exchange's worth of messages serves all `nrhs` columns, and
    /// column `j` is bit-identical to `apply` on the packed column.
    pub fn apply_block(
        &mut self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        nrhs: usize,
    ) -> Result<(), CommError> {
        let Self { mobius, hop } = self;
        let l5 = mobius.params().l5;
        let domain = hop.domain().clone();
        let mut err = None;
        mobius.apply_block_with_hop(out, inp, nrhs, &mut |o, i, n| {
            if err.is_some() {
                return;
            }
            let mut si = ShardedField::scatter_block(&domain, i, l5, n);
            let mut so = ShardedField::zeros_block(&domain, l5, n);
            match hop.apply(&mut so, &mut si) {
                Ok(()) => so.gather_into(&domain, o),
                Err(e) => err = Some(e),
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Batched [`Self::apply_dagger`], fallible like [`Self::apply_block`].
    pub fn apply_dagger_block(
        &mut self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        nrhs: usize,
    ) -> Result<(), CommError> {
        let Self { mobius, hop } = self;
        let l5 = mobius.params().l5;
        let domain = hop.domain().clone();
        let mut err = None;
        mobius.apply_dagger_block_with_hop(out, inp, nrhs, &mut |o, i, n| {
            if err.is_some() {
                return;
            }
            let mut si = ShardedField::scatter_block(&domain, i, l5, n);
            let mut so = ShardedField::zeros_block(&domain, l5, n);
            match hop.apply(&mut so, &mut si) {
                Ok(()) => so.gather_into(&domain, o),
                Err(e) => err = Some(e),
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// The fallible Möbius normal operator `D†D` over a sharded halo exchange,
/// with graceful rank-loss degradation: the operator [`crate::solver::cg_ft`]
/// drives through checkpoint-restart.
///
/// On a transient [`CommError`] (corruption/drop retries exhausted),
/// [`FallibleOp::recover`] is a no-op — the transport is still usable and
/// the solver simply restores its last checkpoint. On
/// [`CommError::RankLost`], recovery re-runs [`DomainDecomposition`] on the
/// surviving rank grid ([`surviving_grid`]), regathers the extended link
/// tables from the global gauge field, and clears the dead rank from the
/// fault profile; because the sharded apply is bit-identical at *any* rank
/// grid, the restored CG recurrence continues the exact bit sequence of the
/// no-fault run.
pub struct ShardedNormal<'a, R: Real, G: GaugeLinks<R>> {
    lattice: &'a Lattice,
    gauge: &'a G,
    params: MobiusParams,
    gpus_per_node: usize,
    policy: CommPolicy,
    retry: CommRetryPolicy,
    grid: [usize; ND],
    op: ShardedMobius<'a, R, G>,
    degradations: usize,
    tmp: Vec<Spinor<R>>,
}

impl<'a, R: Real, G: GaugeLinks<R>> ShardedNormal<'a, R, G> {
    /// Bind the operator on `grid`. `None` if the grid does not decompose
    /// the lattice.
    pub fn new(
        lattice: &'a Lattice,
        gauge: &'a G,
        params: MobiusParams,
        grid: [usize; ND],
        gpus_per_node: usize,
        policy: CommPolicy,
    ) -> Option<Self> {
        let domain = DomainDecomposition::new(lattice, grid, params.l5, gpus_per_node)?;
        let op = ShardedMobius::new(lattice, gauge, params, Arc::new(domain), policy);
        let n = op.vec_len();
        Some(Self {
            lattice,
            gauge,
            params,
            gpus_per_node,
            policy,
            retry: CommRetryPolicy::default(),
            grid,
            op,
            degradations: 0,
            tmp: vec![Spinor::zero(); n],
        })
    }

    /// Install a message-fault profile and retry policy.
    pub fn set_fault_profile(&mut self, profile: CommFaultProfile, retry: CommRetryPolicy) {
        self.retry = retry;
        self.op.hopping_mut().set_fault_profile(profile, retry);
    }

    /// The rank grid currently executing (shrinks on degradation).
    pub fn grid(&self) -> [usize; ND] {
        self.grid
    }

    /// How many times the operator has degraded to a smaller grid.
    pub fn degradations(&self) -> usize {
        self.degradations
    }

    /// Cumulative transport injection/recovery statistics (reset on
    /// degradation — the transport is rebuilt).
    pub fn fault_stats(&self) -> CommFaultStats {
        self.op.hop.fault_stats()
    }

    /// The inner sharded operator (policy knob, clock injection).
    pub fn mobius_mut(&mut self) -> &mut ShardedMobius<'a, R, G> {
        &mut self.op
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> FallibleOp<R> for ShardedNormal<'a, R, G> {
    fn vec_len(&self) -> usize {
        self.op.vec_len()
    }

    fn apply(&mut self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) -> Result<(), CommError> {
        self.op.apply(&mut self.tmp, inp)?;
        self.op.apply_dagger(out, &self.tmp)
    }

    fn flops_per_apply(&self) -> f64 {
        // D then D†: twice the Möbius figure (hopping + ~250 affine flops
        // per 5D site, matching `MobiusDirac::flops_per_apply`).
        2.0 * self.op.vec_len() as f64 * (HOPPING_FLOPS_PER_SITE + 250.0)
    }

    fn recover(&mut self, err: &CommError) -> Result<(), CommError> {
        let CommError::RankLost { rank } = *err else {
            // Transient wire failure: the transport survives; the solver
            // restores from checkpoint and the next apply redraws its fates.
            return Ok(());
        };
        let from = self.grid;
        let to = surviving_grid(from).ok_or(*err)?;
        let domain = DomainDecomposition::new(self.lattice, to, self.params.l5, self.gpus_per_node)
            .ok_or(*err)?;
        // Rebuild the operator on the shrunken grid: fresh transport, link
        // tables regathered from the global gauge field. The dead rank no
        // longer exists, so it leaves the fault profile; wire-fault rates
        // stay active.
        let mut profile = *self.op.hop.fault_profile();
        profile.lost_rank = None;
        self.op = ShardedMobius::new(
            self.lattice,
            self.gauge,
            self.params,
            Arc::new(domain),
            self.policy,
        );
        self.op.hopping_mut().set_fault_profile(profile, self.retry);
        self.grid = to;
        self.degradations += 1;
        let reg = Registry::current();
        reg.counter("comms.rank_losses").add(1);
        reg.event(
            "comms.degrade",
            vec![
                ("rank", Json::from(rank)),
                ("from", Json::from(grid_label(from))),
                ("to", Json::from(grid_label(to))),
            ],
        );
        Ok(())
    }
}

/// Batched analogue of the [`FallibleOp`] impl: the whole interleaved block
/// rides one exchange per apply, and each column's result is bit-identical
/// to the single-RHS operator. Rank-loss recovery is shared with the
/// single-RHS path through [`FallibleOp::recover`].
impl<'a, R: Real, G: GaugeLinks<R>> crate::solver::BlockOp<R> for ShardedNormal<'a, R, G> {
    fn vec_len(&self) -> usize {
        self.op.vec_len()
    }

    fn apply_block(
        &mut self,
        out: &mut crate::block::BlockSpinor<R>,
        inp: &crate::block::BlockSpinor<R>,
    ) -> Result<(), CommError> {
        let nrhs = inp.nrhs();
        let mut tmp = vec![Spinor::zero(); self.op.vec_len() * nrhs];
        self.op.apply_block(&mut tmp, inp.data(), nrhs)?;
        self.op.apply_dagger_block(out.data_mut(), &tmp, nrhs)
    }

    fn flops_per_apply(&self) -> f64 {
        FallibleOp::flops_per_apply(self)
    }
}

/// `[2,2,1,1]` → `"2x2x1x1"` (free-function twin of
/// [`DomainDecomposition::grid_string`] for grids not yet decomposed).
pub fn grid_label(g: [usize; ND]) -> String {
    format!("{}x{}x{}x{}", g[0], g[1], g[2], g[3])
}
