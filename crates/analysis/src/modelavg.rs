//! Model averaging over fit windows with Akaike weights.
//!
//! The paper's Nature-level analysis does not pick one fit window by hand:
//! it averages over candidate fits weighted by information criteria, so the
//! window choice becomes part of the quoted uncertainty. This module
//! implements that procedure for the `g_eff` plateau fits.

use crate::fit::{curve_fit, FitResult, FitSettings};
use serde::{Deserialize, Serialize};

/// One candidate fit with its Akaike weight.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeightedFit {
    /// Fit window `[t_min, t_max]` (inclusive).
    pub window: (usize, usize),
    /// Best-fit primary parameter (e.g. gA).
    pub value: f64,
    /// Its error from the fit.
    pub error: f64,
    /// χ² of the fit.
    pub chi2: f64,
    /// Degrees of freedom.
    pub dof: usize,
    /// Normalized Akaike weight.
    pub weight: f64,
}

/// Model-averaged result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelAverage {
    /// Weighted mean of the primary parameter.
    pub value: f64,
    /// Total error: fit error ⊕ window-spread (model) error.
    pub error: f64,
    /// Statistical component.
    pub stat_error: f64,
    /// Model-spread component.
    pub model_error: f64,
    /// The individual fits.
    pub fits: Vec<WeightedFit>,
}

/// Fit `model` to `(xs, ys, sigmas)` on every window `[t_min, t_max]` with
/// `t_min` in `t_min_range`, a fixed `t_max`, and at least `min_points`
/// points; average the `param_index`-th parameter with AIC weights
/// `w ∝ exp(−(χ² + 2k)/2)`.
#[allow(clippy::too_many_arguments)]
pub fn model_average<F>(
    xs: &[f64],
    ys: &[f64],
    sigmas: &[f64],
    model: F,
    p0: &[f64],
    t_min_range: std::ops::Range<usize>,
    min_points: usize,
    param_index: usize,
) -> ModelAverage
where
    F: Fn(f64, &[f64]) -> f64 + Copy,
{
    let n = xs.len();
    let mut fits: Vec<(WeightedFit, FitResult)> = Vec::new();
    for t_min in t_min_range {
        if n.saturating_sub(t_min) < min_points {
            continue;
        }
        let fit = curve_fit(
            &xs[t_min..],
            &ys[t_min..],
            &sigmas[t_min..],
            model,
            p0,
            &FitSettings::default(),
        );
        if !fit.converged || !fit.params[param_index].is_finite() {
            continue;
        }
        // AIC with k = #params, up to a window-independent constant.
        let aic = fit.chi2 + 2.0 * p0.len() as f64;
        fits.push((
            WeightedFit {
                window: (t_min, n - 1),
                value: fit.params[param_index],
                error: fit.errors[param_index],
                chi2: fit.chi2,
                dof: fit.dof,
                weight: (-0.5 * aic).exp(),
            },
            fit,
        ));
    }
    assert!(!fits.is_empty(), "no fit window converged");

    // Normalize weights against overflow by subtracting the max AIC.
    let max_w = fits
        .iter()
        .map(|(w, _)| w.weight)
        .fold(0.0f64, f64::max)
        .max(1e-300);
    let mut total = 0.0;
    for (w, _) in fits.iter_mut() {
        w.weight /= max_w;
        total += w.weight;
    }
    for (w, _) in fits.iter_mut() {
        w.weight /= total;
    }

    let value: f64 = fits.iter().map(|(w, _)| w.weight * w.value).sum();
    let stat2: f64 = fits.iter().map(|(w, _)| w.weight * w.error * w.error).sum();
    let model2: f64 = fits
        .iter()
        .map(|(w, _)| w.weight * (w.value - value) * (w.value - value))
        .sum();

    ModelAverage {
        value,
        error: (stat2 + model2).sqrt(),
        stat_error: stat2.sqrt(),
        model_error: model2.sqrt(),
        fits: fits.into_iter().map(|(w, _)| w).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn gauss(rng: &mut SmallRng) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn synthetic_geff(seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let xs: Vec<f64> = (1..14).map(|t| t as f64).collect();
        let sigmas: Vec<f64> = xs.iter().map(|&x| 0.003 * (0.3 * x).exp()).collect();
        let ys: Vec<f64> = xs
            .iter()
            .zip(&sigmas)
            .map(|(&x, &s)| 1.271 - 0.27 * (-0.3 * x).exp() + s * gauss(&mut rng))
            .collect();
        (xs, ys, sigmas)
    }

    #[test]
    fn average_recovers_truth_within_errors() {
        let (xs, ys, sigmas) = synthetic_geff(3);
        let avg = model_average(
            &xs,
            &ys,
            &sigmas,
            |x, p| p[0] + p[1] * (-0.3 * x).exp(),
            &[1.2, -0.3],
            0..6,
            5,
            0,
        );
        assert!(
            (avg.value - 1.271).abs() < 4.0 * avg.error + 0.01,
            "{} ± {}",
            avg.value,
            avg.error
        );
        assert!(avg.error >= avg.stat_error, "total includes model spread");
        let wsum: f64 = avg.fits.iter().map(|f| f.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-12, "weights normalized");
    }

    #[test]
    fn bad_windows_are_downweighted() {
        // A constant-only model is wrong at early times; windows that start
        // early must get lower weight than windows past the contamination.
        let (xs, ys, sigmas) = synthetic_geff(7);
        let avg = model_average(&xs, &ys, &sigmas, |_x, p| p[0], &[1.2], 0..8, 4, 0);
        let early = avg.fits.iter().find(|f| f.window.0 == 0).expect("fit");
        let late_best = avg
            .fits
            .iter()
            .filter(|f| f.window.0 >= 5)
            .map(|f| f.weight)
            .fold(0.0f64, f64::max);
        assert!(
            late_best > early.weight,
            "contaminated window should lose: {} vs {}",
            early.weight,
            late_best
        );
    }

    #[test]
    fn model_error_vanishes_for_consistent_windows() {
        // Pure-plateau data: every window gives the same answer, so the
        // model spread is tiny.
        let xs: Vec<f64> = (1..12).map(|t| t as f64).collect();
        let ys = vec![1.271; xs.len()];
        let sigmas = vec![0.01; xs.len()];
        let avg = model_average(&xs, &ys, &sigmas, |_x, p| p[0], &[1.0], 0..5, 4, 0);
        assert!(avg.model_error < 1e-10);
        assert!((avg.value - 1.271).abs() < 1e-10);
    }
}
