//! Sanctioned module: this is the clock abstraction itself, so R2's ban on
//! raw time does not apply here.

/// Seconds from an arbitrary origin.
pub fn now() -> f64 {
    std::time::Instant::now().elapsed().as_secs_f64()
}
