//! `srclint` — workspace-specific static analysis.
//!
//! The paper reproduction's headline guarantee is *reproducibility*:
//! bit-identical reductions at any thread width, injectable clocks so
//! simulations are deterministic, and I/O that surfaces corruption as
//! `Err` instead of panicking mid-campaign. Those invariants are easy to
//! erode one innocuous line at a time, so this crate machine-enforces
//! them, exactly as clippy/rustfmt already enforce style in CI:
//!
//! - **R1 `unsafe-no-safety-comment`** — every `unsafe` block, fn, or impl
//!   must carry an adjacent `// SAFETY:` justification.
//! - **R2 `nondeterminism`** — raw time (`Instant::now`, `SystemTime::now`),
//!   ad-hoc threading (`std::thread::spawn`), and entropy-seeded RNGs are
//!   banned outside the sanctioned modules (`obs::clock`, the pool's
//!   internal busy-time accounting, bench timers).
//! - **R3 `panic-site`** — `unwrap()`/`expect()`/`panic!()` are banned in
//!   non-test library code of the crates that run unattended at scale
//!   (`core`, `io`, `jobmgr`, `obs`).
//! - **R4 `layering`** — the crate dependency graph parsed from each
//!   `Cargo.toml` plus actual `use`/path references must respect the layer
//!   policy (`core` never depends on `jobmgr`/`bench`/`io`; `obs` depends
//!   on nothing in-workspace), and declared dependencies must be used.
//! - **R5 `unordered-float-reduce`** — direct `.sum()`/`.reduce()` on a
//!   parallel iterator chain is banned outside the deterministic
//!   `blas`/`contract` reducers: order-dependent float accumulation must
//!   go through the fixed-shape chunk reducers that make results
//!   bit-identical at any width.
//! - **R6 `atomic-ordering`** — `Ordering::Relaxed` on shared atomics is
//!   banned outside an audited allowlist (the pool's chunk cursor and
//!   stats, the obs delta counters, the transport fault counters): relaxed
//!   accesses carry no happens-before edge, so the checkmate race detector
//!   and TSan both treat them as unsynchronized. Every allowlisted file
//!   holds only monotone counters whose readers tolerate staleness; any
//!   new relaxed site must either justify itself into the allowlist or use
//!   acquire/release.
//!
//! Pre-existing violations live in a committed `lint-baseline.json` of
//! `(rule, path, content-hash)` suppressions: moved-but-unfixed code stays
//! suppressed, fixed code cannot silently regress (its suppression goes
//! stale and `--check` demands a baseline shrink), and new violations fail
//! CI. See `repro lint` in `crates/bench` for the CLI.

pub mod baseline;
pub mod layering;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

/// Stable rule identifiers (also the `rule` field in baseline entries).
pub mod rule_ids {
    pub const UNSAFE_NO_SAFETY: &str = "R1-unsafe-no-safety-comment";
    pub const NONDETERMINISM: &str = "R2-nondeterminism";
    pub const PANIC_SITE: &str = "R3-panic-site";
    pub const LAYERING: &str = "R4-layering";
    pub const FLOAT_REDUCE: &str = "R5-unordered-float-reduce";
    pub const ATOMIC_ORDERING: &str = "R6-atomic-ordering";
    /// All rules, in report order.
    pub const ALL: [&str; 6] = [
        UNSAFE_NO_SAFETY,
        NONDETERMINISM,
        PANIC_SITE,
        LAYERING,
        FLOAT_REDUCE,
        ATOMIC_ORDERING,
    ];
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier from [`rule_ids`].
    pub rule: &'static str,
    /// Path relative to the scan root, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// FNV-1a 64 hash (hex) of the trimmed line content — the
    /// baseline-suppression key, robust to the line moving within the file.
    pub content_hash: String,
}

impl Finding {
    fn new(rule: &'static str, path: &str, line: u32, message: String, content: &str) -> Self {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message,
            content_hash: fnv64_hex(content.trim()),
        }
    }
}

/// FNV-1a 64-bit hash, rendered as 16 hex digits. Deliberately simple: the
/// baseline only needs collision resistance against accidental matches
/// between source lines, not an adversary.
pub fn fnv64_hex(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// What to scan and which repo-specific exemptions apply. Paths are
/// relative to the scan root with forward slashes.
#[derive(Clone, Debug)]
pub struct Config {
    /// Files where R2's banned constructs are the implementation of the
    /// sanctioned abstraction itself (clock internals, pool busy-time
    /// accounting) or are bench-harness timers.
    pub sanctioned_nondet: Vec<String>,
    /// Path prefixes R3 applies to (the unattended-at-scale crates).
    pub panic_scope: Vec<String>,
    /// Files exempt from R5 — the deterministic reducers themselves, plus
    /// the vendored pool/iterator internals they are built on.
    pub float_reduce_exempt: Vec<String>,
    /// Files where R6's `Ordering::Relaxed` is audited and allowed: every
    /// relaxed atomic there is a monotone stats counter (or the pool's
    /// claim-by-fetch_add chunk cursor) whose readers tolerate staleness
    /// and never derive ordering from the value.
    pub atomic_relaxed_allow: Vec<String>,
    /// Layer policy: (package, forbidden dependency packages).
    pub forbidden_deps: Vec<(String, Vec<String>)>,
    /// Packages that must not depend on anything in-workspace.
    pub isolated_packages: Vec<String>,
    /// Directory names never descended into.
    pub skip_dirs: Vec<String>,
}

impl Default for Config {
    /// The policy for *this* repository.
    fn default() -> Self {
        Config {
            sanctioned_nondet: vec![
                "crates/obs/src/clock.rs".into(),
                "vendor/rayon/src/pool.rs".into(),
                "vendor/criterion/src/lib.rs".into(),
                "crates/bench/src/experiments/kernels.rs".into(),
            ],
            panic_scope: vec![
                "crates/core/src/".into(),
                "crates/io/src/".into(),
                "crates/jobmgr/src/".into(),
                "crates/obs/src/".into(),
                "crates/service/src/".into(),
            ],
            float_reduce_exempt: vec![
                "crates/core/src/blas.rs".into(),
                "crates/core/src/contract.rs".into(),
                "vendor/".into(),
            ],
            atomic_relaxed_allow: vec![
                // Pool chunk cursor (claim via fetch_add: the returned index
                // is the claim, no ordering needed) and per-worker stats.
                "vendor/rayon/src/pool.rs".into(),
                // Delta counters/gauges/histograms: monotone, snapshot reads.
                "crates/obs/src/metrics.rs".into(),
                // Busy-time publication counter (swap, monotone).
                "crates/core/src/threads.rs".into(),
                // Fault-injection and pack/unpack stats counters.
                "crates/core/src/comms/transport.rs".into(),
                "crates/core/src/comms/kernel.rs".into(),
            ],
            forbidden_deps: vec![
                (
                    "lqcd-core".into(),
                    vec!["mpi-jm".into(), "bench".into(), "lattice-io".into()],
                ),
                ("srclint".into(), vec!["lqcd-core".into(), "mpi-jm".into()]),
            ],
            isolated_packages: vec!["obs".into()],
            skip_dirs: vec![
                ".git".into(),
                "target".into(),
                "fixtures".into(),
                "goldens".into(),
                "results".into(),
            ],
        }
    }
}

/// Is `path` (relative, forward slashes) test code by location? Covers
/// integration-test trees (`tests/…`, `…/tests/…`), in-crate `tests.rs`
/// modules, benches, and examples.
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.ends_with("/tests.rs")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
}

/// Recursively collect `*.rs` files under `root`, sorted for determinism.
fn rust_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !cfg.skip_dirs.iter().any(|s| s == name) {
                    stack.push(p);
                }
            } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, forward slashes.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Run every rule over the workspace at `root`. Findings are sorted by
/// (path, line, rule) so output is deterministic.
pub fn scan_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in rust_files(root, cfg)? {
        let Ok(src) = std::fs::read_to_string(&file) else {
            continue; // non-UTF-8: nothing token-level to say about it
        };
        let relpath = rel(root, &file);
        findings.extend(rules::check_file(&relpath, &src, cfg));
    }
    findings.extend(layering::check_layering(root, cfg)?);
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(findings)
}
