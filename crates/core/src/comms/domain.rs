//! Rank-decomposed lattice geometry: local sublattices, ghost zones, and
//! face pack/unpack index maps.
//!
//! [`DomainDecomposition`] maps a `machine::decomp` rank grid onto the real
//! [`Lattice`]: each rank owns a block-local sublattice and an *extended*
//! index space whose tail holds ghost sites — copies of the neighbor ranks'
//! faces. The per-site [`Neighbors`] tables are rebuilt against that
//! extended space, with wrap flags computed from **global** coordinates so
//! antiperiodic-t boundary signs land on exactly the same hops as in the
//! single-domain kernel, at any rank grid.
//!
//! Pack and unpack share one canonical face ordering (reduced-lexicographic,
//! x-fastest over the non-face dimensions). Because every rank has the same
//! local extents, the sender's pack order *is* the receiver's unpack order —
//! no permutation map travels with the message.

use crate::lattice::{Lattice, Neighbors, ND};
use coral_machine::decomp::Decomposition;

/// Everything one rank needs to exchange halos in one partitioned direction.
#[derive(Clone, Debug)]
pub struct DimExchange {
    /// The partitioned direction.
    pub mu: usize,
    /// Sites per face (4D; multiply by `L5` for message spinor counts).
    pub face_len: usize,
    /// Local sites of the low face (`c_mu = 0`), reduced-lex order. Sent
    /// backward: the backward neighbor stores them in its forward ghost zone.
    pub low_face: Vec<u32>,
    /// Local sites of the high face (`c_mu = ld_mu − 1`), reduced-lex order.
    /// Sent forward: the forward neighbor stores them in its backward ghost
    /// zone.
    pub high_face: Vec<u32>,
    /// Ghost-region offset of the block receiving the forward neighbor's low
    /// face (the sites at `c_mu = ld_mu`, one step past the high face).
    pub fwd_ghost_base: usize,
    /// Ghost-region offset of the block receiving the backward neighbor's
    /// high face (the sites at `c_mu = −1`).
    pub bwd_ghost_base: usize,
    /// Rank one step forward in `mu` (periodic).
    pub fwd_rank: usize,
    /// Rank one step backward in `mu` (periodic).
    pub bwd_rank: usize,
}

/// One rank's view of the decomposition.
#[derive(Clone, Debug)]
pub struct RankDomain {
    /// Position in the rank grid.
    pub coords: [usize; ND],
    /// Global coordinates of the local origin.
    pub origin: [usize; ND],
    /// Extended neighbor table for the local sites: indices `< v_loc` are
    /// local, indices `>= v_loc` point into the ghost region.
    pub neighbors: Vec<Neighbors>,
    /// Extended index → global lexicographic index, for locals *and* ghosts
    /// (`v_loc + ghost_len` entries). Used to scatter fields and to gather
    /// gauge links bit-identically to the single-domain kernel.
    pub local_to_global: Vec<u32>,
    /// Per partitioned direction, in ascending `mu` order.
    pub exchanges: Vec<DimExchange>,
    /// Local sites whose stencil touches no ghost.
    pub interior: Vec<u32>,
    /// `boundary[k]`: sites whose highest ghost-needing direction is
    /// `exchanges[k].mu` — ready to compute once directions `0..=k` have
    /// been unpacked (the fine-grained pipeline order).
    pub boundary: Vec<Vec<u32>>,
}

/// A rank grid mapped onto a concrete lattice.
#[derive(Clone, Debug)]
pub struct DomainDecomposition {
    lattice: Lattice,
    decomp: Decomposition,
    v_loc: usize,
    ghost_len: usize,
    ranks: Vec<RankDomain>,
}

/// Reduced-lexicographic position of local coords `c` on the face
/// orthogonal to `mu` (x-fastest over the remaining dimensions).
fn face_pos(ld: [usize; ND], mu: usize, c: [usize; ND]) -> usize {
    let mut pos = 0;
    let mut mult = 1;
    for n in 0..ND {
        if n != mu {
            pos += c[n] * mult;
            mult *= ld[n];
        }
    }
    pos
}

/// Visit every face coordinate tuple (with `c[mu]` preset to `fixed`) in
/// reduced-lex order — the canonical pack/unpack ordering.
fn for_each_face_site(ld: [usize; ND], mu: usize, fixed: usize, mut f: impl FnMut([usize; ND])) {
    let count: usize = (0..ND).filter(|&n| n != mu).map(|n| ld[n]).product();
    for j in 0..count {
        let mut c = [0usize; ND];
        c[mu] = fixed;
        let mut t = j;
        for n in 0..ND {
            if n != mu {
                c[n] = t % ld[n];
                t /= ld[n];
            }
        }
        f(c);
    }
}

fn local_index(ld: [usize; ND], c: [usize; ND]) -> usize {
    ((c[3] * ld[2] + c[2]) * ld[1] + c[1]) * ld[0] + c[0]
}

fn local_coords(ld: [usize; ND], mut idx: usize) -> [usize; ND] {
    let mut c = [0usize; ND];
    for mu in 0..ND {
        c[mu] = idx % ld[mu];
        idx /= ld[mu];
    }
    c
}

impl DomainDecomposition {
    /// Map `grid` onto `lattice`. Returns `None` exactly when
    /// [`Decomposition::with_grid`] does: an extent not divisible by its
    /// grid factor, or a partitioned local extent below the stencil radius.
    ///
    /// `l5` and `gpus_per_node` feed the analytic [`Decomposition`] (halo
    /// byte accounting, intra/inter-node classification); they do not change
    /// the execution geometry.
    pub fn new(
        lattice: &Lattice,
        grid: [usize; ND],
        l5: usize,
        gpus_per_node: usize,
    ) -> Option<Self> {
        let dims = lattice.dims();
        let decomp = Decomposition::with_grid(dims, l5, grid, gpus_per_node)?;
        let ld = decomp.local_dims;
        let v_loc: usize = ld.iter().product();
        let pdims: Vec<usize> = (0..ND).filter(|&mu| grid[mu] > 1).collect();

        // Ghost-region layout: per partitioned direction (ascending), the
        // forward block then the backward block.
        let mut fwd_base = [0usize; ND];
        let mut bwd_base = [0usize; ND];
        let mut ghost_len = 0usize;
        for &mu in &pdims {
            let face_len = v_loc / ld[mu];
            fwd_base[mu] = ghost_len;
            ghost_len += face_len;
            bwd_base[mu] = ghost_len;
            ghost_len += face_len;
        }

        let n_ranks: usize = grid.iter().product();
        let rank_index = |rc: [usize; ND]| -> usize {
            ((rc[3] * grid[2] + rc[2]) * grid[1] + rc[1]) * grid[0] + rc[0]
        };

        let mut ranks = Vec::with_capacity(n_ranks);
        for r in 0..n_ranks {
            let coords = local_coords(grid, r);
            let mut origin = [0usize; ND];
            for mu in 0..ND {
                origin[mu] = coords[mu] * ld[mu];
            }

            // Extended index → global site.
            let mut local_to_global = Vec::with_capacity(v_loc + ghost_len);
            for lx in 0..v_loc {
                let c = local_coords(ld, lx);
                let mut g = [0usize; ND];
                for mu in 0..ND {
                    g[mu] = origin[mu] + c[mu];
                }
                local_to_global.push(lattice.index(g) as u32);
            }
            for &mu in &pdims {
                // Forward ghosts: global c_mu = origin + ld (periodic).
                for_each_face_site(ld, mu, 0, |c| {
                    let mut g = [0usize; ND];
                    for n in 0..ND {
                        g[n] = origin[n] + c[n];
                    }
                    g[mu] = (origin[mu] + ld[mu]) % dims[mu];
                    local_to_global.push(lattice.index(g) as u32);
                });
                // Backward ghosts: global c_mu = origin − 1 (periodic).
                for_each_face_site(ld, mu, 0, |c| {
                    let mut g = [0usize; ND];
                    for n in 0..ND {
                        g[n] = origin[n] + c[n];
                    }
                    g[mu] = (origin[mu] + dims[mu] - 1) % dims[mu];
                    local_to_global.push(lattice.index(g) as u32);
                });
            }
            assert_eq!(local_to_global.len(), v_loc + ghost_len);

            // Extended neighbor table with global wrap flags.
            let mut neighbors = Vec::with_capacity(v_loc);
            for lx in 0..v_loc {
                let c = local_coords(ld, lx);
                let mut rec = Neighbors::default();
                for mu in 0..ND {
                    let g_mu = origin[mu] + c[mu];
                    // Forward hop.
                    if c[mu] + 1 < ld[mu] {
                        let mut up = c;
                        up[mu] += 1;
                        rec.fwd[mu] = local_index(ld, up) as u32;
                    } else if grid[mu] == 1 {
                        let mut up = c;
                        up[mu] = 0;
                        rec.fwd[mu] = local_index(ld, up) as u32;
                        rec.fwd_wrap |= 1 << mu;
                    } else {
                        rec.fwd[mu] = (v_loc + fwd_base[mu] + face_pos(ld, mu, c)) as u32;
                        if g_mu + 1 == dims[mu] {
                            rec.fwd_wrap |= 1 << mu;
                        }
                    }
                    // Backward hop.
                    if c[mu] > 0 {
                        let mut dn = c;
                        dn[mu] -= 1;
                        rec.bwd[mu] = local_index(ld, dn) as u32;
                    } else if grid[mu] == 1 {
                        let mut dn = c;
                        dn[mu] = ld[mu] - 1;
                        rec.bwd[mu] = local_index(ld, dn) as u32;
                        rec.bwd_wrap |= 1 << mu;
                    } else {
                        rec.bwd[mu] = (v_loc + bwd_base[mu] + face_pos(ld, mu, c)) as u32;
                        if g_mu == 0 {
                            rec.bwd_wrap |= 1 << mu;
                        }
                    }
                }
                neighbors.push(rec);
            }

            // Faces and neighbor ranks per partitioned direction.
            let mut exchanges = Vec::with_capacity(pdims.len());
            for &mu in &pdims {
                let face_len = v_loc / ld[mu];
                let mut low_face = Vec::with_capacity(face_len);
                for_each_face_site(ld, mu, 0, |c| low_face.push(local_index(ld, c) as u32));
                let mut high_face = Vec::with_capacity(face_len);
                for_each_face_site(ld, mu, ld[mu] - 1, |c| {
                    high_face.push(local_index(ld, c) as u32)
                });
                let mut up = coords;
                up[mu] = (coords[mu] + 1) % grid[mu];
                let mut dn = coords;
                dn[mu] = (coords[mu] + grid[mu] - 1) % grid[mu];
                exchanges.push(DimExchange {
                    mu,
                    face_len,
                    low_face,
                    high_face,
                    fwd_ghost_base: fwd_base[mu],
                    bwd_ghost_base: bwd_base[mu],
                    fwd_rank: rank_index(up),
                    bwd_rank: rank_index(dn),
                });
            }

            // Interior / per-direction boundary split for the fine-grained
            // pipeline: a site joins the group of its *highest* ghost-needing
            // direction, so after unpacking directions 0..=k every site in
            // `boundary[k]` has all its ghosts.
            let mut interior = Vec::new();
            let mut boundary = vec![Vec::new(); pdims.len()];
            for lx in 0..v_loc {
                let c = local_coords(ld, lx);
                let mut last: Option<usize> = None;
                for (k, &mu) in pdims.iter().enumerate() {
                    if c[mu] == 0 || c[mu] + 1 == ld[mu] {
                        last = Some(k);
                    }
                }
                match last {
                    None => interior.push(lx as u32),
                    Some(k) => boundary[k].push(lx as u32),
                }
            }
            let split: usize = interior.len() + boundary.iter().map(Vec::len).sum::<usize>();
            assert_eq!(
                split, v_loc,
                "interior/boundary groups must tile the sublattice"
            );

            ranks.push(RankDomain {
                coords,
                origin,
                neighbors,
                local_to_global,
                exchanges,
                interior,
                boundary,
            });
        }

        Some(Self {
            lattice: lattice.clone(),
            decomp,
            v_loc,
            ghost_len,
            ranks,
        })
    }

    /// The global lattice.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// The analytic decomposition (grid, halo traffic, byte model).
    pub fn decomp(&self) -> &Decomposition {
        &self.decomp
    }

    /// Rank grid.
    pub fn grid(&self) -> [usize; ND] {
        self.decomp.grid
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Local 4D sites per rank.
    pub fn local_volume(&self) -> usize {
        self.v_loc
    }

    /// Ghost sites per rank (all partitioned directions, both sides).
    pub fn ghost_len(&self) -> usize {
        self.ghost_len
    }

    /// Per-rank views.
    pub fn ranks(&self) -> &[RankDomain] {
        &self.ranks
    }

    /// Messages one operator application exchanges across all ranks: two
    /// faces per partitioned direction per rank — `n_ranks ×` the analytic
    /// per-GPU [`Decomposition::messages_per_apply`].
    pub fn total_messages_per_apply(&self) -> usize {
        self.n_ranks() * self.decomp.messages_per_apply()
    }

    /// Grid as a tune-key string, e.g. `"2x2x1x1"`.
    pub fn grid_string(&self) -> String {
        let g = self.grid();
        format!("{}x{}x{}x{}", g[0], g[1], g[2], g[3])
    }
}

/// The rank grid a job degrades to after a permanent rank loss: halve the
/// largest even grid factor, so the surviving ranks still tile the lattice
/// (e.g. `2x2x1x1` → `2x1x1x1` → `1x1x1x1`). `None` once the grid is a
/// single rank — or none of its factors can be halved — meaning there is no
/// smaller grid to retreat to and the job must fail.
pub fn surviving_grid(grid: [usize; ND]) -> Option<[usize; ND]> {
    let mut best: Option<usize> = None;
    for mu in 0..ND {
        if grid[mu] > 1 && grid[mu].is_multiple_of(2) {
            match best {
                Some(b) if grid[b] >= grid[mu] => {}
                _ => best = Some(mu),
            }
        }
    }
    let mu = best?;
    let mut g = grid;
    g[mu] /= 2;
    Some(g)
}

#[cfg(test)]
mod degrade_tests {
    use super::*;

    #[test]
    fn surviving_grid_halves_the_largest_even_factor() {
        assert_eq!(surviving_grid([2, 2, 1, 1]), Some([1, 2, 1, 1]));
        assert_eq!(surviving_grid([1, 2, 1, 1]), Some([1, 1, 1, 1]));
        assert_eq!(surviving_grid([2, 1, 1, 4]), Some([2, 1, 1, 2]));
        assert_eq!(surviving_grid([1, 1, 1, 1]), None);
        assert_eq!(
            surviving_grid([3, 1, 1, 1]),
            None,
            "odd factors cannot halve"
        );
    }
}
