//! Precision abstraction.
//!
//! The paper's solver is *mixed precision*: bulk work in 16-bit fixed point /
//! 32-bit float, reliable updates in 64-bit. All field and operator code in
//! this crate is generic over [`Real`], instantiated at `f32` and `f64`; the
//! 16-bit fixed-point storage layer lives in [`crate::halfprec`] and decodes
//! to `f32` for compute, exactly as QUDA's "half" precision does.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar used for field storage and kernel arithmetic.
pub trait Real:
    Copy
    + Send
    + Sync
    + Debug
    + Default
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Short name used in autotune keys and I/O headers ("f32"/"f64").
    const NAME: &'static str;

    /// Lossy conversion from `f64` (rounds for `f32`).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Sine (used by the 8-real gauge reconstruction's phase decode).
    fn sin(self) -> Self;
    /// Cosine (used by the 8-real gauge reconstruction's phase decode).
    fn cos(self) -> Self;
    /// Four-quadrant arctangent `atan2(self, x)` (phase extraction in the
    /// 8-real gauge compression encode).
    fn atan2(self, x: Self) -> Self;

    // Fixed-width 4-lane elementwise primitives (width = [`crate::simd::LANES`]).
    // Portable autovectorizable loops: at the baseline ISA they compile to
    // 128-bit vectors, and inside the `arch-simd` AVX2-recompiled kernel
    // twins (see [`crate::simd`]) the same loops fill 256-bit registers.
    // Either codegen performs the same elementwise IEEE operation (no FMA),
    // so results are bit-identical whichever path runs.

    /// Elementwise `a + b` over one lane group.
    #[inline(always)]
    fn l4_add(a: [Self; 4], b: [Self; 4]) -> [Self; 4] {
        std::array::from_fn(|i| a[i] + b[i])
    }
    /// Elementwise `a - b` over one lane group.
    #[inline(always)]
    fn l4_sub(a: [Self; 4], b: [Self; 4]) -> [Self; 4] {
        std::array::from_fn(|i| a[i] - b[i])
    }
    /// Elementwise `a * b` over one lane group.
    #[inline(always)]
    fn l4_mul(a: [Self; 4], b: [Self; 4]) -> [Self; 4] {
        std::array::from_fn(|i| a[i] * b[i])
    }
    /// Elementwise `-a` over one lane group.
    #[inline(always)]
    fn l4_neg(a: [Self; 4]) -> [Self; 4] {
        std::array::from_fn(|i| -a[i])
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn sin(self) -> Self {
        f64::sin(self)
    }
    #[inline(always)]
    fn cos(self) -> Self {
        f64::cos(self)
    }
    #[inline(always)]
    fn atan2(self, x: Self) -> Self {
        f64::atan2(self, x)
    }
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline(always)]
    fn sin(self) -> Self {
        f32::sin(self)
    }
    #[inline(always)]
    fn cos(self) -> Self {
        f32::cos(self)
    }
    #[inline(always)]
    fn atan2(self, x: Self) -> Self {
        f32::atan2(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trips_through_f64() {
        let x: f32 = 1.25;
        assert_eq!(f32::from_f64(x.to_f64()), x);
    }

    #[test]
    fn constants_are_correct() {
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert_eq!(f32::ZERO + f32::ONE, 1.0);
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::NAME, "f32");
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        assert_eq!(2.0f64.mul_add(3.0, 4.0), 10.0);
        assert_eq!(2.0f32.mul_add(3.0, 4.0), 10.0);
    }
}
