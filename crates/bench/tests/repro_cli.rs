//! Exit-code contract of the `repro` binary's error paths.
//!
//! The harness must fail with a clear one-line error (not a panic/abort)
//! when the results directory cannot be created or written, and with usage
//! errors for bad arguments — these are the paths CI and scripted callers
//! branch on.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A results path routed *through a regular file* cannot be created — even
/// running as root (where read-only directory bits are bypassed), `mkdir
/// a/b` with `a` a file fails with `NotADirectory`.
fn blocked_results_dir(tag: &str) -> std::path::PathBuf {
    let file = std::env::temp_dir().join(format!("repro-cli-block-{tag}-{}", std::process::id()));
    std::fs::write(&file, b"not a directory").unwrap();
    file.join("results")
}

#[test]
fn uncreatable_results_dir_is_a_clean_error() {
    let dir = blocked_results_dir("create");
    let out = repro()
        .args(["chaos", "--quick", "--results"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success());
    // A clean error exit, not a panic abort.
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot create results directory"),
        "stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must not panic on a bad results dir: {stderr}"
    );
    std::fs::remove_file(dir.parent().unwrap()).ok();
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    let out = repro().arg("no-such-experiment").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment"), "stderr: {stderr}");
}

#[test]
fn missing_experiment_prints_usage() {
    let out = repro().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: repro"), "stderr: {stderr}");
    assert!(stderr.contains("chaos"), "usage must list chaos: {stderr}");
    assert!(
        stderr.contains("deflation"),
        "usage must list deflation: {stderr}"
    );
    assert!(stderr.contains("serve"), "usage must list serve: {stderr}");
}

/// `repro deflation --check-schema` against a stale header must run the
/// experiment, then fail the schema diff with exit code 1 — the branch CI
/// takes when a committed `deflation.csv` no longer matches this build.
#[test]
fn deflation_schema_mismatch_is_a_clean_error() {
    let results = std::env::temp_dir().join(format!("repro-cli-deflation-{}", std::process::id()));
    std::fs::create_dir_all(&results).unwrap();
    let stale = results.join("stale.csv");
    std::fs::write(&stale, "mass_id,not_the_real_columns\n").unwrap();
    let out = repro()
        .args(["deflation", "--quick", "--results"])
        .arg(&results)
        .arg("--check-schema")
        .arg(&stale)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("schema mismatch"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    std::fs::remove_dir_all(&results).ok();
}

/// `repro serve` must refuse an unwritable results directory with exit
/// code 1 and a clear message *before* generating a million requests.
#[test]
fn serve_unwritable_results_dir_is_a_clean_error() {
    let results =
        std::env::temp_dir().join(format!("repro-cli-serve-unwritable-{}", std::process::id()));
    std::fs::create_dir_all(results.join(".write-probe")).unwrap();
    let out = repro()
        .args(["serve", "--quick", "--results"])
        .arg(&results)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not writable"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    std::fs::remove_dir_all(&results).ok();
}

/// `repro serve --check-schema` against the committed golden passes (the
/// quick run's *values* differ from the committed full run, but the JSON
/// shape must match), and fails cleanly against a stale schema.
#[test]
fn serve_check_schema_gates_on_shape_not_values() {
    let results = std::env::temp_dir().join(format!("repro-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&results).unwrap();
    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/serve.json");
    let out = repro()
        .args(["serve", "--quick", "--results"])
        .arg(&results)
        .args(["--check-schema", committed])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("schema check OK"), "stdout: {stdout}");

    // A stale committed schema must fail with exit 1, not a panic.
    let stale = results.join("stale-serve.json");
    std::fs::write(&stale, "{\"schema\": \"serve-v0\", \"gone\": 1}\n").unwrap();
    let out = repro()
        .args(["serve", "--quick", "--results"])
        .arg(&results)
        .arg("--check-schema")
        .arg(&stale)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("schema mismatch"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    std::fs::remove_dir_all(&results).ok();
}

#[test]
fn unwritable_results_dir_is_a_clean_error() {
    // The directory exists but rejects the write probe: running as root
    // bypasses mode bits, so instead occupy the probe's own path with a
    // directory — `fs::write(".write-probe")` then fails for any uid.
    let results = std::env::temp_dir().join(format!("repro-cli-unwritable-{}", std::process::id()));
    std::fs::create_dir_all(results.join(".write-probe")).unwrap();
    let out = repro()
        .args(["chaos", "--quick", "--results"])
        .arg(&results)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not writable"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    std::fs::remove_dir_all(&results).ok();
}
