//! `lqcd` — umbrella crate for the femtoscale-universe reproduction.
//!
//! Re-exports the whole stack under one roof:
//!
//! - [`core`](lqcd_core) — lattice QCD: SU(3), Möbius domain-wall & Wilson
//!   operators, red–black preconditioning, mixed-precision solvers, gauge
//!   generation, contractions, Feynman–Hellmann propagators.
//! - [`autotune`] — QUDA-style run-time kernel/communication autotuner.
//! - [`machine`](coral_machine) — Table II machine models and the solver
//!   performance model behind the scaling figures.
//! - [`jobmgr`](mpi_jm) — discrete-event cluster simulation with naive
//!   bundling, METAQ backfilling, and `mpi_jm`.
//! - [`io`](lattice_io) — chunked checksummed lattice field I/O.
//! - [`analysis`](lqcd_analysis) — jackknife/bootstrap, correlated fits,
//!   synthetic correlator ensembles.
//!
//! See `examples/` for runnable entry points and the `repro` binary (in
//! `crates/bench`) for the per-figure reproduction harness.

pub use autotune;
pub use coral_machine as machine;
pub use lattice_io as io;
pub use lqcd_analysis as analysis;
pub use lqcd_core as core;
pub use mpi_jm as jobmgr;
pub use obs;

/// The paper's central physics formula: the neutron lifetime implied by the
/// axial coupling, `τ_n = 5172.0 s / (1 + 3 gA²)` (Czarnecki–Marciano–Sirlin
/// as quoted in the paper, Eq. 1).
pub fn neutron_lifetime_seconds(ga: f64) -> f64 {
    5172.0 / (1.0 + 3.0 * ga * ga)
}

/// Propagate the gA uncertainty to the lifetime:
/// `|dτ/dgA| = 5172 · 6 gA / (1 + 3 gA²)²`.
pub fn neutron_lifetime_error_seconds(ga: f64, ga_err: f64) -> f64 {
    let denom = 1.0 + 3.0 * ga * ga;
    5172.0 * 6.0 * ga / (denom * denom) * ga_err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_ga_gives_physical_lifetime() {
        // gA = 1.2756 (PDG-like) -> τ ≈ 879 s, the "trapped" value.
        let tau = neutron_lifetime_seconds(1.2756);
        assert!(
            (870.0..890.0).contains(&tau),
            "τ_n = {tau} s should be near the measured ~879 s"
        );
    }

    #[test]
    fn lifetime_decreases_with_ga() {
        assert!(neutron_lifetime_seconds(1.3) < neutron_lifetime_seconds(1.25));
    }

    #[test]
    fn error_propagation_matches_finite_difference() {
        let ga = 1.271;
        let dga = 1e-3;
        let analytic = neutron_lifetime_error_seconds(ga, dga);
        let fd =
            neutron_lifetime_seconds(ga - dga / 2.0) - neutron_lifetime_seconds(ga + dga / 2.0);
        assert!((analytic - fd).abs() < 1e-3 * analytic);
    }

    #[test]
    fn one_percent_ga_maps_to_paper_scale_lifetime_error() {
        // The paper's 1% gA determination corresponds to a ~14 s lifetime
        // uncertainty — why 0.2% is needed to resolve the 8.6 s beam/trap
        // discrepancy.
        let err = neutron_lifetime_error_seconds(1.271, 0.01271);
        assert!((10.0..20.0).contains(&err), "Δτ = {err} s");
        let err02 = neutron_lifetime_error_seconds(1.271, 0.002 * 1.271);
        assert!(err02 < 8.6, "0.2% gA resolves the 8.6 s discrepancy");
    }
}
