//! Precision abstraction.
//!
//! The paper's solver is *mixed precision*: bulk work in 16-bit fixed point /
//! 32-bit float, reliable updates in 64-bit. All field and operator code in
//! this crate is generic over [`Real`], instantiated at `f32` and `f64`; the
//! 16-bit fixed-point storage layer lives in [`crate::halfprec`] and decodes
//! to `f32` for compute, exactly as QUDA's "half" precision does.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar used for field storage and kernel arithmetic.
pub trait Real:
    Copy
    + Send
    + Sync
    + Debug
    + Default
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Short name used in autotune keys and I/O headers ("f32"/"f64").
    const NAME: &'static str;

    /// Lossy conversion from `f64` (rounds for `f32`).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trips_through_f64() {
        let x: f32 = 1.25;
        assert_eq!(f32::from_f64(x.to_f64()), x);
    }

    #[test]
    fn constants_are_correct() {
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert_eq!(f32::ZERO + f32::ONE, 1.0);
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::NAME, "f32");
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        assert_eq!(2.0f64.mul_add(3.0, 4.0), 10.0);
        assert_eq!(2.0f32.mul_add(3.0, 4.0), 10.0);
    }
}
