//! The solves behind the gateway.
//!
//! Dense requests are served by batched multi-RHS conjugate gradient
//! ([`cg_block`]) over the Wilson normal operator — per-column results are
//! bit-identical to the unbatched [`cg`] on the same system, which is what
//! makes batching transparent to the content-addressed cache. Sharded
//! requests run the fault-tolerant [`cg_ft`] stack over the decomposed
//! Möbius operator with the deterministic comm-fault injector live, so the
//! service demonstrably keeps serving (and keeps its bit-identity
//! guarantees) while the wire misbehaves underneath it.

use crate::error::ServiceError;
use crate::request::{Policy, Precision};
use lqcd_core::block::BlockSpinor;
use lqcd_core::comms::{policy_from_index, CommFaultProfile, CommRetryPolicy, ShardedNormal};
use lqcd_core::dirac::{MobiusParams, NormalOp, WilsonDirac};
use lqcd_core::field::{FermionField, GaugeField};
use lqcd_core::lattice::Lattice;
use lqcd_core::solver::{cg, cg_block, cg_ft, CgParams, FtParams, ReliableBlock, SolverOutcome};
use lqcd_core::spinor::Spinor;
use obs::Registry;

/// Rank grid for sharded solves (degrades on injected rank loss).
pub const GRID: [usize; 4] = [2, 2, 1, 1];
/// Accelerators per node in the modeled machine.
pub const GPUS_PER_NODE: usize = 4;

/// Static configuration of the solve backend.
#[derive(Clone, Debug)]
pub struct BackendConfig {
    /// Lattice dimensions; must be divisible by [`GRID`] for the sharded
    /// pipeline.
    pub dims: [usize; 4],
    /// Number of gauge configurations the service fronts.
    pub n_configs: usize,
    /// Fifth-dimension extent of the sharded Möbius solves.
    pub l5: usize,
    /// Iteration cap per CG solve.
    pub max_iter: usize,
    /// Wire-fault profile injected under sharded solves (`None` = clean).
    pub fault_profile: Option<CommFaultProfile>,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            dims: [4, 4, 2, 4],
            n_configs: 4,
            l5: 4,
            max_iter: 4000,
            fault_profile: None,
        }
    }
}

/// One solve's answer plus the provenance the cache persists with it.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveResult {
    /// Solution vector (4D volume for dense, `L5 ×` volume for sharded).
    pub solution: Vec<Spinor<f64>>,
    /// Operator applications performed.
    pub iterations: usize,
    /// Relative true residual at exit.
    pub final_rel_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Whether the solve survived injected comm faults (retries, restarts,
    /// or a grid degradation) and still converged.
    pub recovered: bool,
}

/// Gauge configurations plus the operators over them.
pub struct Backend {
    lat: Lattice,
    configs: Vec<GaugeField<f64>>,
    hashes: Vec<u64>,
    cfg: BackendConfig,
}

/// FNV-1a over the raw bit pattern of every link matrix element, in site
/// order. This is the configuration's *content* identity: regenerating the
/// same links under a different id hashes identically, and any single-bit
/// change anywhere flips it.
fn content_hash(gauge: &GaugeField<f64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for u in gauge.links() {
        for row in &u.m {
            for z in row {
                fold(z.re.to_bits());
                fold(z.im.to_bits());
            }
        }
    }
    h
}

impl Backend {
    /// Generate `cfg.n_configs` hot configurations and hash their content.
    pub fn new(cfg: BackendConfig) -> Result<Self, ServiceError> {
        if cfg.dims.iter().zip(GRID.iter()).any(|(d, g)| d % g != 0) {
            return Err(ServiceError::Config(format!(
                "dims {:?} not divisible by sharded grid {GRID:?}",
                cfg.dims
            )));
        }
        if cfg.n_configs == 0 {
            return Err(ServiceError::Config(
                "need at least one configuration".into(),
            ));
        }
        let lat = Lattice::new(cfg.dims);
        let configs: Vec<GaugeField<f64>> = (0..cfg.n_configs)
            .map(|i| GaugeField::<f64>::hot(&lat, 1000 + i as u64))
            .collect();
        let hashes = configs.iter().map(content_hash).collect();
        Ok(Backend {
            lat,
            configs,
            hashes,
            cfg,
        })
    }

    /// The lattice all dense solves run on.
    pub fn lattice(&self) -> &Lattice {
        &self.lat
    }

    /// Content hash of configuration `id`.
    pub fn config_hash(&self, id: u32) -> Result<u64, ServiceError> {
        self.hashes
            .get(id as usize)
            .copied()
            .ok_or_else(|| ServiceError::Config(format!("unknown configuration id {id}")))
    }

    /// The deterministic Gaussian source for `seed` under `policy`.
    pub fn source(&self, seed: u64, policy: Policy) -> Vec<Spinor<f64>> {
        let len = match policy {
            Policy::Dense => self.lat.volume(),
            Policy::Sharded => self.cfg.l5 * self.lat.volume(),
        };
        FermionField::<f64>::gaussian(len, seed).data
    }

    fn gauge(&self, config_id: u32) -> Result<&GaugeField<f64>, ServiceError> {
        self.configs
            .get(config_id as usize)
            .ok_or_else(|| ServiceError::Config(format!("unknown configuration id {config_id}")))
    }

    fn params(&self, precision: Precision) -> CgParams {
        CgParams {
            tol: precision.tol(),
            max_iter: self.cfg.max_iter,
        }
    }

    /// One batched dense solve: all `seeds` against the same
    /// `(config, mass, precision)` system, sharing gauge-link traffic in a
    /// single [`cg_block`] call. Column `j` of the answer is bit-identical
    /// to [`Backend::solve_dense_solo`] on `seeds[j]`.
    pub fn solve_dense_batch(
        &self,
        config_id: u32,
        mass_bits: u64,
        precision: Precision,
        seeds: &[u64],
    ) -> Result<Vec<SolveResult>, ServiceError> {
        let gauge = self.gauge(config_id)?;
        let mass = f64::from_bits(mass_bits);
        let d = WilsonDirac::new(&self.lat, gauge, mass, true);
        let a = NormalOp::new(&d);
        let cols: Vec<Vec<Spinor<f64>>> = seeds
            .iter()
            .map(|&s| self.source(s, Policy::Dense))
            .collect();
        let b = BlockSpinor::from_columns(&cols);
        let mut x = BlockSpinor::zeros(self.lat.volume(), seeds.len());
        let mut rb = ReliableBlock::new(&a);
        let stats = cg_block(&mut rb, &mut x, &b, self.params(precision));
        Ok(stats
            .iter()
            .enumerate()
            .map(|(j, s)| SolveResult {
                solution: x.col(j),
                iterations: s.iterations,
                final_rel_residual: s.final_rel_residual,
                converged: s.converged,
                recovered: false,
            })
            .collect())
    }

    /// The unbatched reference solve for audits: plain [`cg`] on one
    /// column.
    pub fn solve_dense_solo(
        &self,
        config_id: u32,
        mass_bits: u64,
        precision: Precision,
        seed: u64,
    ) -> Result<SolveResult, ServiceError> {
        let gauge = self.gauge(config_id)?;
        let mass = f64::from_bits(mass_bits);
        let d = WilsonDirac::new(&self.lat, gauge, mass, true);
        let a = NormalOp::new(&d);
        let b = self.source(seed, Policy::Dense);
        let mut x = vec![Spinor::zero(); b.len()];
        let stats = cg(&a, &mut x, &b, self.params(precision));
        Ok(SolveResult {
            solution: x,
            iterations: stats.iterations,
            final_rel_residual: stats.final_rel_residual,
            converged: stats.converged,
            recovered: false,
        })
    }

    /// One fault-tolerant sharded Möbius solve, with the configured wire
    /// faults injected. Runs under its own metric registry so the
    /// transport's retry counters can be attributed to this solve.
    pub fn solve_sharded(
        &self,
        config_id: u32,
        mass_bits: u64,
        precision: Precision,
        seed: u64,
    ) -> Result<SolveResult, ServiceError> {
        let gauge = self.gauge(config_id)?;
        let mass = f64::from_bits(mass_bits);
        let params = MobiusParams::standard(self.cfg.l5, mass);
        let b = self.source(seed, Policy::Sharded);
        let mut x = vec![Spinor::zero(); b.len()];
        let reg = Registry::new();
        let (outcome, degradations) = {
            let _guard = reg.install_scoped();
            let Some(mut op) = ShardedNormal::new(
                &self.lat,
                gauge,
                params,
                GRID,
                GPUS_PER_NODE,
                policy_from_index(0),
            ) else {
                return Err(ServiceError::Config(format!(
                    "grid {GRID:?} does not decompose dims {:?}",
                    self.cfg.dims
                )));
            };
            if let Some(profile) = self.cfg.fault_profile {
                op.set_fault_profile(profile, CommRetryPolicy::default());
            }
            let ft = FtParams {
                cg: self.params(precision),
                checkpoint_every: 10,
                max_comm_restarts: 24,
                max_total_iters: 4 * self.cfg.max_iter,
            };
            let outcome = cg_ft(&mut op, &mut x, &b, &ft, None);
            (outcome, op.degradations())
        };
        let retries = reg.counter("comms.retries").get();
        let (stats, restarts) = match &outcome {
            SolverOutcome::Converged {
                stats, restarts, ..
            }
            | SolverOutcome::MaxIterations { stats, restarts }
            | SolverOutcome::Failed {
                stats, restarts, ..
            } => (*stats, *restarts),
        };
        let converged = outcome.is_converged();
        Ok(SolveResult {
            solution: x,
            iterations: stats.iterations,
            final_rel_residual: stats.final_rel_residual,
            converged,
            recovered: converged && (retries > 0 || restarts > 0 || degradations > 0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> Backend {
        Backend::new(BackendConfig::default()).expect("default backend")
    }

    #[test]
    fn content_hash_tracks_content_not_id() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let a = GaugeField::<f64>::hot(&lat, 1);
        let b = GaugeField::<f64>::hot(&lat, 1);
        let c = GaugeField::<f64>::hot(&lat, 2);
        assert_eq!(content_hash(&a), content_hash(&b));
        assert_ne!(content_hash(&a), content_hash(&c));
    }

    #[test]
    fn batched_columns_match_solo_solves_bitwise() {
        let be = backend();
        let seeds = [501, 502, 503];
        let mass_bits = 0.2f64.to_bits();
        let batch = be
            .solve_dense_batch(0, mass_bits, Precision::Sloppy, &seeds)
            .expect("batch");
        for (j, &s) in seeds.iter().enumerate() {
            let solo = be
                .solve_dense_solo(0, mass_bits, Precision::Sloppy, s)
                .expect("solo");
            assert!(solo.converged);
            assert_eq!(batch[j].iterations, solo.iterations);
            assert_eq!(
                batch[j].final_rel_residual.to_bits(),
                solo.final_rel_residual.to_bits()
            );
            assert_eq!(batch[j].solution, solo.solution, "column {j} bits differ");
        }
    }

    #[test]
    fn sharded_solve_recovers_under_faults() {
        let mut cfg = BackendConfig::default();
        cfg.fault_profile = Some(CommFaultProfile {
            corrupt_prob: 0.03,
            drop_prob: 0.03,
            duplicate_prob: 0.02,
            reorder_prob: 0.02,
            delay_prob: 0.02,
            seed: 99,
            ..CommFaultProfile::default()
        });
        let be = Backend::new(cfg).expect("faulty backend");
        let r = be
            .solve_sharded(1, 0.2f64.to_bits(), Precision::Sloppy, 501)
            .expect("sharded solve");
        assert!(r.converged, "mild faults must heal");
        assert!(r.recovered, "retries should have been recorded");
    }
}
