//! Offline shim for the `crossbeam` channel surface the workspace uses,
//! backed by `std::sync::mpsc`.
//!
//! Beyond the API mapping, the shim is the transport's race-detector tap:
//! with the `race-detect` feature every [`channel::Sender::send`] records
//! a release edge and every successful receive records the matching
//! acquire edge on a per-channel key, so payload handoffs through
//! `Mailboxes` establish happens-before order in `checkmate::race`'s
//! vector clocks exactly like the real crossbeam channel's
//! release/acquire semantics do in hardware.

pub mod channel {
    use std::sync::mpsc;

    #[cfg(feature = "race-detect")]
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Error returned by [`Sender::send`] on a disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Per-channel race-detector key, unique for the process lifetime.
    #[cfg(feature = "race-detect")]
    fn next_key() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        checkmate::race::keyed("crossbeam.channel", NEXT.fetch_add(1, Ordering::SeqCst))
    }

    /// Unbounded MPSC channel (the crossbeam `unbounded` constructor).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        #[cfg(feature = "race-detect")]
        let key = next_key();
        (
            Sender {
                tx,
                #[cfg(feature = "race-detect")]
                key,
            },
            Receiver {
                rx,
                #[cfg(feature = "race-detect")]
                key,
            },
        )
    }

    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
        #[cfg(feature = "race-detect")]
        key: u64,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
                #[cfg(feature = "race-detect")]
                key: self.key,
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Publish before the payload becomes visible to the receiver.
            #[cfg(feature = "race-detect")]
            checkmate::race::release(self.key);
            self.tx
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
        #[cfg(feature = "race-detect")]
        key: u64,
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match self.rx.try_recv() {
                Ok(value) => {
                    #[cfg(feature = "race-detect")]
                    checkmate::race::acquire(self.key);
                    Ok(value)
                }
                Err(mpsc::TryRecvError::Empty) => Err(TryRecvError::Empty),
                Err(mpsc::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_is_fifo_and_maps_errors() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
