//! Deterministic comm-layer fault model and the typed errors recovery
//! speaks.
//!
//! This is `jobmgr::fault` pushed one layer down the stack: where the
//! scheduler model decides the fate of task *attempts*, this module decides
//! the fate of individual halo *messages*. The same design rules apply —
//! every decision is a pure function of `(seed, entity, attempt)` through
//! splitmix64 per-entity hashing (identical mixing constants to the jobmgr
//! injector), so the same message meets the same fate regardless of rank
//! visit order, thread width, or how many times the fate is queried. That
//! determinism is what lets the `repro chaos` sweep compare checkpointing
//! on/off on *identical* fault schedules, and what keeps the recovery tests
//! bit-reproducible.
//!
//! Fault taxonomy (per message-transmission attempt, redrawn on every
//! retransmission so retries can succeed):
//!
//! - **Corruption** — a payload bit flips in flight; the receiver's FNV-1a
//!   frame checksum catches it and triggers a NACK/re-request.
//! - **Drop** — the frame never arrives; the receiver times out and
//!   re-requests from the sender's retransmit buffer.
//! - **Duplicate** — the frame arrives twice; the receiver dedups by
//!   sequence number.
//! - **Reorder** — a stale frame (previous sequence number) arrives ahead
//!   of the real one; the receiver discards it by sequence number.
//! - **Latency spike** — the frame is late; the receiver burns a timeout
//!   (accounted as [`CommFaultProfile::delay_seconds`]) before the
//!   re-request finds it.
//! - **Rank loss** — from `lost_at_apply` onward, `lost_rank` neither sends
//!   nor receives; every exchange touching it surfaces
//!   [`CommError::RankLost`], the trigger for checkpoint restore and grid
//!   degradation.

use crate::lattice::ND;
use std::fmt;

/// Typed failure of a halo-exchange operation — the non-panicking
/// replacement for the transport's original `unreachable!`/`assert!` exits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The mailbox channel for `(rank, mu, side)` is closed (receiver
    /// dropped) — the in-memory analogue of a peer that went away without a
    /// crash notification.
    ChannelClosed {
        /// Destination rank of the failed send.
        rank: usize,
        /// Partitioned direction.
        mu: usize,
        /// Ghost-zone side ([`super::BOX_FWD`]/[`super::BOX_BWD`]).
        side: usize,
    },
    /// No frame for the current exchange arrived within the retry budget
    /// and the sender had nothing to retransmit.
    Missing {
        /// Receiving rank.
        rank: usize,
        /// Partitioned direction.
        mu: usize,
        /// Ghost-zone side.
        side: usize,
        /// Transmission attempts consumed before giving up.
        attempts: usize,
    },
    /// Every arriving frame failed its checksum and the retry budget is
    /// exhausted — a persistently corrupting link.
    Corrupt {
        /// Receiving rank.
        rank: usize,
        /// Partitioned direction.
        mu: usize,
        /// Ghost-zone side.
        side: usize,
        /// Transmission attempts consumed before giving up.
        attempts: usize,
    },
    /// A frame arrived whose payload length does not match the exchange
    /// geometry (protocol violation, not recoverable by retry).
    SizeMismatch {
        /// Receiving rank.
        rank: usize,
        /// Partitioned direction.
        mu: usize,
        /// Ghost-zone side.
        side: usize,
    },
    /// The named rank is permanently gone; only checkpoint restore plus
    /// grid degradation can make progress.
    RankLost {
        /// The dead rank.
        rank: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CommError::ChannelClosed { rank, mu, side } => {
                write!(f, "halo mailbox (rank {rank}, dim {mu}, side {side}) closed")
            }
            CommError::Missing {
                rank,
                mu,
                side,
                attempts,
            } => write!(
                f,
                "no halo frame at (rank {rank}, dim {mu}, side {side}) after {attempts} attempts"
            ),
            CommError::Corrupt {
                rank,
                mu,
                side,
                attempts,
            } => write!(
                f,
                "halo frame at (rank {rank}, dim {mu}, side {side}) failed checksum on all {attempts} attempts"
            ),
            CommError::SizeMismatch { rank, mu, side } => write!(
                f,
                "halo frame at (rank {rank}, dim {mu}, side {side}) has wrong payload size"
            ),
            CommError::RankLost { rank } => write!(f, "rank {rank} lost"),
        }
    }
}

impl std::error::Error for CommError {}

/// Intensities of the deterministic message-fault injector. `Default` is a
/// perfect network (all rates zero, no rank loss), under which the framed
/// transport is bit-identical in behaviour to the fault-free one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommFaultProfile {
    /// Probability a transmission attempt delivers a corrupted payload.
    pub corrupt_prob: f64,
    /// Probability a transmission attempt is dropped outright.
    pub drop_prob: f64,
    /// Probability a transmission attempt is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a stale (previous-sequence) frame arrives ahead of the
    /// real one.
    pub reorder_prob: f64,
    /// Probability the frame is late enough that the receiver times out
    /// once before the re-request finds it.
    pub delay_prob: f64,
    /// Simulated length of one latency spike, seconds (charged to the
    /// recovery-latency accounting, not slept).
    pub delay_seconds: f64,
    /// Rank that dies permanently, if any.
    pub lost_rank: Option<usize>,
    /// Apply index (sequence number) from which `lost_rank` is dead.
    pub lost_at_apply: u64,
    /// Seed for every injection decision.
    pub seed: u64,
}

impl Default for CommFaultProfile {
    fn default() -> Self {
        Self {
            corrupt_prob: 0.0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            delay_prob: 0.0,
            delay_seconds: 2e-6,
            lost_rank: None,
            lost_at_apply: 0,
            seed: 0xC0_113C,
        }
    }
}

/// What the injector decrees for one transmission attempt of one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFault {
    /// Delivered intact, once, on time.
    Clean,
    /// Delivered with a flipped payload bit.
    Corrupt,
    /// Never delivered.
    Drop,
    /// Delivered twice.
    Duplicate,
    /// A stale frame is delivered just before the real one.
    Reorder,
    /// Delivered only after the receiver has timed out once.
    Delay,
}

impl CommFaultProfile {
    /// Whether any message-fault channel is active (rank loss counts: it
    /// changes send/recv outcomes even with all rates zero).
    pub fn enabled(&self) -> bool {
        self.corrupt_prob > 0.0
            || self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.reorder_prob > 0.0
            || self.delay_prob > 0.0
            || self.lost_rank.is_some()
    }

    /// Whether `rank` is dead at exchange sequence number `seq`.
    pub fn rank_dead(&self, rank: usize, seq: u64) -> bool {
        self.lost_rank == Some(rank) && seq >= self.lost_at_apply
    }

    /// The fate of transmission attempt `attempt` of the frame addressed to
    /// `(dest, mu, side)` with sequence number `seq`.
    ///
    /// Pure function of `(seed, dest, mu, side, seq, attempt)`: the same
    /// frame meets the same fate however many times this is queried and
    /// whatever order boxes are visited in. Each retransmission attempt
    /// redraws, so a retried frame is not doomed to repeat its fate.
    pub fn draw(&self, dest: usize, mu: usize, side: usize, seq: u64, attempt: u64) -> WireFault {
        if self.corrupt_prob <= 0.0
            && self.drop_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.reorder_prob <= 0.0
            && self.delay_prob <= 0.0
        {
            return WireFault::Clean;
        }
        let u = unit_f64(self.decision_bits(dest, mu, side, seq, attempt));
        let mut edge = self.corrupt_prob;
        if u < edge {
            return WireFault::Corrupt;
        }
        edge += self.drop_prob;
        if u < edge {
            return WireFault::Drop;
        }
        edge += self.duplicate_prob;
        if u < edge {
            return WireFault::Duplicate;
        }
        edge += self.reorder_prob;
        if u < edge {
            return WireFault::Reorder;
        }
        edge += self.delay_prob;
        if u < edge {
            return WireFault::Delay;
        }
        WireFault::Clean
    }

    /// Well-mixed 64 decision bits for one `(dest, mu, side, seq, attempt)`
    /// entity — also used to pick which payload element a corruption hits.
    pub fn decision_bits(
        &self,
        dest: usize,
        mu: usize,
        side: usize,
        seq: u64,
        attempt: u64,
    ) -> u64 {
        debug_assert!(mu < ND && side < 2);
        let entity = ((dest as u64) << 34)
            ^ ((mu as u64) << 31)
            ^ ((side as u64) << 30)
            ^ (seq << 8)
            ^ attempt;
        splitmix64(self.seed.wrapping_mul(0xA076_1D64_78BD_642F) ^ splitmix64(entity))
    }
}

/// Retry/backoff policy of the receive path — the comm-layer mirror of
/// `jobmgr`'s task-level `RetryPolicy`, with the same capped-exponential
/// shape scaled to network timescales.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommRetryPolicy {
    /// Transmission attempts per frame (first delivery included) before the
    /// exchange is declared failed.
    pub max_attempts: usize,
    /// Simulated wait after the first failed attempt, seconds.
    pub backoff_base_seconds: f64,
    /// Cap on the exponential backoff, seconds.
    pub backoff_cap_seconds: f64,
}

impl Default for CommRetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base_seconds: 1e-6,
            backoff_cap_seconds: 64e-6,
        }
    }
}

impl CommRetryPolicy {
    /// Capped exponential backoff before retry number `retry` (1-based,
    /// same shape as `jobmgr::RetryPolicy::backoff_seconds`).
    pub fn backoff_seconds(&self, retry: usize) -> f64 {
        let exp = retry.saturating_sub(1).min(20) as u32;
        (self.backoff_base_seconds * f64::from(2u32.pow(exp))).min(self.backoff_cap_seconds)
    }
}

/// splitmix64 — the same per-entity seed-derivation hash `jobmgr::fault`
/// uses, duplicated here because the layering rules (srclint R4) forbid
/// `lqcd-core` depending on `mpi-jm`. The constants must stay in sync with
/// `mpi_jm::splitmix64` so a scheduler-level seed threads down to the comm
/// layer reproducibly.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map 64 random bits to `[0, 1)` with 53-bit resolution.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_disabled_and_draws_clean() {
        let p = CommFaultProfile::default();
        assert!(!p.enabled());
        for seq in 0..16 {
            assert_eq!(p.draw(3, 1, 0, seq, 0), WireFault::Clean);
        }
    }

    #[test]
    fn draws_are_deterministic_and_entity_keyed() {
        let p = CommFaultProfile {
            corrupt_prob: 0.2,
            drop_prob: 0.2,
            duplicate_prob: 0.2,
            reorder_prob: 0.2,
            seed: 99,
            ..CommFaultProfile::default()
        };
        for dest in 0..4 {
            for mu in 0..ND {
                for side in 0..2 {
                    for seq in 0..8 {
                        let a = p.draw(dest, mu, side, seq, 0);
                        let b = p.draw(dest, mu, side, seq, 0);
                        assert_eq!(a, b, "same entity, same fate");
                    }
                }
            }
        }
        // Different attempts of the same frame redraw independently: over
        // many frames at 60% fault rate, some fate must change with attempt.
        let changed = (0..200).any(|seq| p.draw(0, 0, 0, seq, 0) != p.draw(0, 0, 0, seq, 1));
        assert!(changed, "retransmissions must redraw");
    }

    #[test]
    fn fault_rates_are_roughly_honoured() {
        let p = CommFaultProfile {
            corrupt_prob: 0.25,
            drop_prob: 0.25,
            seed: 7,
            ..CommFaultProfile::default()
        };
        let n = 4000;
        let faults = (0..n)
            .filter(|&seq| p.draw(1, 2, 1, seq, 0) != WireFault::Clean)
            .count();
        let frac = faults as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "observed fault fraction {frac}");
    }

    #[test]
    fn rank_death_starts_at_the_scheduled_apply() {
        let p = CommFaultProfile {
            lost_rank: Some(2),
            lost_at_apply: 5,
            ..CommFaultProfile::default()
        };
        assert!(p.enabled());
        assert!(!p.rank_dead(2, 4));
        assert!(p.rank_dead(2, 5));
        assert!(p.rank_dead(2, 99));
        assert!(!p.rank_dead(1, 99));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = CommRetryPolicy {
            max_attempts: 8,
            backoff_base_seconds: 1.0,
            backoff_cap_seconds: 5.0,
        };
        assert_eq!(r.backoff_seconds(1), 1.0);
        assert_eq!(r.backoff_seconds(2), 2.0);
        assert_eq!(r.backoff_seconds(3), 4.0);
        assert_eq!(r.backoff_seconds(4), 5.0, "capped");
        assert_eq!(r.backoff_seconds(30), 5.0, "capped far out");
    }

    #[test]
    fn splitmix_matches_jobmgr_constants() {
        // Golden values pin the mixing constants to the jobmgr injector's;
        // if either copy drifts, seeds stop threading down reproducibly.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
