//! BiCGStab for non-Hermitian systems — used for direct 4D Wilson solves,
//! where it typically beats CGNE in matrix applications.

use super::{CgParams, SolveStats};
use crate::blas;
use crate::complex::C64;
use crate::dirac::LinearOp;
use crate::real::Real;
use crate::spinor::Spinor;

/// Relative size below which a BiCG scalar is considered broken down.
const BREAKDOWN: f64 = 1e-12;

/// Solve `A x = b` for general (non-Hermitian) `A` by stabilized
/// bi-conjugate gradients with true-residual restarts on breakdown.
/// `x` holds the initial guess on entry.
pub fn bicgstab<R: Real, A: LinearOp<R> + ?Sized>(
    op: &A,
    x: &mut [Spinor<R>],
    b: &[Spinor<R>],
    params: CgParams,
) -> SolveStats {
    let n = op.vec_len();
    assert_eq!(x.len(), n);
    assert_eq!(b.len(), n);
    let mut stats = SolveStats::new();

    let b_norm2 = blas::norm_sqr(b);
    if b_norm2 == 0.0 {
        blas::zero(x);
        stats.converged = true;
        stats.final_rel_residual = 0.0;
        return stats;
    }
    let target = params.tol * params.tol * b_norm2;

    // True residual; the shadow residual starts equal to it and is re-seeded
    // from it at every restart (delta-function sources routinely break the
    // fixed-shadow variant down).
    let mut r = vec![Spinor::zero(); n];
    op.apply(&mut r, x);
    stats.flops += op.flops_per_apply();
    for (ri, bi) in r.iter_mut().zip(b.iter()) {
        *ri = *bi - *ri;
    }
    let mut r0 = r.clone();
    let mut p = r.clone();
    let mut v = vec![Spinor::zero(); n];
    let mut t = vec![Spinor::zero(); n];
    let mut rho = C64::new(blas::norm_sqr(&r), 0.0);
    let mut r2 = rho.re;
    let mut restarts = 0usize;

    'outer: while stats.iterations < params.max_iter && r2 > target {
        op.apply(&mut v, &p);
        stats.iterations += 1;
        stats.flops += op.flops_per_apply();

        let r0v = blas::dot(&r0, &v);
        let breakdown_scale = BREAKDOWN * blas::norm_sqr(&r0).sqrt() * blas::norm_sqr(&v).sqrt();
        if r0v.abs() <= breakdown_scale {
            // Shadow direction lost: restart from the true residual.
            if restarts > 100 {
                break 'outer;
            }
            restarts += 1;
            op.apply(&mut r, x);
            stats.flops += op.flops_per_apply();
            for (ri, bi) in r.iter_mut().zip(b.iter()) {
                *ri = *bi - *ri;
            }
            r0.copy_from_slice(&r);
            p.copy_from_slice(&r);
            r2 = blas::norm_sqr(&r);
            rho = C64::new(r2, 0.0);
            continue 'outer;
        }
        let alpha = rho / r0v;

        // s = r − α v (reuse r as s).
        blas::caxpy(-alpha, &v, &mut r);
        let s2 = blas::norm_sqr(&r);
        if s2 <= target {
            blas::caxpy(alpha, &p, x);
            break;
        }

        op.apply(&mut t, &r);
        stats.iterations += 1;
        stats.flops += op.flops_per_apply();
        let tt = blas::norm_sqr(&t);
        if tt <= BREAKDOWN * s2 {
            blas::caxpy(alpha, &p, x);
            break;
        }
        let omega = blas::dot(&t, &r) / C64::new(tt, 0.0);

        // x += α p + ω s.
        blas::caxpy(alpha, &p, x);
        blas::caxpy(omega, &r, x);
        // r = s − ω t.
        blas::caxpy(-omega, &t, &mut r);
        r2 = blas::norm_sqr(&r);

        let rho_new = blas::dot(&r0, &r);
        let rho_scale = BREAKDOWN * blas::norm_sqr(&r0).sqrt() * r2.sqrt();
        if rho_new.abs() <= rho_scale || omega.abs() <= BREAKDOWN {
            // Restart with a fresh shadow residual.
            if restarts > 100 {
                break 'outer;
            }
            restarts += 1;
            op.apply(&mut r, x);
            stats.flops += op.flops_per_apply();
            for (ri, bi) in r.iter_mut().zip(b.iter()) {
                *ri = *bi - *ri;
            }
            r0.copy_from_slice(&r);
            p.copy_from_slice(&r);
            r2 = blas::norm_sqr(&r);
            rho = C64::new(r2, 0.0);
            continue 'outer;
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + β (p − ω v).
        blas::caxpy(-omega, &v, &mut p);
        for (pi, ri) in p.iter_mut().zip(r.iter()) {
            let scaled = pi.scale_c(beta.cast());
            *pi = *ri + scaled;
        }
    }

    // Exact residual for reporting.
    let mut ax = vec![Spinor::zero(); n];
    op.apply(&mut ax, x);
    stats.flops += op.flops_per_apply();
    let diff = blas::sub(b, &ax);
    let true_r2 = blas::norm_sqr(&diff);
    stats.final_rel_residual = (true_r2 / b_norm2).sqrt();
    stats.converged = true_r2 <= target * 4.0; // allow rounding at the edge
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::WilsonDirac;
    use crate::field::{FermionField, GaugeField};
    use crate::lattice::Lattice;
    use crate::solver::cgne;

    #[test]
    fn bicgstab_solves_wilson_directly() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 97);
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let b = FermionField::<f64>::gaussian(lat.volume(), 20).data;
        let mut x = vec![Spinor::zero(); lat.volume()];
        let stats = bicgstab(
            &d,
            &mut x,
            &b,
            CgParams {
                tol: 1e-9,
                max_iter: 4000,
            },
        );
        assert!(stats.converged, "{stats:?}");
        assert!(stats.final_rel_residual < 1e-8);
    }

    #[test]
    fn bicgstab_handles_point_sources() {
        // Delta-function sources break naive shadow residuals; the restart
        // logic must recover.
        let lat = Lattice::new([4, 4, 4, 8]);
        let gauge = GaugeField::<f64>::hot(&lat, 103);
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let mut b = vec![Spinor::zero(); lat.volume()];
        b[0] = Spinor::unit(2, 1);
        let mut x = vec![Spinor::zero(); lat.volume()];
        let stats = bicgstab(
            &d,
            &mut x,
            &b,
            CgParams {
                tol: 1e-8,
                max_iter: 8000,
            },
        );
        assert!(stats.converged, "{stats:?}");
    }

    #[test]
    fn bicgstab_agrees_with_cgne() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 101);
        let d = WilsonDirac::new(&lat, &gauge, 0.4, true);
        let b = FermionField::<f64>::gaussian(lat.volume(), 21).data;

        let mut x1 = vec![Spinor::zero(); lat.volume()];
        let s1 = bicgstab(&d, &mut x1, &b, CgParams::default());
        let mut x2 = vec![Spinor::zero(); lat.volume()];
        let s2 = cgne(&d, &mut x2, &b, CgParams::default());
        assert!(s1.converged && s2.converged);

        let diff = crate::blas::sub(&x1, &x2);
        let rel = crate::blas::norm_sqr(&diff) / crate::blas::norm_sqr(&x2);
        assert!(rel < 1e-14, "two solvers disagree: {rel}");
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge = GaugeField::<f64>::cold(&lat);
        let d = WilsonDirac::new(&lat, &gauge, 0.5, true);
        let b = vec![Spinor::zero(); lat.volume()];
        let mut x = FermionField::<f64>::gaussian(lat.volume(), 22).data;
        let stats = bicgstab(&d, &mut x, &b, CgParams::default());
        assert!(stats.converged);
        assert_eq!(crate::blas::norm_sqr(&x), 0.0);
    }
}
