//! Batched multi-RHS conjugate gradient with per-RHS stopping and
//! retirement of converged columns.
//!
//! [`cg_block`] runs N independent CG recurrences over a shared
//! [`BlockSpinor`] so every operator application amortizes the gauge-link
//! loads across all still-active right-hand-sides. Each column replicates
//! the *exact* control flow and floating-point sequence of [`super::cg`]:
//! the same early exits on zero/corrupt sources, the same in-loop
//! breakdown checks, the same scalar recurrence, and the same flop
//! accounting — so the returned per-column [`SolveStats`] compare equal
//! (`==`) to N sequential solves, and the solutions are bit-identical.
//! `tests/block_solver.rs` enforces this across block sizes, precisions,
//! comm policies, and thread widths.
//!
//! **Retirement rule.** A column leaves the active set the moment its
//! sequential counterpart would exit the CG loop (converged, budget
//! exhausted, or broken down). From that point its `x`, `r`, and `p`
//! columns are never written again — the block operator still reads the
//! whole interleaved block, but retired outputs are discarded — so a
//! retired solution is bit-stable under continued block iteration.

use super::{CgParams, SolveStats};
use crate::block::{self, BlockSpinor};
use crate::comms::CommError;
use crate::dirac::BlockLinearOp;
use crate::real::Real;
use obs::Json;

/// A (possibly fallible, possibly stateful) block operator as seen by the
/// batched solvers: the multi-RHS analogue of
/// [`FallibleOp`](super::FallibleOp). `flops_per_apply` is the
/// *single-column* figure, so per-column flop accounting matches the
/// unblocked solver exactly.
pub trait BlockOp<R: Real> {
    /// Length (in spinors) of each column.
    fn vec_len(&self) -> usize;
    /// `out = A · inp` on the whole interleaved block.
    fn apply_block(
        &mut self,
        out: &mut BlockSpinor<R>,
        inp: &BlockSpinor<R>,
    ) -> Result<(), CommError>;
    /// Floating-point operations per apply *per column*.
    fn flops_per_apply(&self) -> f64;
}

/// Adapter exposing an infallible single-domain [`BlockLinearOp`] as a
/// [`BlockOp`] — the batched analogue of [`super::Reliable`].
pub struct ReliableBlock<'a, R: Real, A: BlockLinearOp<R> + ?Sized> {
    op: &'a A,
    _marker: std::marker::PhantomData<R>,
}

impl<'a, R: Real, A: BlockLinearOp<R> + ?Sized> ReliableBlock<'a, R, A> {
    /// Wrap a deterministic in-process block operator.
    pub fn new(op: &'a A) -> Self {
        Self {
            op,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'a, R: Real, A: BlockLinearOp<R> + ?Sized> BlockOp<R> for ReliableBlock<'a, R, A> {
    fn vec_len(&self) -> usize {
        self.op.vec_len()
    }

    fn apply_block(
        &mut self,
        out: &mut BlockSpinor<R>,
        inp: &BlockSpinor<R>,
    ) -> Result<(), CommError> {
        let nrhs = inp.nrhs();
        self.op.apply_block(out.data_mut(), inp.data(), nrhs);
        Ok(())
    }

    fn flops_per_apply(&self) -> f64 {
        self.op.flops_per_apply()
    }
}

/// Per-column finalization replicating the post-loop epilogue of
/// [`super::cg`] bit-for-bit, then retiring the column.
fn finalize_column(
    j: usize,
    stats: &mut [SolveStats],
    active: &mut [bool],
    r2: &[f64],
    b_norm2: &[f64],
    target: &[f64],
) {
    if !r2[j].is_finite() {
        stats[j].breakdown = true;
    }
    stats[j].final_rel_residual = if r2[j].is_finite() {
        (r2[j] / b_norm2[j]).sqrt()
    } else {
        f64::INFINITY
    };
    stats[j].converged = r2[j].is_finite() && r2[j] <= target[j];
    active[j] = false;
    obs::Registry::current().event(
        "solver.cg_block.retire",
        vec![
            ("rhs", Json::from(j as u64)),
            ("iterations", Json::from(stats[j].iterations as u64)),
            ("converged", Json::from(stats[j].converged)),
        ],
    );
}

/// Batched CG over `nrhs` right-hand-sides sharing link traffic.
///
/// Solves `A x[:,j] = b[:,j]` for every column, starting from the values
/// already in `x` (zero them for fresh solves). Column `j` of the result —
/// solution, residual history, and the returned [`SolveStats`] including
/// flop counts — is bit-identical to `cg(op, x_j, b_j, params)` on the
/// packed column. On a communication failure every still-active column is
/// finalized as a breakdown (the data is intact but the iteration cannot
/// continue deterministically).
pub fn cg_block<R: Real, A: BlockOp<R> + ?Sized>(
    op: &mut A,
    x: &mut BlockSpinor<R>,
    b: &BlockSpinor<R>,
    params: CgParams,
) -> Vec<SolveStats> {
    let n = op.vec_len();
    let nrhs = b.nrhs();
    assert_eq!(x.len(), n);
    assert_eq!(b.len(), n);
    assert_eq!(x.nrhs(), nrhs);
    let mut stats = vec![SolveStats::new(); nrhs];
    let mut active = vec![true; nrhs];
    let mut b_norm2 = vec![0.0f64; nrhs];
    let mut target = vec![0.0f64; nrhs];
    let mut r2 = vec![0.0f64; nrhs];
    let mut block_applies: u64 = 0;
    let mut comm_failed = false;

    for j in 0..nrhs {
        b_norm2[j] = block::norm_sqr_col(b, j);
        if b_norm2[j] == 0.0 {
            // cg: zero source → zero solution, converged, no applies.
            block::zero_col(x, j);
            stats[j].converged = true;
            stats[j].final_rel_residual = 0.0;
            active[j] = false;
        } else if !b_norm2[j].is_finite() {
            // cg: corrupted source → immediate breakdown, x untouched.
            stats[j].breakdown = true;
            active[j] = false;
        } else {
            target[j] = params.tol * params.tol * b_norm2[j];
        }
    }

    let mut r = BlockSpinor::zeros(n, nrhs);
    if active.iter().any(|&a| a) {
        // r = b − A x. The apply spans retired columns too (their outputs
        // are discarded); each active column's flop ledger charges exactly
        // one single-column apply, as in `cg`.
        if op.apply_block(&mut r, x).is_err() {
            comm_failed = true;
            for j in 0..nrhs {
                if active[j] {
                    r2[j] = f64::NAN;
                    finalize_column(j, &mut stats, &mut active, &r2, &b_norm2, &target);
                }
            }
        } else {
            block_applies += 1;
            let rd = r.data_mut();
            for j in 0..nrhs {
                if !active[j] {
                    continue;
                }
                stats[j].flops += op.flops_per_apply();
                let mut i = j;
                while i < n * nrhs {
                    rd[i] = b.data()[i] - rd[i];
                    i += nrhs;
                }
            }
        }
    }

    let mut p = r.clone();
    let mut ap = BlockSpinor::zeros(n, nrhs);
    for j in 0..nrhs {
        if active[j] {
            r2[j] = block::norm_sqr_col(&r, j);
        }
    }
    let blas_flops = 6.0 * 24.0 * n as f64; // three axpys + two reductions per iteration

    loop {
        // Retire every column whose sequential loop would exit or break
        // down at this point, before the next shared apply.
        for j in 0..nrhs {
            if !active[j] {
                continue;
            }
            if !(stats[j].iterations < params.max_iter && r2[j] > target[j]) {
                finalize_column(j, &mut stats, &mut active, &r2, &b_norm2, &target);
            } else if !r2[j].is_finite() {
                stats[j].breakdown = true;
                finalize_column(j, &mut stats, &mut active, &r2, &b_norm2, &target);
            }
        }
        if !active.iter().any(|&a| a) {
            break;
        }

        if op.apply_block(&mut ap, &p).is_err() {
            comm_failed = true;
            for j in 0..nrhs {
                if active[j] {
                    stats[j].breakdown = true;
                    finalize_column(j, &mut stats, &mut active, &r2, &b_norm2, &target);
                }
            }
            break;
        }
        block_applies += 1;

        for j in 0..nrhs {
            if !active[j] {
                continue;
            }
            stats[j].iterations += 1;
            stats[j].flops += op.flops_per_apply() + blas_flops;

            let pap = block::dot_cols(&p, &ap, j).re;
            if !pap.is_finite() || pap <= 0.0 {
                stats[j].breakdown = true;
                finalize_column(j, &mut stats, &mut active, &r2, &b_norm2, &target);
                continue;
            }
            let alpha = r2[j] / pap;
            block::axpy_col(alpha, &p, x, j);
            block::axpy_col(-alpha, &ap, &mut r, j);
            let r2_new = block::norm_sqr_col(&r, j);
            let beta = r2_new / r2[j];
            block::xpby_col(&r, beta, &mut p, j);
            r2[j] = r2_new;
        }
    }

    let reg = obs::Registry::current();
    reg.counter("solver.cg_block.block_solves").inc();
    reg.counter("solver.cg_block.rhs").add(nrhs as u64);
    reg.counter("solver.cg_block.block_applies")
        .add(block_applies);
    if comm_failed {
        reg.counter("solver.cg_block.comm_failures").inc();
    }
    for s in &stats {
        super::record_solve("cg_block", s);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::{NormalOp, PrecWilson, WilsonDirac};
    use crate::field::{FermionField, GaugeField};
    use crate::lattice::Lattice;
    use crate::solver::cg;
    use crate::spinor::Spinor;

    #[test]
    fn block_cg_matches_sequential_bitwise() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 61);
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let normal = NormalOp::new(&d);
        let v = lat.volume();
        let nrhs = 3;
        let cols: Vec<Vec<Spinor<f64>>> = (0..nrhs)
            .map(|j| FermionField::<f64>::gaussian(v, 40 + j as u64).data)
            .collect();
        let bb = BlockSpinor::from_columns(&cols);
        let mut xb = BlockSpinor::zeros(v, nrhs);
        let mut rb = ReliableBlock::new(&normal);
        let block_stats = cg_block(&mut rb, &mut xb, &bb, CgParams::default());

        for (j, c) in cols.iter().enumerate() {
            let mut xs = vec![Spinor::zero(); v];
            let seq = cg(&normal, &mut xs, c, CgParams::default());
            assert_eq!(block_stats[j], seq, "stats of column {j}");
            assert_eq!(xb.col(j), xs, "solution of column {j}");
            assert!(seq.converged);
        }
    }

    #[test]
    fn zero_and_corrupt_columns_follow_cg_semantics() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 5);
        let d = PrecWilson::new(&lat, &gauge, 0.2, true);
        let normal = NormalOp::new(&d);
        let hv = lat.half_volume();
        let mut cols: Vec<Vec<Spinor<f64>>> = vec![
            vec![Spinor::zero(); hv],
            FermionField::<f64>::gaussian(hv, 77).data,
            FermionField::<f64>::gaussian(hv, 78).data,
        ];
        cols[2][0].s[0].c[0] = crate::complex::Complex::from_f64(f64::NAN, 0.0);
        let bb = BlockSpinor::from_columns(&cols);
        let mut xb = BlockSpinor::zeros(hv, 3);
        let mut rb = ReliableBlock::new(&normal);
        let block_stats = cg_block(&mut rb, &mut xb, &bb, CgParams::default());

        for (j, c) in cols.iter().enumerate() {
            let mut xs = vec![Spinor::zero(); hv];
            let seq = cg(&normal, &mut xs, c, CgParams::default());
            assert_eq!(block_stats[j], seq, "stats of column {j}");
            assert_eq!(xb.col(j), xs, "solution of column {j}");
        }
        assert!(block_stats[0].converged && block_stats[0].iterations == 0);
        assert!(block_stats[2].breakdown);
    }

    #[test]
    fn iteration_budget_is_per_column() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 9);
        let d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let normal = NormalOp::new(&d);
        let v = lat.volume();
        let cols: Vec<Vec<Spinor<f64>>> = (0..2)
            .map(|j| FermionField::<f64>::gaussian(v, 90 + j as u64).data)
            .collect();
        let bb = BlockSpinor::from_columns(&cols);
        let mut xb = BlockSpinor::zeros(v, 2);
        let params = CgParams {
            tol: 1e-14,
            max_iter: 4,
        };
        let mut rb = ReliableBlock::new(&normal);
        let block_stats = cg_block(&mut rb, &mut xb, &bb, params);
        for (j, c) in cols.iter().enumerate() {
            let mut xs = vec![Spinor::zero(); v];
            let seq = cg(&normal, &mut xs, c, params);
            assert_eq!(block_stats[j], seq);
            assert_eq!(xb.col(j), xs);
            assert_eq!(seq.iterations, 4);
            assert!(!seq.converged);
        }
    }
}
