//! Bit-identity suite for the sharded halo-exchange dslash.
//!
//! The decomposed kernel promises output bit-identical to the single-domain
//! kernel for every (rank grid, thread width, precision, communication
//! policy) combination: the per-site arithmetic is literally the same
//! `hop_site` function, fed ghost spinors and gauge links gathered from the
//! same global field. These tests pin that contract — including the
//! antiperiodic-t boundary signs, which cross *rank* boundaries when the t
//! direction is partitioned — and stress the exactly-once pack/unpack
//! discipline under repeated threaded applies.

use lqcd::core::dirac::LinearOp;
use lqcd::core::prelude::*;
use lqcd::machine::commpolicy::{CommPolicy, CommTransport};
use std::sync::Arc;

const GRIDS: [[usize; 4]; 3] = [[1, 1, 1, 1], [2, 1, 1, 1], [2, 2, 1, 1]];
const WIDTHS: [usize; 2] = [1, 8];
const L5: usize = 4;
const GPUS_PER_NODE: usize = 4;

fn at_width<R: Send>(w: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(w)
        .build()
        .expect("width handle")
        .install(op)
}

/// Reference: the single-domain hopping kernel applied slice-by-slice to an
/// s-major 5D vector.
fn single_domain_hop<R: Real, G: GaugeLinks<R>>(
    lat: &Lattice,
    gauge: &G,
    inp: &[Spinor<R>],
    l5: usize,
) -> Vec<Spinor<R>> {
    let hopping = HoppingKernel::new(lat, gauge, true);
    let v = lat.volume();
    let mut out = vec![Spinor::zero(); l5 * v];
    for s in 0..l5 {
        hopping.apply_full(&mut out[s * v..(s + 1) * v], &inp[s * v..(s + 1) * v], 1024);
    }
    out
}

/// The sharded kernel under `grid`/`policy`, scattered, applied, gathered.
fn sharded_hop<R: Real, G: GaugeLinks<R>>(
    lat: &Lattice,
    gauge: &G,
    inp: &[Spinor<R>],
    l5: usize,
    grid: [usize; 4],
    policy: CommPolicy,
) -> (Vec<Spinor<R>>, lqcd::core::comms::CommStats) {
    let domain =
        Arc::new(DomainDecomposition::new(lat, grid, l5, GPUS_PER_NODE).expect("divisible grid"));
    let mut kernel = ShardedHopping::new(domain.clone(), gauge, true, policy);
    let mut si = ShardedField::scatter(&domain, inp, l5);
    let mut so = ShardedField::zeros(&domain, l5);
    kernel
        .apply(&mut so, &mut si)
        .expect("fault-free transport");
    let mut out = vec![Spinor::zero(); l5 * lat.volume()];
    so.gather_into(&domain, &mut out);
    (out, kernel.stats())
}

#[test]
fn sharded_dslash_bit_identical_f64_all_grids_widths_policies() {
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 61);
    let inp = FermionField::<f64>::gaussian(L5 * lat.volume(), 62).data;
    let reference = at_width(1, || single_domain_hop(&lat, &gauge, &inp, L5));

    for grid in GRIDS {
        for &w in &WIDTHS {
            for policy in CommPolicy::all() {
                let (got, _) = at_width(w, || sharded_hop(&lat, &gauge, &inp, L5, grid, policy));
                assert_eq!(
                    got,
                    reference,
                    "grid {grid:?}, width {w}, policy {}",
                    policy.label()
                );
            }
        }
    }
}

#[test]
fn sharded_dslash_bit_identical_half_precision_gauge() {
    // The f32 path through HalfGaugeField exercises deterministic
    // decode-on-access: the sharded kernel gathers its link tables through
    // the same `GaugeLinks::link` calls as the single-domain stencil.
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge32 = GaugeField::<f32>::hot(&lat, 63);
    let half = HalfGaugeField::from_gauge(&gauge32);
    let inp = FermionField::<f32>::gaussian(L5 * lat.volume(), 64).data;
    let reference = at_width(1, || single_domain_hop(&lat, &half, &inp, L5));

    for grid in GRIDS {
        for &w in &WIDTHS {
            for policy in CommPolicy::all() {
                let (got, _) = at_width(w, || sharded_hop(&lat, &half, &inp, L5, grid, policy));
                assert_eq!(
                    got,
                    reference,
                    "grid {grid:?}, width {w}, policy {}",
                    policy.label()
                );
            }
        }
    }
}

#[test]
fn antiperiodic_t_sign_lands_on_rank_boundary_hops() {
    // Partition the t direction so the global t-wrap is a *ghost* hop, and
    // compare against the single-domain kernel where it is a local wrap.
    // Distinct policies must all agree, so the sign cannot be coming from
    // per-policy code paths.
    let lat = Lattice::new([4, 4, 2, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 65);
    let inp = FermionField::<f64>::gaussian(L5 * lat.volume(), 66).data;
    let reference = single_domain_hop(&lat, &gauge, &inp, L5);

    for grid in [[1, 1, 1, 2], [1, 1, 1, 4], [2, 1, 1, 2]] {
        for policy in CommPolicy::all() {
            let (got, _) = sharded_hop(&lat, &gauge, &inp, L5, grid, policy);
            assert_eq!(got, reference, "grid {grid:?}, policy {}", policy.label());
        }
    }
}

#[test]
fn sharded_mobius_bit_identical_to_single_domain() {
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 67);
    let params = MobiusParams::standard(L5, 0.08);
    let single = MobiusDirac::new(&lat, &gauge, params);
    let inp = FermionField::<f64>::gaussian(single.vec_len(), 68).data;
    let mut reference = vec![Spinor::zero(); single.vec_len()];
    at_width(1, || single.apply(&mut reference, &inp));

    for grid in GRIDS {
        for &w in &WIDTHS {
            for policy in CommPolicy::all() {
                let domain = Arc::new(
                    DomainDecomposition::new(&lat, grid, L5, GPUS_PER_NODE).expect("grid"),
                );
                let mut op = ShardedMobius::new(&lat, &gauge, params, domain, policy);
                let mut got = vec![Spinor::zero(); op.vec_len()];
                at_width(w, || {
                    op.apply(&mut got, &inp).expect("fault-free transport")
                });
                assert_eq!(
                    got,
                    reference,
                    "grid {grid:?}, width {w}, policy {}",
                    policy.label()
                );
            }
        }
    }
}

#[test]
fn exactly_once_pack_unpack_under_repeated_threaded_applies() {
    // Every apply internally asserts that each face is packed exactly once
    // and each ghost zone filled exactly once (duplicate or missing halo
    // messages are hard errors inside the kernel). Hammer that discipline
    // with repeated applies at full width and check the cumulative stats
    // against the analytic expectations.
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 71);
    let grid = [2, 2, 1, 1];
    let domain =
        Arc::new(DomainDecomposition::new(&lat, grid, L5, GPUS_PER_NODE).expect("divisible grid"));
    let n_applies = 25u64;
    let spinor_bytes = std::mem::size_of::<Spinor<f64>>() as u64;
    let per_apply_msgs = domain.total_messages_per_apply() as u64;
    let per_apply_halo_sites: u64 = domain
        .ranks()
        .iter()
        .flat_map(|r| r.exchanges.iter())
        .map(|ex| 2 * (ex.face_len * L5) as u64)
        .sum();

    for policy in CommPolicy::all() {
        let mut kernel = ShardedHopping::new(domain.clone(), &gauge, true, policy);
        let inp = FermionField::<f64>::gaussian(L5 * lat.volume(), 72).data;
        at_width(8, || {
            let mut si = ShardedField::scatter(&domain, &inp, L5);
            let mut so = ShardedField::zeros(&domain, L5);
            for _ in 0..n_applies {
                kernel
                    .apply(&mut so, &mut si)
                    .expect("fault-free transport");
            }
        });
        let s = kernel.stats();
        let label = policy.label();
        assert_eq!(s.applies, n_applies, "{label}");
        assert_eq!(s.messages, n_applies * per_apply_msgs, "{label}");
        assert_eq!(s.halo_sites, n_applies * per_apply_halo_sites, "{label}");
        assert_eq!(
            s.bytes_sent,
            n_applies * per_apply_halo_sites * spinor_bytes,
            "{label}"
        );
        let pack_copies = match policy.transport {
            CommTransport::StagedDma => 2,
            CommTransport::ZeroCopy => 1,
            CommTransport::GdrDirect => 0,
        };
        assert_eq!(
            s.bytes_packed,
            pack_copies * n_applies * per_apply_halo_sites * spinor_bytes,
            "{label}"
        );
        assert_eq!(
            s.sites_interior + s.sites_boundary,
            n_applies * (lat.volume() * L5) as u64,
            "{label}"
        );
    }
}

#[test]
fn tuner_sweeps_every_policy_and_installs_winner() {
    use lqcd::autotune::Tuner;
    use lqcd::obs::ManualClock;

    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 81);
    let domain =
        Arc::new(DomainDecomposition::new(&lat, [2, 1, 1, 1], L5, GPUS_PER_NODE).expect("grid"));
    let mut kernel = ShardedHopping::new(domain.clone(), &gauge, true, CommPolicy::all()[0]);
    let inp = FermionField::<f64>::gaussian(L5 * lat.volume(), 82).data;
    let mut si = ShardedField::scatter(&domain, &inp, L5);
    let mut so = ShardedField::zeros(&domain, L5);

    // A frozen clock ranks all candidates equally; the sweep must still
    // visit every policy (2 timed reps each) and install a valid winner.
    let tuner = Tuner::with_clock(ManualClock::new(0.0));
    let best = tune_comm_policy(&tuner, &mut kernel, &mut so, &mut si);
    assert!(CommPolicy::all().contains(&best));
    assert_eq!(kernel.policy(), best);
    let reps_per_candidate = 2;
    assert_eq!(
        kernel.stats().applies,
        (CommPolicy::all().len() * reps_per_candidate) as u64,
        "sweep must execute every policy"
    );

    // Second tune of the same key is served from the cache: no new applies.
    let before = kernel.stats().applies;
    let again = tune_comm_policy(&tuner, &mut kernel, &mut so, &mut si);
    assert_eq!(again, best);
    assert_eq!(kernel.stats().applies, before, "cache hit must not re-run");
}

#[test]
fn fine_granularity_reports_overlap_window_with_manual_clock() {
    use lqcd::machine::commpolicy::CommGranularity;
    use lqcd::obs::ManualClock;

    // Local extent 4 along the split direction, so the interior (sites not
    // touching any ghost) is nonempty.
    let lat = Lattice::new([8, 4, 4, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 73);
    let domain =
        Arc::new(DomainDecomposition::new(&lat, [2, 1, 1, 1], L5, GPUS_PER_NODE).expect("grid"));
    let inp = FermionField::<f64>::gaussian(L5 * lat.volume(), 74).data;

    for policy in CommPolicy::all() {
        let clock = ManualClock::new(0.0);
        let mut kernel = ShardedHopping::new(domain.clone(), &gauge, true, policy);
        kernel.set_clock(clock.clone());
        let mut si = ShardedField::scatter(&domain, &inp, L5);
        let mut so = ShardedField::zeros(&domain, L5);
        clock.advance(1.0);
        kernel
            .apply(&mut so, &mut si)
            .expect("fault-free transport");
        let s = kernel.stats();
        match policy.granularity {
            // The manual clock never advances during the apply, so a fine
            // policy reports a zero-length (but measured) window, and the
            // interior/boundary split is real.
            CommGranularity::Fine => {
                assert_eq!(s.overlap_seconds, 0.0, "{}", policy.label());
                assert!(s.sites_interior > 0, "{}", policy.label());
                assert!(s.sites_boundary > 0, "{}", policy.label());
            }
            CommGranularity::Coarse => {
                assert_eq!(s.overlap_seconds, 0.0, "{}", policy.label());
                assert_eq!(s.sites_interior, 0, "{}", policy.label());
            }
        }
    }
}
