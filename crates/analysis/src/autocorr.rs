//! Integrated autocorrelation time of a Monte Carlo series — used to set
//! the configuration skip of the quenched ensemble generator.

/// Integrated autocorrelation time `τ_int = ½ + Σ_t ρ(t)` with the standard
/// self-consistent window cutoff (`W ≥ c·τ_int`, `c = 6`).
pub fn integrated_autocorrelation(series: &[f64]) -> f64 {
    let n = series.len();
    assert!(n >= 4, "series too short for autocorrelation");
    let mean: f64 = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    if var == 0.0 {
        return 0.5;
    }
    let rho = |t: usize| -> f64 {
        let mut acc = 0.0;
        for i in 0..n - t {
            acc += (series[i] - mean) * (series[i + t] - mean);
        }
        acc / ((n - t) as f64 * var)
    };
    let mut tau = 0.5;
    for t in 1..n / 2 {
        tau += rho(t);
        // Self-consistent window: stop once the window exceeds 6 τ.
        if (t as f64) >= 6.0 * tau {
            break;
        }
    }
    tau.max(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn iid_series_has_tau_half() {
        let mut rng = SmallRng::seed_from_u64(3);
        let series: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        let tau = integrated_autocorrelation(&series);
        assert!((tau - 0.5).abs() < 0.15, "iid tau {tau}");
    }

    #[test]
    fn ar1_series_has_known_tau() {
        // AR(1) with coefficient a: τ_int = ½ (1+a)/(1−a).
        let a = 0.8f64;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut x = 0.0;
        let series: Vec<f64> = (0..200_000)
            .map(|_| {
                x = a * x + (rng.gen::<f64>() - 0.5);
                x
            })
            .collect();
        let tau = integrated_autocorrelation(&series);
        let expect = 0.5 * (1.0 + a) / (1.0 - a); // = 4.5
        assert!(
            (tau - expect).abs() < 0.8,
            "AR(1) tau {tau}, expected {expect}"
        );
    }

    #[test]
    fn constant_series_is_defined() {
        let series = vec![1.0; 100];
        assert_eq!(integrated_autocorrelation(&series), 0.5);
    }
}
