//! Width-invariance regression suite for the observables and monitors
//! that used to reduce floats through unordered `par_iter().sum()` /
//! `.reduce()` chains (the eight `R5-unordered-float-reduce` baseline
//! suppressions burned down alongside the solve service).
//!
//! Every fixed site now routes through the fixed-shape
//! `lqcd_core::reduce` helpers, so each value here must be bit-identical
//! at pool widths 1 and 8. These are exactly the quantities a
//! content-addressed result cache compares bit-for-bit: a width-dependent
//! plaquette or charge would silently fork the cache key space.

use lqcd::core::prelude::*;
use lqcd::core::topology;

fn at_width<R: Send>(w: usize, op: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(w)
        .build()
        .expect("width handle")
        .install(op)
}

/// Run `op` at widths 1 and 8 and require bitwise-equal results.
fn widths_agree<R, F>(what: &str, op: F) -> R
where
    R: PartialEq + std::fmt::Debug + Send,
    F: Fn() -> R + Send + Sync,
{
    let r1 = at_width(1, &op);
    let r8 = at_width(8, &op);
    assert_eq!(r1, r8, "{what}: width 1 vs 8 disagree");
    r1
}

/// A lattice big enough that every reduction splits into multiple chunks
/// at width 8 (the single-chunk shortcut would make the test vacuous).
fn test_gauge() -> (Lattice, GaugeField<f64>) {
    let lat = Lattice::new([8, 8, 8, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 2024);
    (lat, gauge)
}

#[test]
fn plaquette_bits_stable_across_widths() {
    let (lat, gauge) = test_gauge();
    let p = widths_agree("average_plaquette", || {
        average_plaquette(&lat, &gauge).to_bits()
    });
    assert!(f64::from_bits(p).is_finite());
}

#[test]
fn max_unitarity_error_bits_stable_across_widths() {
    let (_, mut gauge) = test_gauge();
    // Perturb the links so the max is a nontrivial float, not ~1e-16 noise.
    for u in gauge.links_mut().iter_mut().step_by(7) {
        *u = u.scale(1.0 + 1e-6);
    }
    widths_agree("max_unitarity_error", || {
        gauge.max_unitarity_error().to_bits()
    });
}

#[test]
fn halfprec_decode_error_bits_stable_across_widths() {
    let (_, gauge) = test_gauge();
    let half = HalfGaugeField::from_gauge(&gauge);
    let e = widths_agree("HalfGaugeField::max_abs_error", || {
        half.max_abs_error(&gauge).to_bits()
    });
    assert!(f64::from_bits(e) > 0.0, "16-bit codes must lose something");
}

#[test]
fn wilson_loop_bits_stable_across_widths() {
    let (lat, gauge) = test_gauge();
    widths_agree("wilson_loop(2,2)", || {
        wilson_loop(&lat, &gauge, 2, 2).to_bits()
    });
}

#[test]
fn polyakov_loop_bits_stable_across_widths() {
    let (lat, gauge) = test_gauge();
    widths_agree("polyakov_loop", || {
        let p = polyakov_loop(&lat, &gauge);
        (p.re.to_bits(), p.im.to_bits())
    });
}

#[test]
fn topological_charge_and_action_density_bits_stable_across_widths() {
    let (lat, gauge) = test_gauge();
    widths_agree("topological_charge / action_density", || {
        (
            topological_charge(&lat, &gauge).to_bits(),
            topology::action_density(&lat, &gauge).to_bits(),
        )
    });
}

#[test]
fn hmc_trajectory_bits_stable_across_widths() {
    // The kinetic-energy reduction feeds the Metropolis ΔH; a
    // width-dependent sum would fork accept/reject decisions between
    // machines. One full trajectory (two kinetic evaluations, one action
    // difference) must produce the same bits at any width.
    let lat = Lattice::new([4, 4, 4, 4]);
    widths_agree("hmc trajectory ΔH", || {
        let mut hmc = HmcSampler::cold_start(
            &lat,
            HmcParams {
                beta: 5.7,
                trajectory_length: 0.5,
                n_steps: 5,
            },
            99,
        );
        let t = hmc.trajectory();
        (t.delta_h.to_bits(), t.accepted, t.plaquette.to_bits())
    });
}
