//! The Möbius domain-wall Dirac operator — the discretization used by the
//! paper — and its 4D-red–black preconditioned Schur complement.
//!
//! With `D_W` the 4D Wilson operator at negative mass `−M5` (diagonal part
//! `d = 4 − M5`), the Möbius operator on an `L5`-slice fifth dimension is
//!
//! `D(m) ψ_s = (b5 D_W + 1) ψ_s + (c5 D_W − 1)·shift(ψ)_s`
//!
//! where `shift(ψ)_s = P₋ ψ_{s+1} + P₊ ψ_{s−1}` and the wraps at `s = 0` and
//! `s = L5−1` carry the factor `−m` (the physical quark mass coupling the
//! walls). Setting `b5 = 1, c5 = 0` recovers the Shamir operator.
//!
//! Grouping terms, `D = A − ½ H ∘ ρ` where `A = α + β·shift`
//! (`α = b5·d + 1`, `β = c5·d − 1`) and `ρ = b5 + c5·shift` act only in the
//! fifth dimension and spin. `A` (the site-diagonal block of the 4D
//! checkerboarding) is inverted in closed form by two precomputed real
//! `L5×L5` matrices, one per chirality — that inverse is what makes the
//! paper's "red–black preconditioned domain-wall CG" possible.
//!
//! Note that for `c5 ≠ 0` the operator is *not* Γ5R5-hermitian: the hopping
//! `H` carries `(1∓γμ)` factors that anticommute with the γ5 inside the
//! `P±` of `shift`, so `H∘ρ ≠ ρ∘H`. The adjoint is therefore implemented
//! explicitly (`D† = A† − ½ ρ† γ5 H γ5`), exactly as QUDA's `Mdag` does.
//!
//! Vectors are `s`-major: the spinor at `(s, x)` lives at `s·V + x`, so each
//! `s`-slice is a contiguous 4D field and the 4D hopping kernel runs on it
//! unchanged.

use super::hopping::{HoppingKernel, HOPPING_FLOPS_PER_SITE};
use super::{BlockDiracOp, BlockLinearOp, DiracOp, DslashVariant, LinearOp};
use crate::field::GaugeLinks;
use crate::lattice::{Lattice, Parity};
use crate::real::Real;
use crate::spinor::Spinor;
use parking_lot::Mutex;
use rayon::prelude::*;

/// Physical and algorithmic parameters of the Möbius operator.
#[derive(Clone, Copy, Debug)]
pub struct MobiusParams {
    /// Fifth-dimension extent.
    pub l5: usize,
    /// Domain-wall height `M5` (typically 1.8).
    pub m5: f64,
    /// Möbius kernel parameter `b5`.
    pub b5: f64,
    /// Möbius kernel parameter `c5` (0 recovers Shamir).
    pub c5: f64,
    /// Bare quark mass `m` coupling the walls.
    pub mass: f64,
}

impl MobiusParams {
    /// A standard Möbius setup (`b5 = 1.5, c5 = 0.5`, scale `b5+c5 = 2`).
    pub fn standard(l5: usize, mass: f64) -> Self {
        Self {
            l5,
            m5: 1.8,
            b5: 1.5,
            c5: 0.5,
            mass,
        }
    }

    /// The Shamir limit.
    pub fn shamir(l5: usize, mass: f64) -> Self {
        Self {
            l5,
            m5: 1.8,
            b5: 1.0,
            c5: 0.0,
            mass,
        }
    }

    /// Diagonal of `D_W(−M5)`.
    pub fn d_diag(&self) -> f64 {
        4.0 - self.m5
    }

    /// `α = b5·d + 1`.
    pub fn alpha(&self) -> f64 {
        self.b5 * self.d_diag() + 1.0
    }

    /// `β = c5·d − 1`.
    pub fn beta(&self) -> f64 {
        self.c5 * self.d_diag() - 1.0
    }
}

/// Invert a dense real matrix by Gauss–Jordan elimination with partial
/// pivoting. Panics on a singular matrix; the `A±` blocks are provably
/// nonsingular for `|β/α| < 1`, which all sensible parameters satisfy.
fn invert_real_matrix(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut aug: Vec<Vec<f64>> = a
        .iter()
        .enumerate()
        .map(|(i, row)| {
            assert_eq!(row.len(), n, "matrix must be square");
            let mut r = row.clone();
            r.extend((0..n).map(|j| if i == j { 1.0 } else { 0.0 }));
            r
        })
        .collect();
    for col in 0..n {
        // `total_cmp` orders identically to `partial_cmp` on the
        // non-negative magnitudes compared here, without a NaN panic
        // path; `col..n` is nonempty (col < n), so the fallback pivot
        // never actually fires.
        let pivot = (col..n)
            .max_by(|&i, &j| aug[i][col].abs().total_cmp(&aug[j][col].abs()))
            .unwrap_or(col);
        assert!(aug[pivot][col].abs() > 1e-300, "singular A-block");
        aug.swap(col, pivot);
        let inv = 1.0 / aug[col][col];
        for v in aug[col].iter_mut() {
            *v *= inv;
        }
        for row in 0..n {
            if row != col {
                let f = aug[row][col];
                if f != 0.0 {
                    for k in 0..2 * n {
                        let sub = f * aug[col][k];
                        aug[row][k] -= sub;
                    }
                }
            }
        }
    }
    aug.into_iter().map(|r| r[n..].to_vec()).collect()
}

/// Builds `A±` and their inverses for the given parameters.
///
/// `A⁺` couples chirality-plus spin components to `s−1` (wrap `−m`);
/// `A⁻` couples chirality-minus components to `s+1` (wrap `−m`).
fn build_a_inverses(p: &MobiusParams) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let l5 = p.l5;
    let (alpha, beta, m) = (p.alpha(), p.beta(), p.mass);
    let mut a_plus = vec![vec![0.0; l5]; l5];
    let mut a_minus = vec![vec![0.0; l5]; l5];
    for s in 0..l5 {
        a_plus[s][s] = alpha;
        a_minus[s][s] = alpha;
        if s > 0 {
            a_plus[s][s - 1] = beta;
        } else {
            a_plus[0][l5 - 1] = -m * beta;
        }
        if s + 1 < l5 {
            a_minus[s][s + 1] = beta;
        } else {
            a_minus[l5 - 1][0] = -m * beta;
        }
    }
    (invert_real_matrix(&a_plus), invert_real_matrix(&a_minus))
}

/// Shared fifth-dimension machinery for the full and preconditioned forms.
struct FifthDim<R> {
    params: MobiusParams,
    /// Inverse of the chirality-plus block, row-major.
    ainv_plus: Vec<R>,
    /// Inverse of the chirality-minus block, row-major.
    ainv_minus: Vec<R>,
}

impl<R: Real> FifthDim<R> {
    fn new(params: MobiusParams) -> Self {
        assert!(params.l5 >= 2, "L5 must be at least 2");
        let (p, m) = build_a_inverses(&params);
        let flat =
            |m: Vec<Vec<f64>>| -> Vec<R> { m.into_iter().flatten().map(R::from_f64).collect() };
        Self {
            params,
            ainv_plus: flat(p),
            ainv_minus: flat(m),
        }
    }

    /// `out_s = P₋ in_{s+1} + P₊ in_{s−1}` with `−m` wraps (`dagger = false`),
    /// or its adjoint `out_s = P₋ in_{s−1} + P₊ in_{s+1}` with the wraps
    /// mirrored (`dagger = true`). `slice_len` is the 4D vector length
    /// (volume or half-volume).
    fn shift(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], slice_len: usize, dagger: bool) {
        let l5 = self.params.l5;
        let mm = R::from_f64(-self.params.mass);
        out.par_chunks_mut(slice_len)
            .enumerate()
            .for_each(|(s, out_slice)| {
                let up = if s + 1 < l5 { s + 1 } else { 0 };
                let dn = if s > 0 { s - 1 } else { l5 - 1 };
                let up_scale = if s + 1 < l5 { R::ONE } else { mm };
                let dn_scale = if s > 0 { R::ONE } else { mm };
                let up_slice = &inp[up * slice_len..(up + 1) * slice_len];
                let dn_slice = &inp[dn * slice_len..(dn + 1) * slice_len];
                for (i, o) in out_slice.iter_mut().enumerate() {
                    *o = if dagger {
                        // shift† = P₋ S₋ + P₊ S₊.
                        dn_slice[i].chiral_project(false).scale(dn_scale)
                            + up_slice[i].chiral_project(true).scale(up_scale)
                    } else {
                        // shift = P₋ S₊ + P₊ S₋.
                        up_slice[i].chiral_project(false).scale(up_scale)
                            + dn_slice[i].chiral_project(true).scale(dn_scale)
                    };
                }
            });
    }

    /// One element of [`Self::shift`]: the shifted spinor at 5D index
    /// `(s, i)`. The per-element operation chain is identical to the slice
    /// loop in `shift`, so fused callers stay bit-identical to the two-pass
    /// path.
    #[inline(always)]
    fn shift_at(
        &self,
        inp: &[Spinor<R>],
        slice_len: usize,
        s: usize,
        i: usize,
        dagger: bool,
    ) -> Spinor<R> {
        let l5 = self.params.l5;
        let mm = R::from_f64(-self.params.mass);
        let up = if s + 1 < l5 { s + 1 } else { 0 };
        let dn = if s > 0 { s - 1 } else { l5 - 1 };
        let up_scale = if s + 1 < l5 { R::ONE } else { mm };
        let dn_scale = if s > 0 { R::ONE } else { mm };
        let u = &inp[up * slice_len + i];
        let d = &inp[dn * slice_len + i];
        if dagger {
            d.chiral_project(false).scale(dn_scale) + u.chiral_project(true).scale(up_scale)
        } else {
            u.chiral_project(false).scale(up_scale) + d.chiral_project(true).scale(dn_scale)
        }
    }

    /// Column-wise fused precompute of *both* diagonal-sector vectors:
    /// `rho = b5·ψ + c5·shift(ψ)` and `diag = α·ψ + β·shift(ψ)` in a single
    /// sweep parallelized over 4D sites. For a fixed site the whole s-column
    /// of `ψ` stays cache-resident across the inner s-loop, so each element
    /// is streamed from memory once instead of three times per output (and
    /// the shifted spinor is computed once and shared by both outputs —
    /// value-reuse, not reassociation, so both vectors carry the identical
    /// per-element chains as [`Self::affine_shift`]).
    fn rho_and_diag(
        &self,
        rho: &mut [Spinor<R>],
        diag: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        slice_len: usize,
    ) {
        let l5 = self.params.l5;
        let n = inp.len();
        assert_eq!(rho.len(), n);
        assert_eq!(diag.len(), n);
        assert_eq!(n, l5 * slice_len);
        let grain = crate::blas::grain_for(slice_len);
        let rptr = super::hopping::SendPtr(rho.as_mut_ptr());
        let dptr = super::hopping::SendPtr(diag.as_mut_ptr());
        let avx2 = crate::simd::avx2_detected();
        rayon::for_each_chunk(slice_len, grain, |range| {
            if avx2 {
                // SAFETY: `avx2_detected` returned true, so the AVX2-compiled
                // twin is safe to call on this CPU.
                #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
                unsafe {
                    self.rho_and_diag_range_avx2(&rptr, &dptr, inp, slice_len, range)
                };
            } else {
                self.rho_and_diag_range(&rptr, &dptr, inp, slice_len, range);
            }
        });
    }

    /// Chunk body of [`Self::rho_and_diag`]: 4D sites `range`, whole
    /// s-columns.
    #[inline(always)]
    fn rho_and_diag_range(
        &self,
        rptr: &super::hopping::SendPtr<Spinor<R>>,
        dptr: &super::hopping::SendPtr<Spinor<R>>,
        inp: &[Spinor<R>],
        slice_len: usize,
        range: std::ops::Range<usize>,
    ) {
        let l5 = self.params.l5;
        let (b5, c5) = (R::from_f64(self.params.b5), R::from_f64(self.params.c5));
        let (al, be) = (
            R::from_f64(self.params.alpha()),
            R::from_f64(self.params.beta()),
        );
        for i in range {
            for s in 0..l5 {
                let idx = s * slice_len + i;
                let sh = self.shift_at(inp, slice_len, s, i, false);
                // SAFETY: each (s, i) pair is written by exactly one task
                // (`i` ranges over disjoint chunks, `s` is task-local),
                // and `idx < l5·slice_len` keeps both writes in bounds.
                unsafe {
                    *rptr.get().add(idx) = inp[idx].scale(b5) + sh.scale(c5);
                    *dptr.get().add(idx) = inp[idx].scale(al) + sh.scale(be);
                }
            }
        }
    }

    /// AVX2-compiled twin of [`Self::rho_and_diag_range`]; same IEEE ops,
    /// 256-bit codegen, bit-identical results (rustc emits no FMA).
    #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    fn rho_and_diag_range_avx2(
        &self,
        rptr: &super::hopping::SendPtr<Spinor<R>>,
        dptr: &super::hopping::SendPtr<Spinor<R>>,
        inp: &[Spinor<R>],
        slice_len: usize,
        range: std::ops::Range<usize>,
    ) {
        self.rho_and_diag_range(rptr, dptr, inp, slice_len, range);
    }

    /// Column-wise fused `out = ρ(A⁻¹ in)`: for each 4D site, apply the
    /// `L5×L5` inverse to the whole s-column (the exact accumulation chain
    /// of [`Self::apply_a_inverse`], so each input element is read from
    /// memory once instead of `L5` times), then form
    /// `b5·(A⁻¹in) + c5·shift(A⁻¹in)` from the still-local column — the
    /// shift chain is [`Self::shift_at`] on the column itself.
    fn ainv_then_rho(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], slice_len: usize) {
        let l5 = self.params.l5;
        let n = inp.len();
        assert_eq!(out.len(), n);
        assert_eq!(n, l5 * slice_len);
        let grain = crate::blas::grain_for(slice_len);
        let optr = super::hopping::SendPtr(out.as_mut_ptr());
        let avx2 = crate::simd::avx2_detected();
        rayon::for_each_chunk(slice_len, grain, |range| {
            if avx2 {
                // SAFETY: `avx2_detected` returned true, so the AVX2-compiled
                // twin is safe to call on this CPU.
                #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
                unsafe {
                    self.ainv_then_rho_range_avx2(&optr, inp, slice_len, range)
                };
            } else {
                self.ainv_then_rho_range(&optr, inp, slice_len, range);
            }
        });
    }

    /// Chunk body of [`Self::ainv_then_rho`]: 4D sites `range`, whole
    /// s-columns.
    #[inline(always)]
    fn ainv_then_rho_range(
        &self,
        optr: &super::hopping::SendPtr<Spinor<R>>,
        inp: &[Spinor<R>],
        slice_len: usize,
        range: std::ops::Range<usize>,
    ) {
        let l5 = self.params.l5;
        let (b5, c5) = (R::from_f64(self.params.b5), R::from_f64(self.params.c5));
        let (inv_up, inv_dn) = (&self.ainv_plus, &self.ainv_minus);
        let mut col = vec![Spinor::zero(); l5];
        for i in range {
            for (s_out, c) in col.iter_mut().enumerate() {
                let mut acc = Spinor::zero();
                for s_in in 0..l5 {
                    let wp = inv_up[s_out * l5 + s_in];
                    let wm = inv_dn[s_out * l5 + s_in];
                    let src = &inp[s_in * slice_len + i];
                    acc.s[0] += src.s[0].scale(wp);
                    acc.s[1] += src.s[1].scale(wp);
                    acc.s[2] += src.s[2].scale(wm);
                    acc.s[3] += src.s[3].scale(wm);
                }
                *c = acc;
            }
            for s in 0..l5 {
                // `shift_at` on the local column: slice length 1, site 0.
                let sh = self.shift_at(&col, 1, s, 0, false);
                // SAFETY: each (s, i) is written by exactly one task and
                // the index stays in bounds, as in `rho_and_diag`.
                unsafe {
                    *optr.get().add(s * slice_len + i) = col[s].scale(b5) + sh.scale(c5);
                }
            }
        }
    }

    /// AVX2-compiled twin of [`Self::ainv_then_rho_range`]; same IEEE ops,
    /// 256-bit codegen, bit-identical results (rustc emits no FMA).
    #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    fn ainv_then_rho_range_avx2(
        &self,
        optr: &super::hopping::SendPtr<Spinor<R>>,
        inp: &[Spinor<R>],
        slice_len: usize,
        range: std::ops::Range<usize>,
    ) {
        self.ainv_then_rho_range(optr, inp, slice_len, range);
    }

    /// `out = a·in + b·shift^(†)(in)`, the shared form of `A` (`a=α, b=β`)
    /// and `ρ` (`a=b5, b=c5`) and their adjoints.
    fn affine_shift(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        slice_len: usize,
        a: f64,
        b: f64,
        dagger: bool,
    ) {
        self.shift(out, inp, slice_len, dagger);
        let a = R::from_f64(a);
        let b = R::from_f64(b);
        out.par_iter_mut().zip(inp.par_iter()).for_each(|(o, i)| {
            *o = i.scale(a) + o.scale(b);
        });
    }

    /// `out = A⁻¹ in` (or `(A†)⁻¹ in`), applied per 4D site as two real
    /// `L5×L5` mat-vecs, one per chirality sector. Because the `A±` blocks
    /// are mutual transposes, the adjoint just swaps which inverse serves
    /// which chirality.
    fn apply_a_inverse(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        slice_len: usize,
        dagger: bool,
    ) {
        let l5 = self.params.l5;
        let (inv_up, inv_dn) = if dagger {
            (&self.ainv_minus, &self.ainv_plus)
        } else {
            (&self.ainv_plus, &self.ainv_minus)
        };
        // Parallelize over 5D sites; gather strided s-components.
        out.par_iter_mut().enumerate().for_each(|(idx, o)| {
            let site = idx % slice_len;
            let s_out = idx / slice_len;
            let mut acc = Spinor::zero();
            for s_in in 0..l5 {
                let wp = inv_up[s_out * l5 + s_in];
                let wm = inv_dn[s_out * l5 + s_in];
                let src = &inp[s_in * slice_len + site];
                // Chirality-plus spins are 0,1; minus are 2,3 (γ5 diagonal).
                acc.s[0] += src.s[0].scale(wp);
                acc.s[1] += src.s[1].scale(wp);
                acc.s[2] += src.s[2].scale(wm);
                acc.s[3] += src.s[3].scale(wm);
            }
            *o = acc;
        });
    }
}

/// Two reusable 5D staging buffers (fused-path scratch).
type Scratch2<R> = Mutex<(Vec<Spinor<R>>, Vec<Spinor<R>>)>;
/// Three reusable 5D staging buffers (preconditioned fused-path scratch).
type Scratch3<R> = Mutex<(Vec<Spinor<R>>, Vec<Spinor<R>>, Vec<Spinor<R>>)>;

/// The full-lattice Möbius domain-wall operator on `L5 × V` vectors.
pub struct MobiusDirac<'a, R: Real, G: GaugeLinks<R>> {
    hopping: HoppingKernel<'a, R, G>,
    lattice: &'a Lattice,
    fifth: FifthDim<R>,
    /// Parallel chunk size for the 4D stencil, set by the autotuner.
    pub grain: usize,
    /// Execution strategy of `apply`; every supported variant is bit-identical.
    pub variant: DslashVariant,
    /// Reusable 5D staging buffers for the fused path (`ρ(ψ)` and the
    /// precomputed diagonal `A(ψ)`).
    scratch: Scratch2<R>,
}

impl<'a, R: Real, G: GaugeLinks<R>> MobiusDirac<'a, R, G> {
    /// Bind the operator (antiperiodic temporal BCs are always used — the
    /// physical choice for the valence sector).
    pub fn new(lattice: &'a Lattice, gauge: &'a G, params: MobiusParams) -> Self {
        Self {
            hopping: HoppingKernel::new(lattice, gauge, true),
            lattice,
            fifth: FifthDim::new(params),
            grain: 1024,
            variant: DslashVariant::AosFused,
            scratch: Mutex::new((Vec::new(), Vec::new())),
        }
    }

    /// Parameters.
    pub fn params(&self) -> &MobiusParams {
        &self.fifth.params
    }

    /// The lattice.
    pub fn lattice(&self) -> &Lattice {
        self.lattice
    }

    /// The bound 4D hopping kernel.
    pub fn hopping(&self) -> &HoppingKernel<'a, R, G> {
        &self.hopping
    }

    /// Variants this operator can execute (SoA needs full-volume 4D
    /// operators; the 5D s-major layout keeps it off the menu here).
    pub fn supported_variants(&self) -> Vec<DslashVariant> {
        vec![DslashVariant::AosScalar, DslashVariant::AosFused]
    }

    fn l5(&self) -> usize {
        self.fifth.params.l5
    }

    /// Fused apply in two passes: one column-wise sweep producing both
    /// `ρ = b5·ψ + c5·shift(ψ)` and the diagonal `A(ψ) = α·ψ + β·shift(ψ)`,
    /// then a single 5D stencil pass that reuses each site's eight gauge
    /// links across the whole s-extent and folds `A(ψ) − ½ H ρ(ψ)` into the
    /// output write. Every per-element operation chain matches the
    /// slice-by-slice path, so the result is bit-identical to
    /// [`DslashVariant::AosScalar`].
    fn apply_fused(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let v = self.lattice.volume();
        let n = self.vec_len();
        assert_eq!(out.len(), n);
        assert_eq!(inp.len(), n);
        let half = R::from_f64(0.5);

        let mut guard = self.scratch.lock();
        let (rho, diag) = &mut *guard;
        rho.resize(n, Spinor::zero());
        diag.resize(n, Spinor::zero());
        self.fifth.rho_and_diag(rho, diag, inp, v);
        let diag = &*diag;
        self.hopping
            .apply_full_fused_5d(out, rho, self.l5(), self.grain, &|s, x, h| {
                diag[s * v + x] - h.scale(half)
            });
    }

    /// Apply the 4D hopping slice-by-slice on full-volume 5D vectors.
    fn hop_5d(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let v = self.lattice.volume();
        for s in 0..self.l5() {
            let (o, i) = (&mut out[s * v..(s + 1) * v], &inp[s * v..(s + 1) * v]);
            self.hopping.apply_full(o, i, self.grain);
        }
    }

    /// Blocked slice-by-slice hopping on interleaved 5D blocks
    /// (`(s·V + x)·nrhs + j` layout — each s-slice is a contiguous 4D block).
    fn hop_5d_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize) {
        let vb = self.lattice.volume() * nrhs;
        for s in 0..self.l5() {
            let (o, i) = (&mut out[s * vb..(s + 1) * vb], &inp[s * vb..(s + 1) * vb]);
            self.hopping.apply_full_block(o, i, nrhs, self.grain);
        }
    }
}

/// Caller-supplied 4D hopping term acting on full 5D (`L5 × V`, s-major)
/// vectors: `hop(out, inp)`.
pub type Hop5d<'h, R> = dyn FnMut(&mut [Spinor<R>], &[Spinor<R>]) + 'h;

/// Caller-supplied *blocked* 4D hopping term on interleaved 5D blocks:
/// `hop(out, inp, nrhs)` with `(s·V + x)·nrhs + j` layout.
pub type Hop5dBlock<'h, R> = dyn FnMut(&mut [Spinor<R>], &[Spinor<R>], usize) + 'h;

impl<'a, R: Real, G: GaugeLinks<R>> MobiusDirac<'a, R, G> {
    /// `out = A(inp) − ½ hop(ρ(inp))` with the 4D hopping term supplied by
    /// the caller: `hop(out, inp)` receives full 5D (`L5 × V`, s-major)
    /// vectors. The fifth-dimension algebra (`ρ`, `A`, the halving) is
    /// applied identically to [`LinearOp::apply`], so any `hop` that is
    /// bit-identical to the bound single-domain kernel — e.g. the sharded
    /// halo-exchange dslash in [`crate::comms`] — yields a bit-identical
    /// Möbius application.
    pub fn apply_with_hop(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], hop: &mut Hop5d<'_, R>) {
        let v = self.lattice.volume();
        let p = &self.fifth.params;
        let n = self.vec_len();
        assert_eq!(out.len(), n);
        assert_eq!(inp.len(), n);

        // ρ(ψ) then H ρ(ψ).
        let mut rho = vec![Spinor::zero(); n];
        self.fifth.affine_shift(&mut rho, inp, v, p.b5, p.c5, false);
        let mut hrho = vec![Spinor::zero(); n];
        hop(&mut hrho, &rho);

        // A(ψ) − ½ H ρ(ψ).
        self.fifth
            .affine_shift(out, inp, v, p.alpha(), p.beta(), false);
        let half = R::from_f64(0.5);
        out.par_iter_mut().zip(hrho.par_iter()).for_each(|(o, h)| {
            *o = *o - h.scale(half);
        });
    }

    /// Adjoint application with a caller-supplied 4D hopping term:
    /// `out = A†(inp) − ½ ρ†(γ5 hop(γ5 inp))`, using `H† = γ5 H γ5`. The
    /// fifth-dimension algebra matches [`DiracOp::apply_dagger`] exactly, so
    /// a `hop` bit-identical to the bound kernel yields a bit-identical
    /// adjoint — the sharded normal operator [`crate::comms::ShardedNormal`]
    /// relies on this for checkpoint-exact restarts.
    pub fn apply_dagger_with_hop(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        hop: &mut Hop5d<'_, R>,
    ) {
        let v = self.lattice.volume();
        let p = &self.fifth.params;
        let n = self.vec_len();
        assert_eq!(out.len(), n);
        assert_eq!(inp.len(), n);

        // h = γ5 H γ5 ψ.
        let g5in: Vec<Spinor<R>> = inp.par_iter().map(|s| s.apply_gamma5()).collect();
        let mut h = vec![Spinor::zero(); n];
        hop(&mut h, &g5in);
        h.par_iter_mut().for_each(|s| *s = s.apply_gamma5());

        // ρ† h.
        let mut rho_h = vec![Spinor::zero(); n];
        self.fifth.affine_shift(&mut rho_h, &h, v, p.b5, p.c5, true);

        // A† ψ − ½ ρ† h.
        self.fifth
            .affine_shift(out, inp, v, p.alpha(), p.beta(), true);
        let half = R::from_f64(0.5);
        out.par_iter_mut().zip(rho_h.par_iter()).for_each(|(o, r)| {
            *o = *o - r.scale(half);
        });
    }

    /// Blocked `out = A(inp) − ½ hop(ρ(inp))` on `nrhs` interleaved
    /// right-hand-sides. The fifth-dimension ops act per `(s, 4D-site)`
    /// element, so running them with slice length `V·nrhs` on the
    /// interleaved block applies the identical scalar arithmetic to every
    /// column — column `j` is bit-identical to [`Self::apply_with_hop`] on
    /// that column alone (given a `hop` with the same property).
    pub fn apply_block_with_hop(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        nrhs: usize,
        hop: &mut Hop5dBlock<'_, R>,
    ) {
        let vb = self.lattice.volume() * nrhs;
        let p = &self.fifth.params;
        let n = self.vec_len() * nrhs;
        assert_eq!(out.len(), n);
        assert_eq!(inp.len(), n);

        let mut rho = vec![Spinor::zero(); n];
        self.fifth
            .affine_shift(&mut rho, inp, vb, p.b5, p.c5, false);
        let mut hrho = vec![Spinor::zero(); n];
        hop(&mut hrho, &rho, nrhs);

        self.fifth
            .affine_shift(out, inp, vb, p.alpha(), p.beta(), false);
        let half = R::from_f64(0.5);
        out.par_iter_mut().zip(hrho.par_iter()).for_each(|(o, h)| {
            *o = *o - h.scale(half);
        });
    }

    /// Blocked adjoint with a caller-supplied blocked hopping term;
    /// column-wise bit-identical to [`Self::apply_dagger_with_hop`].
    pub fn apply_dagger_block_with_hop(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        nrhs: usize,
        hop: &mut Hop5dBlock<'_, R>,
    ) {
        let vb = self.lattice.volume() * nrhs;
        let p = &self.fifth.params;
        let n = self.vec_len() * nrhs;
        assert_eq!(out.len(), n);
        assert_eq!(inp.len(), n);

        let g5in: Vec<Spinor<R>> = inp.par_iter().map(|s| s.apply_gamma5()).collect();
        let mut h = vec![Spinor::zero(); n];
        hop(&mut h, &g5in, nrhs);
        h.par_iter_mut().for_each(|s| *s = s.apply_gamma5());

        let mut rho_h = vec![Spinor::zero(); n];
        self.fifth
            .affine_shift(&mut rho_h, &h, vb, p.b5, p.c5, true);

        self.fifth
            .affine_shift(out, inp, vb, p.alpha(), p.beta(), true);
        let half = R::from_f64(0.5);
        out.par_iter_mut().zip(rho_h.par_iter()).for_each(|(o, r)| {
            *o = *o - r.scale(half);
        });
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> BlockLinearOp<R> for MobiusDirac<'a, R, G> {
    fn apply_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize) {
        self.apply_block_with_hop(out, inp, nrhs, &mut |o, i, n| self.hop_5d_block(o, i, n));
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> BlockDiracOp<R> for MobiusDirac<'a, R, G> {
    fn apply_dagger_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize) {
        self.apply_dagger_block_with_hop(out, inp, nrhs, &mut |o, i, n| self.hop_5d_block(o, i, n));
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> LinearOp<R> for MobiusDirac<'a, R, G> {
    fn vec_len(&self) -> usize {
        self.l5() * self.lattice.volume()
    }

    fn apply(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        match self.variant {
            // SoA is not supported on s-major 5D vectors; fall back to the
            // reference path (bit-identical anyway).
            DslashVariant::AosScalar | DslashVariant::Soa => {
                self.apply_with_hop(out, inp, &mut |o, i| self.hop_5d(o, i));
            }
            DslashVariant::AosFused => self.apply_fused(out, inp),
        }
    }

    fn flops_per_apply(&self) -> f64 {
        let sites = self.vec_len() as f64;
        // Hopping dominates; shift/affine contribute ~250 flops per 5D site.
        sites * (HOPPING_FLOPS_PER_SITE + 250.0)
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> DiracOp<R> for MobiusDirac<'a, R, G> {
    fn apply_dagger(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        // The Möbius operator with c5 ≠ 0 is NOT Γ5R5-hermitian (the 4D
        // hopping does not commute with the chirality-projected s-shift), so
        // — like QUDA's Mdag — the adjoint is applied explicitly:
        // D† = A† − ½ ρ† H† with H† = γ5 H γ5.
        self.apply_dagger_with_hop(out, inp, &mut |o, i| self.hop_5d(o, i));
    }
}

/// Red–black preconditioned Möbius operator on the odd checkerboard:
/// `M̂ = A − ¼ · H_oe ρ A⁻¹ H_eo ρ`, acting on `L5 × V/2` vectors.
pub struct PrecMobius<'a, R: Real, G: GaugeLinks<R>> {
    hopping: HoppingKernel<'a, R, G>,
    lattice: &'a Lattice,
    fifth: FifthDim<R>,
    /// Parallel chunk size for the 4D stencil, set by the autotuner.
    pub grain: usize,
    /// Execution strategy of `apply`; every supported variant is bit-identical.
    pub variant: DslashVariant,
    /// Reusable 5D half-volume staging buffers for the fused path
    /// (`ρ`-stage, hop target, precomputed diagonal).
    scratch: Scratch3<R>,
}

impl<'a, R: Real, G: GaugeLinks<R>> PrecMobius<'a, R, G> {
    /// Bind the preconditioned operator.
    pub fn new(lattice: &'a Lattice, gauge: &'a G, params: MobiusParams) -> Self {
        Self {
            hopping: HoppingKernel::new(lattice, gauge, true),
            lattice,
            fifth: FifthDim::new(params),
            grain: 1024,
            variant: DslashVariant::AosFused,
            scratch: Mutex::new((Vec::new(), Vec::new(), Vec::new())),
        }
    }

    /// Parameters.
    pub fn params(&self) -> &MobiusParams {
        &self.fifth.params
    }

    /// The lattice.
    pub fn lattice(&self) -> &Lattice {
        self.lattice
    }

    /// The bound 4D hopping kernel.
    pub fn hopping(&self) -> &HoppingKernel<'a, R, G> {
        &self.hopping
    }

    /// Variants this operator can execute (SoA needs full-volume 4D
    /// operators; the checkerboarding strides the x-lines by 2).
    pub fn supported_variants(&self) -> Vec<DslashVariant> {
        vec![DslashVariant::AosScalar, DslashVariant::AosFused]
    }

    fn l5(&self) -> usize {
        self.fifth.params.l5
    }

    fn hv(&self) -> usize {
        self.lattice.half_volume()
    }

    /// Fused Schur apply in four passes over reused scratch buffers (the
    /// reference path makes eleven, allocating six fresh vectors):
    ///
    /// 1. `ρ ← b5·ψ + c5·shift(ψ)` and `diag ← α·ψ + β·shift(ψ)` in a single
    ///    column-wise sweep (the s-shift of `ψ` is read once, feeding both),
    /// 2. `t ← −½ H_eo ρ` (5D-fused stencil, `−½` folded into the write),
    /// 3. `ρ ← b5·(A⁻¹t) + c5·shift(A⁻¹t)` column-wise: each s-column of
    ///    `A⁻¹t` stays register/cache resident through the following affine,
    /// 4. `out ← diag − (−½ H_oe ρ)` (stencil pass with the precomputed
    ///    diagonal folded into the output write).
    ///
    /// Each fused expression evaluates the identical per-element operation
    /// chain as the reference path, so the result is bit-identical to
    /// [`DslashVariant::AosScalar`].
    fn apply_fused(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let hv = self.hv();
        let n = self.vec_len();
        assert_eq!(out.len(), n);
        assert_eq!(inp.len(), n);
        let neg_half = R::from_f64(-0.5);

        let mut guard = self.scratch.lock();
        let (rho, tmp, diag) = &mut *guard;
        rho.resize(n, Spinor::zero());
        tmp.resize(n, Spinor::zero());
        diag.resize(n, Spinor::zero());

        self.fifth.rho_and_diag(rho, diag, inp, hv);
        self.hopping.apply_parity_fused_5d(
            tmp,
            rho,
            Parity::Even,
            self.l5(),
            self.grain,
            &|_, _, h| h.scale(neg_half),
        );
        self.fifth.ainv_then_rho(rho, tmp, hv);
        let diag = &*diag;
        self.hopping.apply_parity_fused_5d(
            out,
            rho,
            Parity::Odd,
            self.l5(),
            self.grain,
            &|s, cb, h| diag[s * hv + cb] - h.scale(neg_half),
        );
    }

    /// Slice-wise checkerboarded hopping on 5D half-volume vectors.
    fn hop_5d_parity(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], out_parity: Parity) {
        let hv = self.hv();
        for s in 0..self.l5() {
            let (o, i) = (&mut out[s * hv..(s + 1) * hv], &inp[s * hv..(s + 1) * hv]);
            self.hopping.apply_parity(o, i, out_parity, self.grain);
        }
    }

    /// Split a full 5D vector into (even, odd) 5D checkerboard vectors.
    pub fn split(&self, full: &[Spinor<R>]) -> (Vec<Spinor<R>>, Vec<Spinor<R>>) {
        let v = self.lattice.volume();
        let hv = self.hv();
        let l5 = self.l5();
        assert_eq!(full.len(), l5 * v);
        let mut even = vec![Spinor::zero(); l5 * hv];
        let mut odd = vec![Spinor::zero(); l5 * hv];
        for s in 0..l5 {
            for x in 0..v {
                let cb = self.lattice.cb_index(x);
                match self.lattice.parity(x) {
                    Parity::Even => even[s * hv + cb] = full[s * v + x],
                    Parity::Odd => odd[s * hv + cb] = full[s * v + x],
                }
            }
        }
        (even, odd)
    }

    /// Merge checkerboards back into a full 5D vector.
    pub fn merge(&self, even: &[Spinor<R>], odd: &[Spinor<R>]) -> Vec<Spinor<R>> {
        let v = self.lattice.volume();
        let hv = self.hv();
        let l5 = self.l5();
        let mut full = vec![Spinor::zero(); l5 * v];
        for s in 0..l5 {
            for x in 0..v {
                let cb = self.lattice.cb_index(x);
                full[s * v + x] = match self.lattice.parity(x) {
                    Parity::Even => even[s * hv + cb],
                    Parity::Odd => odd[s * hv + cb],
                };
            }
        }
        full
    }

    /// `M_eo`-style off-diagonal application onto `out_parity`:
    /// `out = −½ H ρ(in)`.
    fn offdiag(&self, inp: &[Spinor<R>], out_parity: Parity) -> Vec<Spinor<R>> {
        let hv = self.hv();
        let p = &self.fifth.params;
        let mut rho = vec![Spinor::zero(); inp.len()];
        self.fifth
            .affine_shift(&mut rho, inp, hv, p.b5, p.c5, false);
        let mut hop = vec![Spinor::zero(); inp.len()];
        self.hop_5d_parity(&mut hop, &rho, out_parity);
        hop.par_iter_mut()
            .for_each(|s| *s = s.scale(R::from_f64(-0.5)));
        hop
    }

    /// Adjoint off-diagonal application onto `out_parity`:
    /// `out = −½ ρ† γ5 H γ5 (in)`.
    fn offdiag_dagger(&self, inp: &[Spinor<R>], out_parity: Parity) -> Vec<Spinor<R>> {
        let hv = self.hv();
        let p = &self.fifth.params;
        let g5in: Vec<Spinor<R>> = inp.par_iter().map(|s| s.apply_gamma5()).collect();
        let mut hop = vec![Spinor::zero(); inp.len()];
        self.hop_5d_parity(&mut hop, &g5in, out_parity);
        hop.par_iter_mut().for_each(|s| *s = s.apply_gamma5());
        let mut out = vec![Spinor::zero(); inp.len()];
        self.fifth
            .affine_shift(&mut out, &hop, hv, p.b5, p.c5, true);
        out.par_iter_mut()
            .for_each(|s| *s = s.scale(R::from_f64(-0.5)));
        out
    }

    /// Preconditioned source `b'_o = b_o − M_oe A⁻¹ b_e`.
    pub fn prepare_source(&self, b_even: &[Spinor<R>], b_odd: &[Spinor<R>]) -> Vec<Spinor<R>> {
        let hv = self.hv();
        let mut ainv_be = vec![Spinor::zero(); b_even.len()];
        self.fifth.apply_a_inverse(&mut ainv_be, b_even, hv, false);
        let moe = self.offdiag(&ainv_be, Parity::Odd);
        let mut out = b_odd.to_vec();
        out.par_iter_mut().zip(moe.par_iter()).for_each(|(o, m)| {
            *o = *o - *m;
        });
        out
    }

    /// Even-site reconstruction `x_e = A⁻¹ (b_e − M_eo x_o)`.
    pub fn reconstruct_even(&self, b_even: &[Spinor<R>], x_odd: &[Spinor<R>]) -> Vec<Spinor<R>> {
        let hv = self.hv();
        let meo = self.offdiag(x_odd, Parity::Even);
        let mut rhs = b_even.to_vec();
        rhs.par_iter_mut().zip(meo.par_iter()).for_each(|(r, m)| {
            *r = *r - *m;
        });
        let mut out = vec![Spinor::zero(); rhs.len()];
        self.fifth.apply_a_inverse(&mut out, &rhs, hv, false);
        out
    }

    /// Blocked slice-wise checkerboarded hopping on interleaved 5D blocks.
    fn hop_5d_parity_block(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        out_parity: Parity,
        nrhs: usize,
    ) {
        let hvb = self.hv() * nrhs;
        for s in 0..self.l5() {
            let (o, i) = (
                &mut out[s * hvb..(s + 1) * hvb],
                &inp[s * hvb..(s + 1) * hvb],
            );
            self.hopping
                .apply_parity_block(o, i, out_parity, nrhs, self.grain);
        }
    }

    /// Blocked `out = −½ H ρ(in)` onto `out_parity`.
    fn offdiag_block(&self, inp: &[Spinor<R>], out_parity: Parity, nrhs: usize) -> Vec<Spinor<R>> {
        let hvb = self.hv() * nrhs;
        let p = &self.fifth.params;
        let mut rho = vec![Spinor::zero(); inp.len()];
        self.fifth
            .affine_shift(&mut rho, inp, hvb, p.b5, p.c5, false);
        let mut hop = vec![Spinor::zero(); inp.len()];
        self.hop_5d_parity_block(&mut hop, &rho, out_parity, nrhs);
        hop.par_iter_mut()
            .for_each(|s| *s = s.scale(R::from_f64(-0.5)));
        hop
    }

    /// Blocked `out = −½ ρ† γ5 H γ5 (in)` onto `out_parity`.
    fn offdiag_dagger_block(
        &self,
        inp: &[Spinor<R>],
        out_parity: Parity,
        nrhs: usize,
    ) -> Vec<Spinor<R>> {
        let hvb = self.hv() * nrhs;
        let p = &self.fifth.params;
        let g5in: Vec<Spinor<R>> = inp.par_iter().map(|s| s.apply_gamma5()).collect();
        let mut hop = vec![Spinor::zero(); inp.len()];
        self.hop_5d_parity_block(&mut hop, &g5in, out_parity, nrhs);
        hop.par_iter_mut().for_each(|s| *s = s.apply_gamma5());
        let mut out = vec![Spinor::zero(); inp.len()];
        self.fifth
            .affine_shift(&mut out, &hop, hvb, p.b5, p.c5, true);
        out.par_iter_mut()
            .for_each(|s| *s = s.scale(R::from_f64(-0.5)));
        out
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> LinearOp<R> for PrecMobius<'a, R, G> {
    fn vec_len(&self) -> usize {
        self.l5() * self.hv()
    }

    fn apply(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        match self.variant {
            DslashVariant::AosScalar | DslashVariant::Soa => self.apply_reference(out, inp),
            DslashVariant::AosFused => self.apply_fused(out, inp),
        }
    }

    fn flops_per_apply(&self) -> f64 {
        let sites = self.vec_len() as f64;
        // Two half-volume hops per 5D site pair + fifth-dimension algebra.
        sites * (HOPPING_FLOPS_PER_SITE + 250.0 + 48.0 * self.l5() as f64)
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> PrecMobius<'a, R, G> {
    /// Reference Schur apply: slice-by-slice hops with separate algebra
    /// passes, building each intermediate in a fresh vector.
    fn apply_reference(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let hv = self.hv();
        let p = &self.fifth.params;
        assert_eq!(out.len(), self.vec_len());
        assert_eq!(inp.len(), self.vec_len());

        let meo = self.offdiag(inp, Parity::Even);
        let mut ainv = vec![Spinor::zero(); meo.len()];
        self.fifth.apply_a_inverse(&mut ainv, &meo, hv, false);
        let moe = self.offdiag(&ainv, Parity::Odd);

        // out = A(inp) − M_oe A⁻¹ M_eo inp.
        self.fifth
            .affine_shift(out, inp, hv, p.alpha(), p.beta(), false);
        out.par_iter_mut().zip(moe.par_iter()).for_each(|(o, m)| {
            *o = *o - *m;
        });
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> DiracOp<R> for PrecMobius<'a, R, G> {
    fn apply_dagger(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        // M̂† = A† − M_eo† (A†)⁻¹ M_oe†, each adjoint applied explicitly.
        let hv = self.hv();
        let p = &self.fifth.params;

        let moe_dag = self.offdiag_dagger(inp, Parity::Even);
        let mut ainv = vec![Spinor::zero(); moe_dag.len()];
        self.fifth.apply_a_inverse(&mut ainv, &moe_dag, hv, true);
        let meo_dag = self.offdiag_dagger(&ainv, Parity::Odd);

        self.fifth
            .affine_shift(out, inp, hv, p.alpha(), p.beta(), true);
        out.par_iter_mut()
            .zip(meo_dag.par_iter())
            .for_each(|(o, m)| {
                *o = *o - *m;
            });
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> BlockLinearOp<R> for PrecMobius<'a, R, G> {
    fn apply_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize) {
        let hvb = self.hv() * nrhs;
        let p = &self.fifth.params;
        assert_eq!(out.len(), self.vec_len() * nrhs);
        assert_eq!(inp.len(), self.vec_len() * nrhs);

        let meo = self.offdiag_block(inp, Parity::Even, nrhs);
        let mut ainv = vec![Spinor::zero(); meo.len()];
        self.fifth.apply_a_inverse(&mut ainv, &meo, hvb, false);
        let moe = self.offdiag_block(&ainv, Parity::Odd, nrhs);

        self.fifth
            .affine_shift(out, inp, hvb, p.alpha(), p.beta(), false);
        out.par_iter_mut().zip(moe.par_iter()).for_each(|(o, m)| {
            *o = *o - *m;
        });
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> BlockDiracOp<R> for PrecMobius<'a, R, G> {
    fn apply_dagger_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize) {
        let hvb = self.hv() * nrhs;
        let p = &self.fifth.params;

        let moe_dag = self.offdiag_dagger_block(inp, Parity::Even, nrhs);
        let mut ainv = vec![Spinor::zero(); moe_dag.len()];
        self.fifth.apply_a_inverse(&mut ainv, &moe_dag, hvb, true);
        let meo_dag = self.offdiag_dagger_block(&ainv, Parity::Odd, nrhs);

        self.fifth
            .affine_shift(out, inp, hvb, p.alpha(), p.beta(), true);
        out.par_iter_mut()
            .zip(meo_dag.par_iter())
            .for_each(|(o, m)| {
                *o = *o - *m;
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;
    use crate::field::{FermionField, GaugeField};

    #[test]
    fn invert_real_matrix_known_case() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let inv = invert_real_matrix(&a);
        // A·A⁻¹ = 1.
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = 0.0;
                for k in 0..2 {
                    acc += a[i][k] * inv[k][j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((acc - expect).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn a_inverse_inverts_a_blockwise() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge = GaugeField::<f64>::cold(&lat);
        let params = MobiusParams::standard(8, 0.1);
        let op = MobiusDirac::new(&lat, &gauge, params);
        let v = lat.volume();
        let n = params.l5 * v;
        let x = FermionField::<f64>::gaussian(n, 2).data;

        // Apply A then A⁻¹.
        let mut ax = vec![Spinor::zero(); n];
        op.fifth
            .affine_shift(&mut ax, &x, v, params.alpha(), params.beta(), false);
        let mut back = vec![Spinor::zero(); n];
        op.fifth.apply_a_inverse(&mut back, &ax, v, false);
        let diff = blas::sub(&back, &x);
        assert!(blas::norm_sqr(&diff) / blas::norm_sqr(&x) < 1e-22);
    }

    #[test]
    fn dagger_is_true_adjoint_full() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 37);
        let params = MobiusParams::standard(6, 0.08);
        let op = MobiusDirac::new(&lat, &gauge, params);
        let n = op.vec_len();
        let x = FermionField::<f64>::gaussian(n, 3).data;
        let y = FermionField::<f64>::gaussian(n, 4).data;
        let mut dy = vec![Spinor::zero(); n];
        op.apply(&mut dy, &y);
        let mut ddag_x = vec![Spinor::zero(); n];
        op.apply_dagger(&mut ddag_x, &x);
        let lhs = blas::dot(&x, &dy);
        let rhs = blas::dot(&ddag_x, &y);
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "⟨x,Dy⟩ = ⟨D†x,y⟩: {lhs:?} vs {rhs:?}"
        );
    }

    #[test]
    fn dagger_is_true_adjoint_prec() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 41);
        let params = MobiusParams::standard(4, 0.1);
        let op = PrecMobius::new(&lat, &gauge, params);
        let n = op.vec_len();
        let x = FermionField::<f64>::gaussian(n, 5).data;
        let y = FermionField::<f64>::gaussian(n, 6).data;
        let mut my = vec![Spinor::zero(); n];
        op.apply(&mut my, &y);
        let mut mdag_x = vec![Spinor::zero(); n];
        op.apply_dagger(&mut mdag_x, &x);
        let lhs = blas::dot(&x, &my);
        let rhs = blas::dot(&mdag_x, &y);
        assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn schur_identity_for_mobius() {
        // If D ψ = b then M̂ ψ_o = b_o − M_oe A⁻¹ b_e.
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 43);
        let params = MobiusParams::standard(4, 0.05);
        let full = MobiusDirac::new(&lat, &gauge, params);
        let prec = PrecMobius::new(&lat, &gauge, params);

        let n = full.vec_len();
        let psi = FermionField::<f64>::gaussian(n, 7).data;
        let mut b = vec![Spinor::zero(); n];
        full.apply(&mut b, &psi);

        let (_, psi_o) = prec.split(&psi);
        let (b_e, b_o) = prec.split(&b);

        let rhs = prec.prepare_source(&b_e, &b_o);
        let mut lhs = vec![Spinor::zero(); prec.vec_len()];
        prec.apply(&mut lhs, &psi_o);

        let diff = blas::sub(&lhs, &rhs);
        let rel = blas::norm_sqr(&diff) / blas::norm_sqr(&rhs);
        assert!(rel < 1e-20, "Schur identity violated: rel = {rel}");
    }

    #[test]
    fn reconstruct_even_recovers_solution() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 47);
        let params = MobiusParams::shamir(4, 0.1);
        let full = MobiusDirac::new(&lat, &gauge, params);
        let prec = PrecMobius::new(&lat, &gauge, params);

        let n = full.vec_len();
        let psi = FermionField::<f64>::gaussian(n, 8).data;
        let mut b = vec![Spinor::zero(); n];
        full.apply(&mut b, &psi);

        let (psi_e, psi_o) = prec.split(&psi);
        let (b_e, _) = prec.split(&b);
        let x_e = prec.reconstruct_even(&b_e, &psi_o);
        let diff = blas::sub(&x_e, &psi_e);
        assert!(blas::norm_sqr(&diff) / blas::norm_sqr(&psi_e) < 1e-20);
    }

    #[test]
    fn dense_matrix_adjoint_is_exact() {
        // Build the full dense matrix of D and of D† on a 2^4 lattice and
        // verify D†[r][c] == conj(D[c][r]) element-wise — the strongest
        // possible check of the explicit Mdag implementation.
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge = crate::field::GaugeField::<f64>::hot(&lat, 37);
        let params = MobiusParams::standard(2, 0.08);
        let op = MobiusDirac::new(&lat, &gauge, params);
        let n = op.vec_len();
        let dim = n * 12;

        let dense = |dagger: bool| -> Vec<Vec<crate::complex::C64>> {
            let mut m = vec![vec![crate::complex::C64::zero(); dim]; dim];
            for col in 0..dim {
                let (i, rest) = (col / 12, col % 12);
                let (sp, c) = (rest / 3, rest % 3);
                let mut e = vec![Spinor::zero(); n];
                e[i].s[sp].c[c] = crate::complex::C64::new(1.0, 0.0);
                let mut out = vec![Spinor::zero(); n];
                if dagger {
                    op.apply_dagger(&mut out, &e);
                } else {
                    op.apply(&mut out, &e);
                }
                for (row, entry) in m.iter_mut().enumerate() {
                    let (j, rest2) = (row / 12, row % 12);
                    let (sp2, c2) = (rest2 / 3, rest2 % 3);
                    entry[col] = out[j].s[sp2].c[c2];
                }
            }
            m
        };
        let d = dense(false);
        let ddag = dense(true);
        let mut max = 0.0f64;
        for r in 0..dim {
            for c in 0..dim {
                max = max.max((ddag[r][c] - d[c][r].conj()).abs());
            }
        }
        assert!(max < 1e-13, "max adjoint violation {max}");
    }

    #[test]
    fn shift_at_matches_shift_elementwise() {
        let params = MobiusParams::standard(6, 0.1);
        let fifth = FifthDim::<f64>::new(params);
        let slice_len = 17;
        let n = params.l5 * slice_len;
        let x = FermionField::<f64>::gaussian(n, 21).data;
        for dagger in [false, true] {
            let mut shifted = vec![Spinor::zero(); n];
            fifth.shift(&mut shifted, &x, slice_len, dagger);
            for s in 0..params.l5 {
                for i in 0..slice_len {
                    assert_eq!(
                        fifth.shift_at(&x, slice_len, s, i, dagger),
                        shifted[s * slice_len + i],
                        "(s={s}, i={i}, dagger={dagger})"
                    );
                }
            }
        }
    }

    #[test]
    fn rho_and_diag_is_bit_identical_to_two_affines() {
        let params = MobiusParams::standard(4, 0.08);
        let fifth = FifthDim::<f64>::new(params);
        let slice_len = 64;
        let n = params.l5 * slice_len;
        let x = FermionField::<f64>::gaussian(n, 22).data;
        let mut rho_ref = vec![Spinor::zero(); n];
        fifth.affine_shift(&mut rho_ref, &x, slice_len, params.b5, params.c5, false);
        let mut diag_ref = vec![Spinor::zero(); n];
        fifth.affine_shift(
            &mut diag_ref,
            &x,
            slice_len,
            params.alpha(),
            params.beta(),
            false,
        );
        let mut rho = vec![Spinor::zero(); n];
        let mut diag = vec![Spinor::zero(); n];
        fifth.rho_and_diag(&mut rho, &mut diag, &x, slice_len);
        assert_eq!(rho, rho_ref);
        assert_eq!(diag, diag_ref);
    }

    #[test]
    fn ainv_then_rho_is_bit_identical_to_two_passes() {
        let params = MobiusParams::standard(4, 0.08);
        let fifth = FifthDim::<f64>::new(params);
        let slice_len = 64;
        let n = params.l5 * slice_len;
        let x = FermionField::<f64>::gaussian(n, 25).data;
        let mut ainv = vec![Spinor::zero(); n];
        fifth.apply_a_inverse(&mut ainv, &x, slice_len, false);
        let mut reference = vec![Spinor::zero(); n];
        fifth.affine_shift(
            &mut reference,
            &ainv,
            slice_len,
            params.b5,
            params.c5,
            false,
        );
        let mut fused = vec![Spinor::zero(); n];
        fifth.ainv_then_rho(&mut fused, &x, slice_len);
        assert_eq!(fused, reference);
    }

    #[test]
    fn mobius_variants_are_bit_identical() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 61);
        let mut op = MobiusDirac::new(&lat, &gauge, MobiusParams::standard(6, 0.1));
        let n = op.vec_len();
        let x = FermionField::<f64>::gaussian(n, 23).data;
        let mut reference = vec![Spinor::zero(); n];
        op.variant = DslashVariant::AosScalar;
        op.apply(&mut reference, &x);
        for v in op.supported_variants() {
            op.variant = v;
            let mut out = vec![Spinor::zero(); n];
            op.apply(&mut out, &x);
            assert_eq!(out, reference, "variant {v:?}");
        }
    }

    #[test]
    fn prec_mobius_variants_are_bit_identical() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 67);
        let mut op = PrecMobius::new(&lat, &gauge, MobiusParams::standard(4, 0.1));
        let n = op.vec_len();
        let x = FermionField::<f64>::gaussian(n, 24).data;
        let mut reference = vec![Spinor::zero(); n];
        op.variant = DslashVariant::AosScalar;
        op.apply(&mut reference, &x);
        for v in op.supported_variants() {
            op.variant = v;
            let mut out = vec![Spinor::zero(); n];
            op.apply(&mut out, &x);
            assert_eq!(out, reference, "variant {v:?}");
        }
        // The fused path reuses scratch buffers across calls; a second
        // application must still be bit-identical.
        op.variant = DslashVariant::AosFused;
        let mut again = vec![Spinor::zero(); n];
        op.apply(&mut again, &x);
        assert_eq!(again, reference);
    }

    #[test]
    fn split_merge_round_trip_5d() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge = GaugeField::<f64>::cold(&lat);
        let params = MobiusParams::standard(4, 0.1);
        let prec = PrecMobius::new(&lat, &gauge, params);
        let v = FermionField::<f64>::gaussian(params.l5 * lat.volume(), 9).data;
        let (e, o) = prec.split(&v);
        assert_eq!(prec.merge(&e, &o), v);
    }

    #[test]
    fn shamir_limit_matches_handwritten_form() {
        // For c5 = 0: D ψ_s = (D_W + 1) ψ_s − shift(ψ)_s. On a cold gauge
        // with a 4D-constant input, periodic spatial BCs, and a t-independent
        // spinor, apbc makes H act nontrivially only via t-wraps... avoid BC
        // subtleties by comparing against the generic apply with b5=1,c5=0
        // computed via an independent composition: A(ψ) − ½H(ψ).
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 53);
        let params = MobiusParams::shamir(4, 0.2);
        let op = MobiusDirac::new(&lat, &gauge, params);
        let n = op.vec_len();
        let psi = FermionField::<f64>::gaussian(n, 10).data;

        let mut got = vec![Spinor::zero(); n];
        op.apply(&mut got, &psi);

        // Independent path: out = αψ + β·shift(ψ) − ½ H ψ (since ρ = ψ).
        let v = lat.volume();
        let mut expect = vec![Spinor::zero(); n];
        op.fifth
            .affine_shift(&mut expect, &psi, v, params.alpha(), params.beta(), false);
        let mut hpsi = vec![Spinor::zero(); n];
        op.hop_5d(&mut hpsi, &psi);
        for i in 0..n {
            expect[i] = expect[i] - hpsi[i].scale(0.5);
        }
        let diff = blas::sub(&got, &expect);
        assert!(blas::norm_sqr(&diff) / blas::norm_sqr(&expect) < 1e-24);
    }
}
