use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier for a tunable computation.
///
/// Mirrors QUDA's `TuneKey`: a kernel name, a volume string describing the
/// local problem, and an auxiliary string carrying anything else that changes
/// the optimum (precision, parity, communication topology, machine name).
/// Two computations with equal keys share a cached optimum; anything that
/// could shift the optimum must be folded into one of the three fields.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Debug)]
pub struct TuneKey {
    /// Kernel or algorithm name, e.g. `"dslash_wilson"` or `"halo_exchange"`.
    pub name: String,
    /// Problem-geometry component, e.g. `"48x48x48x64x12"`.
    pub volume: String,
    /// Auxiliary discriminator, e.g. `"prec=half,parity=odd,nodes=4"`.
    pub aux: String,
}

impl TuneKey {
    /// Build a key from its three components.
    pub fn new(name: impl Into<String>, volume: impl Into<String>, aux: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            volume: volume.into(),
            aux: aux.into(),
        }
    }
}

impl fmt::Display for TuneKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}::{}", self.name, self.volume, self.aux)
    }
}
