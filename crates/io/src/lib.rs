//! Lattice field I/O.
//!
//! The paper's workflow writes every propagator to disk between the GPU
//! solve stage and the CPU contraction stage, through parallel HDF5
//! ("I/O takes about 0.5% of our total application time"). HDF5 is not
//! available here, so this crate implements a chunked, checksummed binary
//! container with the same role:
//!
//! - a JSON header (name, element type, shape, free-form metadata),
//! - fixed-size chunks, each carrying a CRC-32C of its payload,
//! - parallel (rayon) encode/decode of the numeric payloads.
//!
//! Gauge fields, fermion fields (propagator columns), and correlators all
//! serialize through the same container. Corruption of any byte is detected
//! on read, and detection is recoverable rather than fatal: bounded re-read
//! retries ([`read_container_with_retry`]) handle transient read-path
//! faults, and partial salvage ([`salvage_container`],
//! [`read_propagator_salvaged`]) recovers the intact chunks of a damaged
//! file so only the lost pieces need recomputing.

#![allow(clippy::needless_range_loop)]

pub mod bundle;
pub mod checkpoint;
pub mod container;
pub mod crc32c;
pub mod fields;

pub use checkpoint::{read_checkpoint, write_checkpoint, CheckpointStore};

pub use bundle::{
    read_propagator, read_propagator_salvaged, write_propagator, BundlePrecision,
    SalvagedPropagator,
};
pub use container::{
    parse_container, read_container, read_container_retrying, read_container_with_retry,
    read_header, salvage_container, salvage_container_bytes, write_container, Container, Header,
    SalvagedContainer,
};
pub use fields::{
    read_correlator, read_fermion, read_fermion_with_meta, read_gauge, write_correlator,
    write_fermion, write_gauge,
};

/// Errors produced by this crate.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed file (bad magic, truncated, bad JSON).
    Format(String),
    /// A chunk's CRC-32C did not match its payload.
    ChecksumMismatch {
        /// Index of the corrupt chunk.
        chunk: usize,
    },
    /// The file's shape does not match the requested object.
    ShapeMismatch(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
            IoError::ChecksumMismatch { chunk } => {
                write!(f, "checksum mismatch in chunk {chunk}")
            }
            IoError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}
