//! Field I/O throughput — the 0.5%-of-runtime stage the workflow hides.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lqcd_core::prelude::*;
use std::collections::BTreeMap;

fn bench_gauge_io(c: &mut Criterion) {
    let lat = Lattice::new([8, 8, 8, 16]);
    let gauge = GaugeField::<f64>::hot(&lat, 3);
    let bytes = (lat.volume() * 4 * 18 * 8) as u64;
    let dir = std::env::temp_dir().join("lqcd_io_bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gauge.lqio");

    let mut group = c.benchmark_group("gauge_io");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("write", |b| {
        b.iter(|| lattice_io::write_gauge(&path, &lat, &gauge, BTreeMap::new()).unwrap())
    });
    lattice_io::write_gauge(&path, &lat, &gauge, BTreeMap::new()).unwrap();
    group.bench_function("read+verify", |b| {
        b.iter(|| lattice_io::read_gauge(&path, &lat).unwrap())
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_crc(c: &mut Criterion) {
    let data = vec![0xA5u8; 1 << 20];
    let mut group = c.benchmark_group("crc32c");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("1MiB", |b| {
        b.iter(|| lattice_io::crc32c::crc32c(std::hint::black_box(&data)))
    });
    group.finish();
}

criterion_group!(benches, bench_gauge_io, bench_crc);
criterion_main!(benches);
