//! Job management for bundled lattice-QCD workloads — METAQ and `mpi_jm`.
//!
//! A full lattice QCD computation is thousands of intermediate-sized tasks
//! (GPU propagator solves, CPU-only contractions, I/O) with different
//! resource needs. The paper shows that naive bundling — launching a batch
//! of tasks and waiting for all of them — idles 20–25% of the machine; that
//! METAQ-style backfilling recovers it; and that `mpi_jm` (lumps, blocks,
//! tight hardware binding, CPU/GPU co-scheduling) scales a single job
//! submission to 3388+ Sierra nodes at 15% of peak.
//!
//! This crate implements those schedulers over a discrete-event cluster
//! simulator: nodes with speed jitter and failures, GPU/CPU slots, and task
//! durations derived from the `coral-machine` solver model. The scheduling
//! *logic* is real — what is simulated is only the passage of time.

#![allow(clippy::needless_range_loop)]

pub mod cluster;
pub mod fault;
mod instrument;
pub mod metaq;
pub mod mpijm;
pub mod naive;
pub mod placement;
pub mod report;
pub mod startup;
pub mod task;
pub mod timeline;
pub mod weak;

pub use cluster::{Cluster, ClusterConfig};
pub use fault::{
    splitmix64, AttemptFate, FaultConfig, FaultInjector, FaultStats, RecoveryState, RetryPolicy,
};
pub use metaq::MetaqScheduler;
pub use mpijm::{MpiJmConfig, MpiJmScheduler};
pub use naive::NaiveBundler;
pub use placement::{bundle_throughput, place_jobs, GpuPlacement};
pub use report::{SimReport, TaskRecord};
pub use startup::{startup_model, StartupReport};
pub use task::{TaskKind, TaskSpec, Workload};
pub use timeline::{sparkline, timeline_utilization, utilization_timeline, wasted_timeline};
pub use weak::{weak_scaling_point, MpiFlavor, WeakScalingPoint};
