//! Service-level error type. The gateway and cache are library code in the
//! unattended-at-scale panic scope: every failure propagates as a
//! [`ServiceError`] instead of panicking under load.

use std::fmt;

/// Why a service operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request or service configuration is unusable (unknown
    /// configuration id, grid does not decompose the lattice, …).
    Config(String),
    /// A spill read/write failed in a way that is not survivable (the
    /// cache degrades gracefully on CRC failures; this is for e.g. an
    /// unwritable spill directory discovered mid-run).
    Io(String),
    /// An in-run bit-identity audit failed: a cached or batched response
    /// did not match a fresh solo solve bit-for-bit.
    Audit(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config(m) => write!(f, "service configuration error: {m}"),
            ServiceError::Io(m) => write!(f, "service io error: {m}"),
            ServiceError::Audit(m) => write!(f, "service audit failure: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ServiceError> for std::io::Error {
    fn from(e: ServiceError) -> Self {
        std::io::Error::other(e.to_string())
    }
}
