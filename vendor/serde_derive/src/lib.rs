//! Offline typecheck stub: derive macros that accept (and discard) the
//! `#[serde(...)]` helper attributes and emit nothing. Combined with the
//! stub `serde` crate's blanket trait impls, `#[derive(Serialize)]` on any
//! type still typechecks.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
