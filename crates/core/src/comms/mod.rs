//! Rank-decomposed execution: the communication layer the cost models in
//! `coral-machine` describe, actually run.
//!
//! The module maps a `coral_machine::decomp` rank grid onto the real
//! [`crate::lattice::Lattice`] ([`DomainDecomposition`]), exchanges halo
//! faces between ranks through an in-memory channel transport
//! ([`transport`]), and executes the hopping/Möbius stencils over the shards
//! ([`ShardedHopping`], [`ShardedMobius`]) with output bit-identical to the
//! single-domain kernels at any rank grid, thread width, and precision.
//!
//! Both layers speak the same `CommPolicy` type: `perfmodel`/`commpolicy`
//! predict exchange cost from a policy, and this module *executes* that
//! policy — [`tune_comm_policy`] closes the loop by sweeping the policies
//! with measured timings and the `repro comms` experiment commits
//! measured-vs-analytic columns side by side.

//! Messages travel CRC-framed through [`FaultyTransport`], which can
//! deterministically inject corruption, drops, duplicates, reordering, and
//! latency spikes ([`CommFaultProfile`]) and heals them with
//! NACK/retransmit + capped backoff ([`CommRetryPolicy`]); unrecoverable
//! failures surface as typed [`CommError`]s that drive the solver layer's
//! checkpoint-restart and rank-loss degradation ([`ShardedNormal`]).

mod domain;
mod fault;
mod kernel;
mod transport;

pub use domain::{surviving_grid, DimExchange, DomainDecomposition, RankDomain};
pub use fault::{splitmix64, CommError, CommFaultProfile, CommRetryPolicy, WireFault};
pub use kernel::{
    grid_label, policy_from_index, tune_comm_policy, ShardedField, ShardedHopping, ShardedMobius,
    ShardedNormal,
};
pub use transport::{
    CommFaultStats, CommStats, FaultyTransport, Frame, Mailboxes, Payload, BOX_BWD, BOX_FWD,
};
