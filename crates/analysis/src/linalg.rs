//! Small dense real linear algebra used by the fitter: solves and inverses
//! via Gauss–Jordan with partial pivoting. Matrices are row-major
//! `Vec<Vec<f64>>` — fit dimensions are tiny (a handful of parameters,
//! tens of data points), so clarity wins over blocking.

/// Solve `A x = b`. Returns `None` for (numerically) singular systems.
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let scale = a
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-300);
    let mut aug: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &bi)| {
            assert_eq!(row.len(), n);
            let mut r = row.clone();
            r.push(bi);
            r
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            aug[i][col]
                .abs()
                .partial_cmp(&aug[j][col].abs())
                .expect("no NaN in linear solve")
        })?;
        // Relative near-singularity check: a pivot this far below the
        // matrix scale means rank deficiency, not just small numbers.
        if aug[pivot][col].abs() < 1e-12 * scale {
            return None;
        }
        aug.swap(col, pivot);
        let inv = 1.0 / aug[col][col];
        for v in aug[col].iter_mut() {
            *v *= inv;
        }
        for row in 0..n {
            if row != col && aug[row][col] != 0.0 {
                let f = aug[row][col];
                for k in col..=n {
                    let sub = f * aug[col][k];
                    aug[row][k] -= sub;
                }
            }
        }
    }
    Some(aug.into_iter().map(|r| r[n]).collect())
}

/// Invert a square matrix. Returns `None` when singular.
pub fn invert(a: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = a.len();
    let mut out = vec![vec![0.0; n]; n];
    // Column-by-column solve against unit vectors.
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let col = solve(a, &e)?;
        for i in 0..n {
            out[i][j] = col[i];
        }
    }
    Some(out)
}

/// `A · x` for a square matrix.
pub fn matvec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|row| row.iter().zip(x).map(|(r, v)| r * v).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve(&a, &b).expect("nonsingular");
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -1.0],
            vec![0.5, -1.0, 2.0],
        ];
        let inv = invert(&a).expect("spd");
        for i in 0..3 {
            let e = matvec(&a, &inv.iter().map(|r| r[i]).collect::<Vec<_>>());
            for (j, v) in e.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(&a, &[1.0, 2.0]).is_none());
        assert!(invert(&a).is_none());
    }
}
