//! 16-bit fixed-point ("half") field storage.
//!
//! QUDA's fastest solver stores fields as 16-bit fixed-point numbers with a
//! per-site scale and computes in 32-bit float — this is the "double-half CG"
//! of the paper, where "most of the work is done using 16-bit precision
//! fixed-point storage (utilizing single-precision computation)". The win is
//! memory traffic: the solver is bandwidth bound, and half storage moves half
//! the bytes of single precision.
//!
//! This module implements that layer:
//!
//! - [`HalfGaugeField`] — links stored as `i16` with one `f32` scale per
//!   link matrix; implements [`GaugeLinks<f32>`], so every stencil kernel in
//!   this crate runs over it unchanged, decoding on the fly.
//! - [`HalfFermionField`] — spinors stored as `i16` with one `f32` scale per
//!   site, used to truncate vectors between solver restarts and to measure
//!   the encode error the reliable updates must absorb.

use crate::complex::Complex;
use crate::field::{GaugeField, GaugeLinks};
use crate::lattice::ND;
use crate::real::Real;
use crate::spinor::Spinor;
use crate::su3::{Su3, NC};
use rayon::prelude::*;

/// Maximum magnitude representable by the mantissa.
const QMAX: f32 = 32767.0;

/// Encode a block of reals into `i16` against the block's max-abs scale.
/// Returns the scale. An all-zero block gets scale 0 and all-zero codes.
fn encode_block(values: &[f32], out: &mut [i16]) -> f32 {
    debug_assert_eq!(values.len(), out.len());
    let max = values.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
    if max == 0.0 {
        out.iter_mut().for_each(|o| *o = 0);
        return 0.0;
    }
    let inv = QMAX / max;
    for (o, &v) in out.iter_mut().zip(values) {
        *o = (v * inv).round().clamp(-QMAX, QMAX) as i16;
    }
    max
}

/// Decode a block of `i16` against its scale.
fn decode_block(codes: &[i16], scale: f32, out: &mut [f32]) {
    let s = scale / QMAX;
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = c as f32 * s;
    }
}

/// Gauge links in 16-bit fixed point: 18 codes + 1 scale per link.
///
/// 18 × 2 + 4 = 40 bytes per link versus 72 in `f32` — a 1.8× traffic
/// reduction on the dominant data stream of the stencil.
#[derive(Clone)]
pub struct HalfGaugeField {
    volume: usize,
    /// `volume * 4 * 18` codes (row-major re/im pairs).
    codes: Vec<i16>,
    /// One scale per link.
    scales: Vec<f32>,
}

impl HalfGaugeField {
    /// Compress a full-precision gauge field.
    pub fn from_gauge<R: Real>(gauge: &GaugeField<R>) -> Self {
        let volume = gauge.lattice().volume();
        let n_links = volume * ND;
        let mut codes = vec![0i16; n_links * 18];
        let mut scales = vec![0f32; n_links];
        codes
            .par_chunks_mut(18)
            .zip(scales.par_iter_mut())
            .enumerate()
            .for_each(|(l, (chunk, scale))| {
                let u = gauge.links()[l];
                let mut vals = [0f32; 18];
                for i in 0..NC {
                    for j in 0..NC {
                        vals[(i * NC + j) * 2] = u.m[i][j].re.to_f64() as f32;
                        vals[(i * NC + j) * 2 + 1] = u.m[i][j].im.to_f64() as f32;
                    }
                }
                *scale = encode_block(&vals, chunk);
            });
        Self {
            volume,
            codes,
            scales,
        }
    }

    /// Bytes of storage used (the metric the half format exists to shrink).
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() * 2 + self.scales.len() * 4
    }

    /// Maximum element-wise decode error against a reference field.
    pub fn max_abs_error<R: Real>(&self, reference: &GaugeField<R>) -> f64 {
        crate::reduce::max_sites(self.volume * ND, |l| {
            let u = self.decode_link(l);
            let r = reference.links()[l];
            let mut err = 0.0f64;
            for i in 0..NC {
                for j in 0..NC {
                    let d = (u.m[i][j].to_c64() - r.m[i][j].to_c64()).abs();
                    err = err.max(d);
                }
            }
            err
        })
    }

    #[inline]
    fn decode_link(&self, l: usize) -> Su3<f32> {
        let chunk = &self.codes[l * 18..(l + 1) * 18];
        let s = self.scales[l] / QMAX;
        let mut u = Su3::zero();
        for i in 0..NC {
            for j in 0..NC {
                u.m[i][j] = Complex::new(
                    chunk[(i * NC + j) * 2] as f32 * s,
                    chunk[(i * NC + j) * 2 + 1] as f32 * s,
                );
            }
        }
        u
    }
}

impl GaugeLinks<f32> for HalfGaugeField {
    #[inline]
    fn link(&self, site: usize, mu: usize) -> Su3<f32> {
        self.decode_link(site * ND + mu)
    }
    fn volume(&self) -> usize {
        self.volume
    }
    fn recon_name(&self) -> &'static str {
        "half"
    }
}

/// Gauge links combining 16-bit fixed-point storage with 12-real
/// reconstruction: only the first two rows are stored (12 codes + 1 scale =
/// 28 bytes per link versus 40 for [`HalfGaugeField`] and 72 for `f32`), and
/// the third row is closed on the fly by the conjugate cross product — the
/// compounding of QUDA's "half" and "recon-12" axes.
#[derive(Clone)]
pub struct HalfRecon12Gauge {
    volume: usize,
    /// `volume * 4 * 12` codes (two rows of re/im pairs).
    codes: Vec<i16>,
    /// One scale per link.
    scales: Vec<f32>,
}

impl HalfRecon12Gauge {
    /// Compress a full-precision gauge field to two half-stored rows.
    pub fn from_gauge<R: Real>(gauge: &GaugeField<R>) -> Self {
        let volume = gauge.lattice().volume();
        let n_links = volume * ND;
        let mut codes = vec![0i16; n_links * 12];
        let mut scales = vec![0f32; n_links];
        codes
            .par_chunks_mut(12)
            .zip(scales.par_iter_mut())
            .enumerate()
            .for_each(|(l, (chunk, scale))| {
                let u = gauge.links()[l];
                let mut vals = [0f32; 12];
                for i in 0..2 {
                    for j in 0..NC {
                        vals[(i * NC + j) * 2] = u.m[i][j].re.to_f64() as f32;
                        vals[(i * NC + j) * 2 + 1] = u.m[i][j].im.to_f64() as f32;
                    }
                }
                *scale = encode_block(&vals, chunk);
            });
        Self {
            volume,
            codes,
            scales,
        }
    }

    /// Bytes of storage used.
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() * 2 + self.scales.len() * 4
    }
}

impl GaugeLinks<f32> for HalfRecon12Gauge {
    #[inline]
    fn link(&self, site: usize, mu: usize) -> Su3<f32> {
        let l = site * ND + mu;
        let chunk = &self.codes[l * 12..(l + 1) * 12];
        let s = self.scales[l] / QMAX;
        let mut u = Su3::zero();
        for i in 0..2 {
            for j in 0..NC {
                u.m[i][j] = Complex::new(
                    chunk[(i * NC + j) * 2] as f32 * s,
                    chunk[(i * NC + j) * 2 + 1] as f32 * s,
                );
            }
        }
        // Third row: conjugate cross product of the stored rows, the same
        // closure as 12-real reconstruction at full precision.
        u.m[2] = [
            (u.m[0][1] * u.m[1][2] - u.m[0][2] * u.m[1][1]).conj(),
            (u.m[0][2] * u.m[1][0] - u.m[0][0] * u.m[1][2]).conj(),
            (u.m[0][0] * u.m[1][1] - u.m[0][1] * u.m[1][0]).conj(),
        ];
        u
    }
    fn volume(&self) -> usize {
        self.volume
    }
    fn recon_name(&self) -> &'static str {
        "half-r12"
    }
}

/// Fermion vector in 16-bit fixed point: 24 codes + 1 scale per site spinor.
#[derive(Clone)]
pub struct HalfFermionField {
    codes: Vec<i16>,
    scales: Vec<f32>,
}

impl HalfFermionField {
    /// Compress a spinor vector.
    pub fn encode(v: &[Spinor<f32>]) -> Self {
        let mut codes = vec![0i16; v.len() * 24];
        let mut scales = vec![0f32; v.len()];
        codes
            .par_chunks_mut(24)
            .zip(scales.par_iter_mut())
            .zip(v.par_iter())
            .for_each(|((chunk, scale), sp)| {
                let mut vals = [0f32; 24];
                for s in 0..4 {
                    for c in 0..3 {
                        vals[(s * 3 + c) * 2] = sp.s[s].c[c].re;
                        vals[(s * 3 + c) * 2 + 1] = sp.s[s].c[c].im;
                    }
                }
                *scale = encode_block(&vals, chunk);
            });
        Self { codes, scales }
    }

    /// Number of spinors stored.
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// Decompress to `f32` spinors.
    pub fn decode(&self) -> Vec<Spinor<f32>> {
        (0..self.len())
            .into_par_iter()
            .map(|i| {
                let mut vals = [0f32; 24];
                decode_block(&self.codes[i * 24..(i + 1) * 24], self.scales[i], &mut vals);
                let mut sp = Spinor::zero();
                for s in 0..4 {
                    for c in 0..3 {
                        sp.s[s].c[c] =
                            Complex::new(vals[(s * 3 + c) * 2], vals[(s * 3 + c) * 2 + 1]);
                    }
                }
                sp
            })
            .collect()
    }

    /// Bytes of storage used.
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() * 2 + self.scales.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FermionField;
    use crate::lattice::Lattice;

    #[test]
    fn fermion_round_trip_error_is_bounded_by_block_scale() {
        let v: Vec<Spinor<f32>> = FermionField::<f64>::gaussian(512, 5).cast::<f32>().data;
        let half = HalfFermionField::encode(&v);
        let back = half.decode();
        for (orig, dec) in v.iter().zip(&back) {
            // Per-site bound: scale/2^15 per component (+rounding).
            let mut max_comp = 0.0f32;
            for s in 0..4 {
                for c in 0..3 {
                    max_comp = max_comp
                        .max(orig.s[s].c[c].re.abs())
                        .max(orig.s[s].c[c].im.abs());
                }
            }
            let bound = max_comp / QMAX * 1.01 + 1e-12;
            for s in 0..4 {
                for c in 0..3 {
                    let d = orig.s[s].c[c] - dec.s[s].c[c];
                    assert!(d.re.abs() <= bound && d.im.abs() <= bound);
                }
            }
        }
    }

    #[test]
    fn zero_vector_encodes_to_zero() {
        let v = vec![Spinor::<f32>::zero(); 16];
        let half = HalfFermionField::encode(&v);
        assert_eq!(half.decode(), v);
    }

    #[test]
    fn gauge_decode_error_is_small_for_unitary_links() {
        let lat = Lattice::new([4, 4, 2, 2]);
        let gauge = GaugeField::<f64>::hot(&lat, 3);
        let half = HalfGaugeField::from_gauge(&gauge);
        // Unitary entries are bounded by 1, so the error is ≤ ~1/32767.
        assert!(half.max_abs_error(&gauge) < 1.0 / 16000.0);
    }

    #[test]
    fn half_storage_is_smaller_than_single() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 7);
        let half = HalfGaugeField::from_gauge(&gauge);
        let single_bytes = lat.volume() * 4 * 18 * 4;
        assert!(half.storage_bytes() * 9 < single_bytes * 6, "≥1.6x smaller");
    }

    #[test]
    fn half_recon12_decodes_close_and_saves_bytes() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 21);
        let hr = HalfRecon12Gauge::from_gauge(&gauge);
        let plain = HalfGaugeField::from_gauge(&gauge);
        assert!(hr.storage_bytes() < plain.storage_bytes(), "28 < 40 B/link");
        assert_eq!(hr.recon_name(), "half-r12");
        let mut worst = 0.0f64;
        for site in 0..lat.volume() {
            for mu in 0..ND {
                let u = hr.link(site, mu);
                let r = gauge.links()[site * ND + mu];
                for i in 0..NC {
                    for j in 0..NC {
                        worst = worst.max((u.m[i][j].to_c64() - r.m[i][j].to_c64()).abs());
                    }
                }
            }
        }
        // Stored rows err at the 2^-15 level; the cross product roughly
        // doubles that on the reconstructed row.
        assert!(worst < 3.0 / 16000.0, "half-r12 decode error {worst}");
    }

    #[test]
    fn stencil_runs_on_half_gauge() {
        use crate::dirac::{LinearOp, WilsonDirac};
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge64 = GaugeField::<f64>::hot(&lat, 11);
        let gauge32 = gauge64.cast::<f32>();
        let half = HalfGaugeField::from_gauge(&gauge64);

        let d32 = WilsonDirac::new(&lat, &gauge32, 0.1, true);
        let dh = WilsonDirac::new(&lat, &half, 0.1, true);

        let psi = FermionField::<f64>::gaussian(lat.volume(), 13).cast::<f32>();
        let mut a = vec![Spinor::zero(); lat.volume()];
        let mut b = vec![Spinor::zero(); lat.volume()];
        d32.apply(&mut a, &psi.data);
        dh.apply(&mut b, &psi.data);

        let diff = crate::blas::sub(&a, &b);
        let rel = crate::blas::norm_sqr(&diff) / crate::blas::norm_sqr(&a);
        // Half-precision links: relative error ~ (2^-15)^2 in norm².
        assert!(rel < 1e-7, "half-gauge stencil deviates too much: {rel}");
        assert!(rel > 0.0, "must actually differ from f32");
    }

    #[test]
    fn double_half_mixed_cg_converges() {
        use crate::dirac::{NormalOp, WilsonDirac};
        use crate::solver::{mixed_cg, MixedParams};
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge64 = GaugeField::<f64>::hot(&lat, 17);
        let half = HalfGaugeField::from_gauge(&gauge64);
        let d64 = WilsonDirac::new(&lat, &gauge64, 0.3, true);
        let dh = WilsonDirac::new(&lat, &half, 0.3, true);
        let n64 = NormalOp::new(&d64);
        let nh = NormalOp::new(&dh);

        let b = FermionField::<f64>::gaussian(lat.volume(), 19).data;
        let mut x = vec![Spinor::zero(); lat.volume()];
        let stats = mixed_cg(&n64, &nh, &mut x, &b, MixedParams::default());
        // The inner operator differs from the outer one at the 2^-15 level;
        // reliable updates must still drive the true residual to tolerance.
        assert!(
            stats.converged,
            "double-half reliable-update CG failed: {stats:?}"
        );
    }
}
