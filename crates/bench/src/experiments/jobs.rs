//! §V/§VI text claims: backfilling recovery, startup time, application time
//! budget, machine-to-machine speedup.

use crate::output::{print_table, ExperimentOutput};
use autotune::Tuner;
use coral_machine::{sierra, summit, titan, SolverPerfModel};
use mpi_jm::startup::startup_model;
use mpi_jm::timeline::{sparkline, utilization_timeline};
use mpi_jm::{
    Cluster, ClusterConfig, MetaqScheduler, MpiJmConfig, MpiJmScheduler, NaiveBundler, TaskKind,
    Workload,
};

/// Backfilling comparison: naive bundling vs METAQ vs mpi_jm on the same
/// heterogeneous workload.
pub fn run_backfill(out: &ExperimentOutput) -> (f64, f64, f64) {
    let workload = Workload::heterogeneous_solves(16 * 8, 4, 1000.0, 0.35, 1e15, 7);
    let config = ClusterConfig {
        nodes: 64,
        jitter_sigma: 0.06,
        startup_failure_prob: 0.0,
        seed: 3,
    };

    let naive = NaiveBundler::run(&mut Cluster::new(sierra(), &config), &workload);
    let metaq = MetaqScheduler::run(&mut Cluster::new(sierra(), &config), &workload);
    let mpijm = MpiJmScheduler::new(MpiJmConfig {
        lump_nodes: 32,
        block_nodes: 4,
        ..MpiJmConfig::default()
    })
    .run(&mut Cluster::new(sierra(), &config), &workload);

    let rows = vec![
        vec![
            "naive bundling".to_string(),
            format!("{:.0}", naive.makespan),
            format!("{:.1}%", 100.0 * naive.utilization()),
            "1.00".to_string(),
        ],
        vec![
            "METAQ backfill".to_string(),
            format!("{:.0}", metaq.makespan),
            format!("{:.1}%", 100.0 * metaq.utilization()),
            format!("{:.2}", naive.makespan / metaq.makespan),
        ],
        vec![
            "mpi_jm".to_string(),
            format!("{:.0}", mpijm.makespan),
            format!("{:.1}%", 100.0 * mpijm.utilization()),
            format!("{:.2}", naive.makespan / mpijm.makespan),
        ],
    ];
    print_table(
        "Backfilling — 128 heterogeneous 4-node solves on 64 Sierra nodes",
        &[
            "scheduler",
            "makespan (s)",
            "utilization",
            "speedup vs naive",
        ],
        &rows,
    );
    println!("\nbusy-nodes timeline (one char ≈ 1/72 of the makespan):");
    for (name, r) in [("naive ", &naive), ("METAQ ", &metaq), ("mpi_jm", &mpijm)] {
        let tl = utilization_timeline(r, 64, 72);
        println!("  {name} {}", sparkline(&tl, 64));
    }
    println!(
        "\npaper: naive bundling idles 20-25%; METAQ recovers it \
         (~25% across-the-board speed-up)"
    );

    out.csv(
        "backfill.csv",
        "scheduler,makespan_s,utilization,speedup",
        &[
            vec![0.0, naive.makespan, naive.utilization(), 1.0],
            vec![
                1.0,
                metaq.makespan,
                metaq.utilization(),
                naive.makespan / metaq.makespan,
            ],
            vec![
                2.0,
                mpijm.makespan,
                mpijm.utilization(),
                naive.makespan / mpijm.makespan,
            ],
        ],
    )
    .expect("csv");
    (
        naive.utilization(),
        metaq.utilization(),
        naive.makespan / metaq.makespan,
    )
}

/// Startup model at several job sizes, including the paper's 4224-node run.
pub fn run_startup(out: &ExperimentOutput) {
    let sizes = [128usize, 512, 1024, 2048, 3388, 4224];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in &sizes {
        let r = startup_model(n, 128, 4);
        rows.push(vec![
            n.to_string(),
            r.n_lumps.to_string(),
            format!("{:.0}", r.connected_seconds()),
            format!("{:.0}", r.total_seconds()),
            format!("{:.0}", r.monolithic_seconds),
        ]);
        csv.push(vec![
            n as f64,
            r.n_lumps as f64,
            r.connected_seconds(),
            r.total_seconds(),
            r.monolithic_seconds,
        ]);
    }
    print_table(
        "mpi_jm partitioned startup (lumps of 128 nodes)",
        &[
            "nodes",
            "lumps",
            "connected (s)",
            "working (s)",
            "monolithic mpirun (s)",
        ],
        &rows,
    );
    println!(
        "\npaper: 4224-node job up in 3-5 minutes; all lumps connected in \
         under one minute"
    );
    out.csv(
        "startup.csv",
        "nodes,lumps,connected_s,working_s,monolithic_s",
        &csv,
    )
    .expect("csv");
}

/// The §VI application time budget and the effect of co-scheduling.
pub fn run_budget(out: &ExperimentOutput) -> (f64, f64, f64) {
    let workload = Workload::figure2_workflow(4, 16, 4, 965.0, 1e15);
    let mut solve = 0.0;
    let mut contract = 0.0;
    let mut io = 0.0;
    for t in &workload.tasks {
        match t.kind {
            TaskKind::PropagatorSolve { .. } => solve += t.base_seconds,
            TaskKind::Contraction => contract += t.base_seconds,
            TaskKind::Io => io += t.base_seconds,
        }
    }
    let total = solve + contract + io;

    // With co-scheduling, contractions and I/O hide behind solves.
    let config = ClusterConfig {
        nodes: 32,
        jitter_sigma: 0.0,
        startup_failure_prob: 0.0,
        seed: 5,
    };
    let co = MpiJmScheduler::new(MpiJmConfig {
        lump_nodes: 32,
        block_nodes: 4,
        co_schedule: true,
        ..MpiJmConfig::default()
    })
    .run(&mut Cluster::new(sierra(), &config), &workload);
    let solves_only = Workload::uniform_solves(64, 4, 965.0, 1e15);
    let solves_ref = MpiJmScheduler::new(MpiJmConfig {
        lump_nodes: 32,
        block_nodes: 4,
        co_schedule: true,
        ..MpiJmConfig::default()
    })
    .run(&mut Cluster::new(sierra(), &config), &solves_only);

    let rows = vec![
        vec![
            "propagators".to_string(),
            format!("{:.1}%", 100.0 * solve / total),
            "96.5%".to_string(),
        ],
        vec![
            "contractions".to_string(),
            format!("{:.1}%", 100.0 * contract / total),
            "3%".to_string(),
        ],
        vec![
            "I/O".to_string(),
            format!("{:.1}%", 100.0 * io / total),
            "0.5%".to_string(),
        ],
    ];
    print_table(
        "Application time budget (Fig. 2 workflow)",
        &["stage", "measured share", "paper"],
        &rows,
    );
    println!(
        "\nco-scheduled full workflow: {:.0} s vs solves-only {:.0} s \
         (overhead {:.1}% — contractions amortized to ~zero)",
        co.makespan,
        solves_ref.makespan,
        100.0 * (co.makespan / solves_ref.makespan - 1.0)
    );

    out.csv(
        "budget.csv",
        "solve_frac,contract_frac,io_frac,co_makespan,solves_only_makespan",
        &[vec![
            solve / total,
            contract / total,
            io / total,
            co.makespan,
            solves_ref.makespan,
        ]],
    )
    .expect("csv");
    (solve / total, contract / total, io / total)
}

/// GPU memory footprints and the minimum-GPU floors of the production
/// lattices — the "memory overheads" constraint behind the group sizes.
pub fn run_memory(out: &ExperimentOutput) {
    use coral_machine::{min_gpus_for_memory, solve_footprint};
    let cases = [
        (
            "48^3x64x12 (Fig. 3/5)",
            [48usize, 48, 48, 64],
            12usize,
            4usize,
        ),
        ("64^3x96x12 (Fig. 6)", [64, 64, 64, 96], 12, 6),
        ("96^3x144x20 (Fig. 4)", [96, 96, 96, 144], 20, 6),
    ];
    let ladder: Vec<usize> = (0..13).map(|k| 1usize << k).collect();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, dims, l5, gpn) in cases {
        let single = solve_footprint(dims, l5, 1, gpn).expect("1 GPU decomposes");
        let min = min_gpus_for_memory(dims, l5, gpn, 16.0, &ladder);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", single.total_gib()),
            min.map_or("-".into(), |m| m.to_string()),
        ]);
        csv.push(vec![single.total_gib(), min.unwrap_or(0) as f64]);
    }
    print_table(
        "Solver memory footprint (16 GiB V100 HBM, double-half working set)",
        &["lattice", "1-GPU GiB", "min GPUs"],
        &rows,
    );
    println!(
        "\npaper: \"we will in general need a minimum number of GPUs for a \
         given calculation due to memory overheads\""
    );
    out.csv("memory.csv", "single_gib,min_gpus", &csv)
        .expect("csv");
}

/// Machine-to-machine application speedup over Titan.
pub fn run_speedup(out: &ExperimentOutput) {
    let tuner = Tuner::new();
    // Per-node sustained solver throughput at each machine's production job
    // geometry (4-node jobs on Sierra/Summit; 16-node on 1-GPU Titan).
    let rate_per_node = |machine: coral_machine::MachineSpec, gpus: usize| -> f64 {
        let nodes = gpus / machine.gpus_per_node;
        let model = SolverPerfModel::new(machine, [48, 48, 48, 64], 12);
        let p = model.performance(&tuner, gpus).expect("fits");
        p.tflops / nodes as f64
    };
    let t = rate_per_node(titan(), 16);
    let s = rate_per_node(sierra(), 16);
    let m = rate_per_node(summit(), 24);

    let rows = vec![
        vec![
            "Titan".to_string(),
            format!("{t:.2}"),
            "1.0".to_string(),
            "1".to_string(),
        ],
        vec![
            "Sierra".to_string(),
            format!("{s:.2}"),
            format!("{:.1}", s / t),
            "12".to_string(),
        ],
        vec![
            "Summit".to_string(),
            format!("{m:.2}"),
            format!("{:.1}", m / t),
            "15".to_string(),
        ],
    ];
    print_table(
        "Machine-to-machine speedup (sustained TFLOPS per node, 4-node-class jobs)",
        &["machine", "TFLOPS/node", "model speedup", "paper"],
        &rows,
    );
    println!(
        "\nNote: the model's per-node ratio exceeds the paper's quoted 12x/15x; \
         see EXPERIMENTS.md for the discussion (ordering and Summit/Sierra \
         ratio are preserved)."
    );
    out.csv(
        "speedup.csv",
        "titan_tflops_node,sierra_tflops_node,summit_tflops_node",
        &[vec![t, s, m]],
    )
    .expect("csv");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backfill_recovers_waste() {
        let out = ExperimentOutput::new(std::env::temp_dir().join("jobs_test")).unwrap();
        let (naive_util, metaq_util, speedup) = run_backfill(&out);
        assert!(naive_util < 0.88, "naive must idle: {naive_util}");
        assert!(metaq_util > naive_util);
        assert!((1.10..1.45).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn budget_matches_paper_fractions() {
        let out = ExperimentOutput::new(std::env::temp_dir().join("jobs_test2")).unwrap();
        let (s, c, i) = run_budget(&out);
        assert!((s - 0.965).abs() < 0.01);
        assert!((c - 0.03).abs() < 0.01);
        assert!(i < 0.01);
    }
}
