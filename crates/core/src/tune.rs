//! Autotuning of the stencil kernels.
//!
//! QUDA tunes each kernel's CUDA launch geometry at first encounter and
//! caches the optimum. The analogous knob for our rayon kernels is the
//! parallel grain size (sites per task). This module adapts any of the
//! Dirac operators to the [`autotune::Tunable`] interface so a shared
//! [`autotune::Tuner`] can sweep and cache per (kernel, volume, precision).

use crate::dirac::{BlockLinearOp, DslashVariant, LinearOp};
use crate::field::FermionField;
use crate::lattice::volume_string;
use crate::real::Real;
use crate::spinor::Spinor;
use autotune::{ParamSpace, TimingHarness, Tunable, TuneKey, TuneParam, Tuner};

/// Trait for operators whose parallel grain can be set post-construction.
pub trait GrainTunable<R: Real>: LinearOp<R> {
    /// Set the parallel chunk size used by the stencil loops.
    fn set_grain(&mut self, grain: usize);
    /// Stable kernel name for the tune cache.
    fn kernel_name(&self) -> &'static str;
    /// Volume component of the tune key (includes L5 for 5D operators).
    fn volume_key(&self) -> String;
}

/// Trait for operators that can additionally switch their execution
/// [`DslashVariant`] — the axis [`tune_dslash_variant`] sweeps jointly with
/// the grain size. Every supported variant must be bit-identical, so the
/// sweep can only change speed, never results.
pub trait VariantTunable<R: Real>: GrainTunable<R> {
    /// Variants this operator can execute on its geometry.
    fn supported_variants(&self) -> Vec<DslashVariant>;
    /// Select the execution variant.
    fn set_variant(&mut self, variant: DslashVariant);
    /// Currently selected variant.
    fn variant(&self) -> DslashVariant;
    /// Storage/reconstruction label of the bound gauge field (a tune-key
    /// axis: compressed links shift the optimum).
    fn recon_name(&self) -> &'static str;
}

macro_rules! impl_grain_tunable_4d {
    ($ty:ident, $name:literal) => {
        impl<'a, R: Real, G: crate::field::GaugeLinks<R>> GrainTunable<R>
            for crate::dirac::$ty<'a, R, G>
        {
            fn set_grain(&mut self, grain: usize) {
                self.grain = grain;
            }
            fn kernel_name(&self) -> &'static str {
                $name
            }
            fn volume_key(&self) -> String {
                volume_string(self.lattice().dims())
            }
        }
    };
}

macro_rules! impl_grain_tunable_5d {
    ($ty:ident, $name:literal) => {
        impl<'a, R: Real, G: crate::field::GaugeLinks<R>> GrainTunable<R>
            for crate::dirac::$ty<'a, R, G>
        {
            fn set_grain(&mut self, grain: usize) {
                self.grain = grain;
            }
            fn kernel_name(&self) -> &'static str {
                $name
            }
            fn volume_key(&self) -> String {
                format!(
                    "{}x{}",
                    volume_string(self.lattice().dims()),
                    self.params().l5
                )
            }
        }
    };
}

impl_grain_tunable_4d!(WilsonDirac, "dslash_wilson");
impl_grain_tunable_4d!(PrecWilson, "dslash_wilson_prec");
impl_grain_tunable_5d!(MobiusDirac, "dslash_mobius");
impl_grain_tunable_5d!(PrecMobius, "dslash_mobius_prec");

macro_rules! impl_variant_tunable {
    ($ty:ident) => {
        impl<'a, R: Real, G: crate::field::GaugeLinks<R>> VariantTunable<R>
            for crate::dirac::$ty<'a, R, G>
        {
            fn supported_variants(&self) -> Vec<DslashVariant> {
                // Resolves to the operator's inherent method.
                crate::dirac::$ty::supported_variants(self)
            }
            fn set_variant(&mut self, variant: DslashVariant) {
                self.variant = variant;
            }
            fn variant(&self) -> DslashVariant {
                self.variant
            }
            fn recon_name(&self) -> &'static str {
                self.hopping().recon_name()
            }
        }
    };
}

impl_variant_tunable!(WilsonDirac);
impl_variant_tunable!(PrecWilson);
impl_variant_tunable!(MobiusDirac);
impl_variant_tunable!(PrecMobius);

/// Adapter that times one operator application at a candidate grain size.
struct OpTunable<'t, R: Real, Op: GrainTunable<R>> {
    op: &'t mut Op,
    input: Vec<Spinor<R>>,
    output: Vec<Spinor<R>>,
}

impl<'t, R: Real, Op: GrainTunable<R>> OpTunable<'t, R, Op> {
    fn new(op: &'t mut Op) -> Self {
        let n = op.vec_len();
        Self {
            input: FermionField::<R>::gaussian(n, 0xC0FFEE).data,
            output: vec![Spinor::zero(); n],
            op,
        }
    }
}

impl<'t, R: Real, Op: GrainTunable<R>> Tunable for OpTunable<'t, R, Op> {
    fn key(&self) -> TuneKey {
        TuneKey::new(
            self.op.kernel_name(),
            self.op.volume_key(),
            format!("prec={}", R::NAME),
        )
    }

    fn param_space(&self) -> ParamSpace {
        ParamSpace::grain_ladder(self.op.vec_len())
    }

    fn run(&mut self, param: TuneParam) {
        self.op.set_grain(param.grain);
        self.op.apply(&mut self.output, &self.input);
    }

    fn harness(&self) -> TimingHarness {
        TimingHarness::WallClock { reps: 2 }
    }

    fn flops(&self) -> f64 {
        self.op.flops_per_apply()
    }
}

/// Tune `op`'s grain size through `tuner` (sweeping on first encounter) and
/// leave the operator configured with the optimum. Returns the chosen grain.
pub fn tune_operator<R: Real, Op: GrainTunable<R>>(tuner: &Tuner, op: &mut Op) -> usize {
    let param = {
        let mut adapter = OpTunable::new(op);
        tuner.tune(&mut adapter)
    };
    op.set_grain(param.grain);
    param.grain
}

/// Adapter that times one *batched* operator application at a candidate
/// grain size. Same sweep as [`OpTunable`], but over the interleaved
/// `nrhs`-column block and under a key carrying the block-size axis — the
/// optimum grain genuinely shifts with how many columns each site row
/// holds, so block sizes must not share cache entries.
struct BlockOpTunable<'t, R: Real, Op: GrainTunable<R> + BlockLinearOp<R>> {
    op: &'t mut Op,
    nrhs: usize,
    input: Vec<Spinor<R>>,
    output: Vec<Spinor<R>>,
}

impl<'t, R: Real, Op: GrainTunable<R> + BlockLinearOp<R>> BlockOpTunable<'t, R, Op> {
    fn new(op: &'t mut Op, nrhs: usize) -> Self {
        assert!(nrhs > 0, "a block needs at least one column");
        let n = op.vec_len() * nrhs;
        Self {
            input: FermionField::<R>::gaussian(n, 0xC0FFEE).data,
            output: vec![Spinor::zero(); n],
            op,
            nrhs,
        }
    }
}

impl<'t, R: Real, Op: GrainTunable<R> + BlockLinearOp<R>> Tunable for BlockOpTunable<'t, R, Op> {
    fn key(&self) -> TuneKey {
        TuneKey::new(
            self.op.kernel_name(),
            self.op.volume_key(),
            format!("prec={}", R::NAME),
        )
        .with_nrhs(self.nrhs)
    }

    fn param_space(&self) -> ParamSpace {
        ParamSpace::grain_ladder(self.op.vec_len())
    }

    fn run(&mut self, param: TuneParam) {
        self.op.set_grain(param.grain);
        self.op
            .apply_block(&mut self.output, &self.input, self.nrhs);
    }

    fn harness(&self) -> TimingHarness {
        TimingHarness::WallClock { reps: 2 }
    }

    fn flops(&self) -> f64 {
        self.op.flops_per_apply() * self.nrhs as f64
    }
}

/// Tune `op`'s grain size for batched applies at block size `nrhs` and
/// leave the operator configured with the optimum. Cached independently of
/// the single-RHS entry (and of other block sizes) via the key's `nrhs`
/// axis. Returns the chosen grain.
pub fn tune_block_operator<R: Real, Op: GrainTunable<R> + BlockLinearOp<R>>(
    tuner: &Tuner,
    op: &mut Op,
    nrhs: usize,
) -> usize {
    let param = {
        let mut adapter = BlockOpTunable::new(op, nrhs);
        tuner.tune(&mut adapter)
    };
    op.set_grain(param.grain);
    param.grain
}

/// Adapter sweeping the cross product of supported [`DslashVariant`]s and a
/// grain ladder; the variant index rides in [`TuneParam::policy`]. Keyed on
/// the `layout="variant"` marker plus the gauge field's reconstruction
/// label, so the combined sweep never collides with plain grain tuning and
/// compressed-link operators tune separately from full-storage ones.
struct VariantOpTunable<'t, R: Real, Op: VariantTunable<R>> {
    op: &'t mut Op,
    variants: Vec<DslashVariant>,
    input: Vec<Spinor<R>>,
    output: Vec<Spinor<R>>,
}

impl<'t, R: Real, Op: VariantTunable<R>> VariantOpTunable<'t, R, Op> {
    fn new(op: &'t mut Op) -> Self {
        let n = op.vec_len();
        let variants = op.supported_variants();
        assert!(!variants.is_empty(), "operator supports no variants");
        Self {
            input: FermionField::<R>::gaussian(n, 0xC0FFEE).data,
            output: vec![Spinor::zero(); n],
            variants,
            op,
        }
    }
}

impl<'t, R: Real, Op: VariantTunable<R>> Tunable for VariantOpTunable<'t, R, Op> {
    fn key(&self) -> TuneKey {
        TuneKey::new(
            self.op.kernel_name(),
            self.op.volume_key(),
            format!("prec={}", R::NAME),
        )
        .with_layout("variant")
        .with_recon(self.op.recon_name())
    }

    fn param_space(&self) -> ParamSpace {
        let max_sites = self.op.vec_len().max(64);
        let mut candidates = Vec::new();
        for (vi, _) in self.variants.iter().enumerate() {
            let before = candidates.len();
            // ×2 ladder: the sweet spot for the fused 5D paths sits between
            // the ×4 rungs (e.g. grain 512 on an 8⁴ half-volume), and the
            // sweep is cheap — a handful of applies per extra rung.
            let mut grain = 64usize;
            while grain <= max_sites {
                candidates.push(TuneParam {
                    grain,
                    block: 64,
                    policy: vi,
                });
                grain *= 2;
            }
            // Tiny geometries (< 64 sites) still get one candidate per
            // variant, which also keeps the space provably nonempty.
            if candidates.len() == before {
                candidates.push(TuneParam {
                    grain: max_sites.max(1),
                    block: 64,
                    policy: vi,
                });
            }
        }
        match ParamSpace::from_candidates(candidates) {
            Some(space) => space,
            // Unreachable: the loop above pushes at least one candidate per
            // variant and `self.variants` is never empty.
            None => ParamSpace::grain_ladder(max_sites.max(1)),
        }
    }

    fn run(&mut self, param: TuneParam) {
        self.op
            .set_variant(self.variants[param.policy.min(self.variants.len() - 1)]);
        self.op.set_grain(param.grain);
        self.op.apply(&mut self.output, &self.input);
    }

    fn harness(&self) -> TimingHarness {
        // Best-of-3 per candidate: the ×2 grain ladder has close rungs, so a
        // single noisy sample could mis-rank neighboring grains.
        TimingHarness::WallClock { reps: 3 }
    }

    fn flops(&self) -> f64 {
        self.op.flops_per_apply()
    }
}

/// Jointly tune `op`'s execution variant and grain size through `tuner`
/// (sweeping every supported variant across the grain ladder on first
/// encounter) and leave the operator configured with the optimum. Returns
/// the winning variant and parameter point. Cached under the key's
/// `layout`/`recon` axes, so it coexists with [`tune_operator`] entries and
/// round-trips through the JSON cache.
pub fn tune_dslash_variant<R: Real, Op: VariantTunable<R>>(
    tuner: &Tuner,
    op: &mut Op,
) -> (DslashVariant, TuneParam) {
    let (variants, param) = {
        let mut adapter = VariantOpTunable::new(op);
        let param = tuner.tune(&mut adapter);
        (adapter.variants, param)
    };
    let variant = variants[param.policy.min(variants.len() - 1)];
    op.set_variant(variant);
    op.set_grain(param.grain);
    (variant, param)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::WilsonDirac;
    use crate::field::GaugeField;
    use crate::lattice::Lattice;

    #[test]
    fn tuning_sets_grain_and_caches() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 3);
        let mut d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let tuner = Tuner::new();

        let g1 = tune_operator(&tuner, &mut d);
        assert_eq!(d.grain, g1);
        assert_eq!(tuner.stats().misses, 1);

        // Second operator with the same key: pure cache hit.
        let mut d2 = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let g2 = tune_operator(&tuner, &mut d2);
        assert_eq!(g1, g2);
        assert_eq!(tuner.stats().hits, 1);
    }

    #[test]
    fn different_precisions_tune_separately() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge64 = GaugeField::<f64>::hot(&lat, 5);
        let gauge32 = gauge64.cast::<f32>();
        let mut d64 = WilsonDirac::new(&lat, &gauge64, 0.1, true);
        let mut d32 = WilsonDirac::new(&lat, &gauge32, 0.1, true);
        let tuner = Tuner::new();
        tune_operator(&tuner, &mut d64);
        tune_operator(&tuner, &mut d32);
        assert_eq!(tuner.len(), 2, "f32 and f64 keys must be distinct");
    }

    #[test]
    fn block_sizes_tune_separately_and_preserve_bits() {
        use crate::dirac::BlockLinearOp;
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 11);
        let mut d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let tuner = Tuner::new();
        let nrhs = 3;
        let x = crate::field::FermionField::<f64>::gaussian(lat.volume() * nrhs, 2).data;
        let mut before = vec![crate::spinor::Spinor::zero(); lat.volume() * nrhs];
        d.apply_block(&mut before, &x, nrhs);

        tune_operator(&tuner, &mut d);
        tune_block_operator(&tuner, &mut d, nrhs);
        assert_eq!(
            tuner.len(),
            2,
            "nrhs=1 and nrhs={nrhs} keys must be distinct"
        );

        let mut after = vec![crate::spinor::Spinor::zero(); lat.volume() * nrhs];
        d.apply_block(&mut after, &x, nrhs);
        assert_eq!(before, after, "tuning must not change blocked results");
    }

    #[test]
    fn variant_tuning_selects_supported_variant_and_preserves_bits() {
        use crate::dirac::LinearOp;
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 13);
        let mut d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let x = crate::field::FermionField::<f64>::gaussian(lat.volume(), 6).data;
        let mut before = vec![crate::spinor::Spinor::zero(); lat.volume()];
        d.apply(&mut before, &x);

        let tuner = Tuner::new();
        let (variant, param) = tune_dslash_variant(&tuner, &mut d);
        assert!(d.supported_variants().contains(&variant));
        assert_eq!(d.variant, variant);
        assert_eq!(d.grain, param.grain);
        assert_eq!(tuner.stats().misses, 1);

        let mut after = vec![crate::spinor::Spinor::zero(); lat.volume()];
        d.apply(&mut after, &x);
        assert_eq!(before, after, "variant tuning must not change results");

        // Same operator again: pure cache hit, same winner.
        let mut d2 = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let (v2, p2) = tune_dslash_variant(&tuner, &mut d2);
        assert_eq!((v2, p2), (variant, param));
        assert_eq!(tuner.stats().hits, 1);
    }

    #[test]
    fn variant_and_grain_tuning_use_distinct_keys() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 17);
        let mut d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let tuner = Tuner::new();
        tune_operator(&tuner, &mut d);
        tune_dslash_variant(&tuner, &mut d);
        assert_eq!(tuner.len(), 2, "layout axis must separate the entries");
    }

    #[test]
    fn variant_tune_entries_round_trip_through_json() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 19);
        let mut d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let tuner = Tuner::new();
        let (variant, param) = tune_dslash_variant(&tuner, &mut d);

        let json = tuner.to_json();
        assert!(json.contains("\"layout\""), "layout axis serialized");
        assert!(json.contains("\"recon\""), "recon axis serialized");
        let restored = Tuner::new();
        restored.merge_json(&json).expect("cache parses");
        let mut d2 = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let (v2, p2) = tune_dslash_variant(&restored, &mut d2);
        assert_eq!((v2, p2), (variant, param), "restored cache must hit");
        assert_eq!(restored.stats().hits, 1);
        assert_eq!(restored.stats().misses, 0);
    }

    #[test]
    fn tuned_result_is_unchanged_by_grain() {
        use crate::dirac::LinearOp;
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 7);
        let mut d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let x = crate::field::FermionField::<f64>::gaussian(lat.volume(), 1).data;
        let mut before = vec![crate::spinor::Spinor::zero(); lat.volume()];
        d.apply(&mut before, &x);
        let tuner = Tuner::new();
        tune_operator(&tuner, &mut d);
        let mut after = vec![crate::spinor::Spinor::zero(); lat.volume()];
        d.apply(&mut after, &x);
        assert_eq!(before, after);
    }
}
