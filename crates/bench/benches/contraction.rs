//! Tensor contractions — the CPU-only stage the paper co-schedules (3% of
//! execution time).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lqcd_core::gamma::{gamma5_dense, parity_projector};
use lqcd_core::prelude::*;

fn make_prop(lat: &Lattice, gauge: &GaugeField<f64>) -> Propagator {
    let solver = PropagatorSolver::new(lat, gauge, SolverKind::WilsonBicgstab { mass: 0.5 });
    solver.point_propagator(0).0
}

fn bench_contractions(c: &mut Criterion) {
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 17);
    let prop = make_prop(&lat, &gauge);

    let mut group = c.benchmark_group("contraction");
    group.sample_size(20);
    group.throughput(Throughput::Elements(lat.volume() as u64));

    group.bench_function("pion_shortcut", |b| b.iter(|| pion_correlator(&lat, &prop)));

    let g5 = gamma5_dense();
    group.bench_function("meson_generic", |b| {
        b.iter(|| meson_correlator(&lat, &prop, &prop, &g5, &g5))
    });

    let proj = parity_projector();
    group.bench_function("proton_2pt", |b| {
        b.iter(|| proton_correlator(&lat, &prop, &prop, &proj))
    });
    group.finish();
}

criterion_group!(benches, bench_contractions);
criterion_main!(benches);
