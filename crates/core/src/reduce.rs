//! Fixed-shape deterministic reductions over site/link indices.
//!
//! The observables and gauge-evolution code paths used to reduce per-site
//! floats straight through `par_iter().sum()`, whose accumulation order —
//! and therefore bits — depends on the pool width. With the solve-service
//! result cache keyed on bit-exact outputs, that is a correctness bug, not
//! a style nit: the same configuration measured at a different thread
//! count would miss the cache (or worse, collide with a stale entry that
//! compares unequal). These helpers route every such reduction through
//! [`rayon::reduce_chunks`]: chunk boundaries derive from `len` only, each
//! chunk folds sequentially, and partials combine in index order — the
//! same contract [`crate::blas`] already keeps for the solver reductions —
//! so the result is bit-identical at any pool width.

use crate::blas::grain_for;

/// `Σ_{i<len} f(i)` with a width-invariant accumulation order.
pub fn sum_sites<F>(len: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync + Send,
{
    rayon::reduce_chunks(
        len,
        grain_for(len),
        || 0.0f64,
        |acc, r| r.fold(acc, |a, i| a + f(i)),
        |a, b| a + b,
    )
}

/// `(Σ f(i).0, Σ f(i).1)` — a paired sum (e.g. complex re/im) with a
/// width-invariant accumulation order.
pub fn sum2_sites<F>(len: usize, f: F) -> (f64, f64)
where
    F: Fn(usize) -> (f64, f64) + Sync + Send,
{
    rayon::reduce_chunks(
        len,
        grain_for(len),
        || (0.0f64, 0.0f64),
        |acc, r| {
            r.fold(acc, |(a0, a1), i| {
                let (v0, v1) = f(i);
                (a0 + v0, a1 + v1)
            })
        },
        |a, b| (a.0 + b.0, a.1 + b.1),
    )
}

/// `max_{i<len} f(i)` over the same fixed chunk shape. `f64::max` is
/// insensitive to association order for the finite values these monitors
/// produce, but routing it through the shared reducer keeps every float
/// reduction in the crate on one audited code path.
pub fn max_sites<F>(len: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync + Send,
{
    rayon::reduce_chunks(
        len,
        grain_for(len),
        || 0.0f64,
        |acc, r| r.fold(acc, |a, i| a.max(f(i))),
        f64::max,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_sequential_below_threshold() {
        // One chunk: bit-identical to a plain fold by construction.
        let vals: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let seq: f64 = vals.iter().fold(0.0, |a, v| a + v);
        assert_eq!(sum_sites(vals.len(), |i| vals[i]).to_bits(), seq.to_bits());
    }

    #[test]
    fn paired_sum_components_are_independent() {
        let n = 10_000;
        let (a, b) = sum2_sites(n, |i| (i as f64, -(i as f64)));
        assert_eq!(a, -b);
        assert_eq!(a, (n * (n - 1) / 2) as f64);
    }

    #[test]
    fn max_finds_the_maximum() {
        let n = 50_000;
        assert_eq!(max_sites(n, |i| (i % 997) as f64), 996.0);
        assert_eq!(max_sites(0, |_| 1.0), 0.0);
    }
}
