//! The hot kernel: Wilson and Möbius stencil applications across storage
//! precisions (f64 / f32 / 16-bit fixed point) and with/without autotuned
//! grain — the microbenchmark behind the paper's bandwidth discussion.

use autotune::Tuner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lqcd_core::prelude::*;
use lqcd_core::tune::tune_operator;

fn bench_wilson_precisions(c: &mut Criterion) {
    let lat = Lattice::new([8, 8, 8, 16]);
    let gauge64 = GaugeField::<f64>::hot(&lat, 3);
    let gauge32 = gauge64.cast::<f32>();
    let half = HalfGaugeField::from_gauge(&gauge64);

    let x64 = FermionField::<f64>::gaussian(lat.volume(), 1).data;
    let x32: Vec<Spinor<f32>> = x64.iter().map(|s| s.cast()).collect();

    let mut group = c.benchmark_group("dslash_wilson");
    group.throughput(Throughput::Elements(lat.volume() as u64));
    group.sample_size(20);

    let d64 = WilsonDirac::new(&lat, &gauge64, 0.1, true);
    let mut out64 = vec![Spinor::zero(); lat.volume()];
    group.bench_function(BenchmarkId::new("prec", "f64"), |b| {
        b.iter(|| d64.apply(&mut out64, &x64))
    });

    let d32 = WilsonDirac::new(&lat, &gauge32, 0.1, true);
    let mut out32 = vec![Spinor::zero(); lat.volume()];
    group.bench_function(BenchmarkId::new("prec", "f32"), |b| {
        b.iter(|| d32.apply(&mut out32, &x32))
    });

    let dh = WilsonDirac::new(&lat, &half, 0.1, true);
    group.bench_function(BenchmarkId::new("prec", "half-gauge"), |b| {
        b.iter(|| dh.apply(&mut out32, &x32))
    });
    group.finish();
}

fn bench_mobius(c: &mut Criterion) {
    let lat = Lattice::new([8, 8, 8, 8]);
    let gauge = GaugeField::<f64>::hot(&lat, 5);
    let params = MobiusParams::standard(8, 0.1);

    let mut group = c.benchmark_group("dslash_mobius");
    group.sample_size(15);

    let full = MobiusDirac::new(&lat, &gauge, params);
    let x = FermionField::<f64>::gaussian(full.vec_len(), 2).data;
    let mut out = vec![Spinor::zero(); full.vec_len()];
    group.throughput(Throughput::Elements(full.vec_len() as u64));
    group.bench_function("full", |b| b.iter(|| full.apply(&mut out, &x)));

    let prec = PrecMobius::new(&lat, &gauge, params);
    let xo = FermionField::<f64>::gaussian(prec.vec_len(), 3).data;
    let mut out_o = vec![Spinor::zero(); prec.vec_len()];
    group.bench_function("red-black", |b| b.iter(|| prec.apply(&mut out_o, &xo)));
    group.finish();
}

fn bench_autotuned_grain(c: &mut Criterion) {
    let lat = Lattice::new([8, 8, 8, 16]);
    let gauge = GaugeField::<f64>::hot(&lat, 7);
    let x = FermionField::<f64>::gaussian(lat.volume(), 4).data;
    let mut out = vec![Spinor::zero(); lat.volume()];

    let mut group = c.benchmark_group("dslash_autotune");
    group.sample_size(20);

    // Deliberately bad grain: serialize the whole volume in one task.
    let mut untuned = WilsonDirac::new(&lat, &gauge, 0.1, true);
    untuned.grain = lat.volume();
    group.bench_function("grain=volume (serial)", |b| {
        b.iter(|| untuned.apply(&mut out, &x))
    });

    let tuner = Tuner::new();
    let mut tuned = WilsonDirac::new(&lat, &gauge, 0.1, true);
    tune_operator(&tuner, &mut tuned);
    group.bench_function("grain=tuned", |b| b.iter(|| tuned.apply(&mut out, &x)));
    group.finish();
}

criterion_group!(
    benches,
    bench_wilson_precisions,
    bench_mobius,
    bench_autotuned_grain
);
criterion_main!(benches);
