//! The paper's physics headline: determine gA with the Feynman–Hellmann
//! method and convert it to the Standard-Model neutron lifetime,
//! `τ_n = 5172.0 s / (1 + 3 gA²)`.
//!
//! Runs the Fig. 1 analysis on the a09m310 spectral model: jackknifed
//! effective couplings, excited-state fit over the early-time window the FH
//! method unlocks, and the comparison against traditional three-point ratios
//! with ten times the statistics.
//!
//! ```sh
//! cargo run --release --example neutron_lifetime
//! ```

use lqcd::analysis::corrmodel::{SyntheticEnsemble, A09M310};
use lqcd::analysis::fit::{curve_fit, FitSettings};
use lqcd::analysis::jackknife::jackknife_vector;
use lqcd::{neutron_lifetime_error_seconds, neutron_lifetime_seconds};

fn main() {
    let model = A09M310;
    let n_fh = 800;
    let n_trad = 8000;

    // Feynman-Hellmann data: every source-sink separation from one extra
    // inversion per quark line.
    let ens = model.generate(n_fh, 14, 7);
    let idx: Vec<usize> = (0..n_fh).collect();
    let est = jackknife_vector(&idx, |ii| {
        let c2: Vec<Vec<f64>> = ii.iter().map(|&i| ens.c2pt[i].clone()).collect();
        let cf: Vec<Vec<f64>> = ii.iter().map(|&i| ens.cfh[i].clone()).collect();
        SyntheticEnsemble::effective_ga_of(&c2, &cf)
    });

    println!("FH effective coupling ({} configs):", n_fh);
    for (t, e) in est.iter().enumerate().skip(1) {
        let bar = "*".repeat((e.error * 400.0).min(60.0) as usize + 1);
        println!(
            "  t={t:2}  g_eff = {:.4} ± {:.4}  noise {bar}",
            e.mean, e.error
        );
    }

    // Fit gA + b e^{-ΔE t} over the precise early-time window.
    let xs: Vec<f64> = (2..=10).map(|t| t as f64).collect();
    let ys: Vec<f64> = (2..=10).map(|t| est[t].mean).collect();
    let ss: Vec<f64> = (2..=10).map(|t| est[t].error.max(1e-9)).collect();
    let de = model.de;
    let fit = curve_fit(
        &xs,
        &ys,
        &ss,
        |x, p| p[0] + p[1] * (-de * x).exp(),
        &[1.2, -0.3],
        &FitSettings::default(),
    );
    let (ga, dga) = (fit.params[0], fit.errors[0]);
    println!(
        "\nexcited-state fit: gA = {ga:.4} ± {dga:.4} ({:.1}% precision, chi2/dof {:.2})",
        100.0 * dga / ga,
        fit.chi2_per_dof()
    );

    // Traditional comparison at 10x the statistics.
    let trad = model.traditional_samples(14, n_trad, 9);
    let mean: f64 = trad.iter().sum::<f64>() / n_trad as f64;
    let var: f64 =
        trad.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n_trad as f64 - 1.0);
    let terr = (var / n_trad as f64).sqrt();
    println!("traditional ratio at t_sep = 14 with {n_trad} configs: {mean:.4} ± {terr:.4}");
    println!(
        "=> FH with 10x fewer samples is {:.1}x more precise",
        terr / dga
    );

    // Eq. 1 of the paper.
    let tau = neutron_lifetime_seconds(ga);
    let dtau = neutron_lifetime_error_seconds(ga, dga);
    println!("\nStandard-Model neutron lifetime: τ_n = {tau:.1} ± {dtau:.1} s");
    println!("experiment: trapped 879.4(6) s vs beam 888(2) s — an 8.6 s puzzle;");
    println!(
        "resolving it needs gA at 0.2%, i.e. Δτ ≲ {:.1} s",
        neutron_lifetime_error_seconds(ga, 0.002 * ga)
    );
}
