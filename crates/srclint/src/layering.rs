//! R4: crate-layering enforcement.
//!
//! Discovers every package manifest under the scan root, parses its
//! `[package] name` and `[dependencies]` with a purpose-built minimal TOML
//! reader (the two syntaxes this workspace uses: `key.workspace = true`
//! and `key = { path = "…" }`), then cross-references three things:
//!
//! 1. **Forbidden edges** — the layer policy from [`crate::Config`]
//!    (`core` must never depend on `jobmgr`/`bench`/`io`, `obs` on nothing
//!    in-workspace). Both the declared edge and actual `use`/path
//!    references are checked, so a policy hole cannot hide behind a
//!    transitively-reexported path.
//! 2. **Unused declarations** — a dependency listed in `[dependencies]`
//!    whose lib name is never referenced from the package's sources widens
//!    the layering graph for nothing and invites accidental coupling.
//! 3. **Undeclared references** — a source reference to a workspace lib
//!    that is not in `[dependencies]` (normally a compile error, but catches
//!    references smuggled in through `cfg`-gated code).

use crate::lexer::{lex, TokKind};
use crate::{rule_ids, Config, Finding};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One parsed manifest.
#[derive(Debug)]
struct Manifest {
    /// Package name (`[package] name = "…"`).
    name: String,
    /// Manifest path relative to the scan root.
    rel_path: String,
    /// Directory containing the manifest.
    dir: PathBuf,
    /// Dep key -> (1-based line in the manifest, raw line text). Only
    /// `[dependencies]`; dev-dependencies may be test-only and are exempt.
    deps: BTreeMap<String, (u32, String)>,
}

/// Parse the subset of TOML this workspace's manifests use.
fn parse_manifest(rel_path: &str, text: &str) -> Option<Manifest> {
    let mut name = None;
    let mut deps = BTreeMap::new();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if section == "package" {
            if let Some(v) = line.strip_prefix("name") {
                let v = v.trim_start();
                if let Some(v) = v.strip_prefix('=') {
                    name = Some(v.trim().trim_matches('"').to_string());
                }
            }
        } else if section == "dependencies" {
            // `rand.workspace = true` or `rand = { … }` or `rand = "1.0"`.
            let key: String = line
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !key.is_empty() {
                deps.insert(key, (i as u32 + 1, raw.to_string()));
            }
        }
    }
    Some(Manifest {
        name: name?,
        rel_path: rel_path.to_string(),
        dir: PathBuf::new(),
        deps,
    })
}

/// Find every `Cargo.toml` with a `[package]` section under `root`.
fn find_manifests(root: &Path, cfg: &Config) -> std::io::Result<Vec<Manifest>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                let dname = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !cfg.skip_dirs.iter().any(|s| s == dname) {
                    stack.push(p);
                }
            } else if p.file_name().and_then(|n| n.to_str()) == Some("Cargo.toml") {
                let text = std::fs::read_to_string(&p)?;
                let rel = crate::rel(root, &p);
                if let Some(mut m) = parse_manifest(&rel, &text) {
                    m.dir = p.parent().unwrap_or(root).to_path_buf();
                    out.push(m);
                }
            }
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

/// The lib (import) name of a dependency key: `-` becomes `_`.
fn lib_name(dep: &str) -> String {
    dep.replace('-', "_")
}

/// Every external crate name referenced from the package's sources, via
/// `use name::…`, `name::path`, or `extern crate name`. Token-level: a
/// `name ::` pair outside comments. Includes test code — a test import is
/// still a real dependency edge.
fn referenced_crates(pkg_dir: &Path, cfg: &Config) -> std::io::Result<BTreeSet<String>> {
    let mut refs = BTreeSet::new();
    for sub in ["src", "tests", "benches", "examples"] {
        let dir = pkg_dir.join(sub);
        if !dir.is_dir() {
            continue;
        }
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            for e in std::fs::read_dir(&d)? {
                let p = e?.path();
                if p.is_dir() {
                    let dname = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                    if !cfg.skip_dirs.iter().any(|s| s == dname) {
                        stack.push(p);
                    }
                } else if p.extension().and_then(|x| x.to_str()) == Some("rs") {
                    let Ok(src) = std::fs::read_to_string(&p) else {
                        continue;
                    };
                    let toks = lex(&src);
                    let code: Vec<_> = toks
                        .iter()
                        .filter(|t| !matches!(t.kind, TokKind::Comment(_)))
                        .collect();
                    for i in 0..code.len() {
                        if let Some(name) = code[i].ident() {
                            let qualified = code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                                && code.get(i + 2).is_some_and(|t| t.is_punct(':'));
                            // `foo::bar` where foo is not itself preceded by
                            // `::` (which would make it a path segment).
                            let root_segment =
                                i < 2 || !(code[i - 1].is_punct(':') && code[i - 2].is_punct(':'));
                            // Bare re-exports: `use foo;` / `pub use foo as
                            // bar;` / `extern crate foo;` reference the crate
                            // root without a `::` pair.
                            let bare_use = i > 0
                                && code[i - 1]
                                    .ident()
                                    .is_some_and(|k| k == "use" || k == "crate");
                            if (qualified && root_segment) || bare_use {
                                refs.insert(name.to_string());
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(refs)
}

/// Run the layering checks over every package under `root`.
pub fn check_layering(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let manifests = find_manifests(root, cfg)?;
    let workspace: BTreeMap<String, String> = manifests
        .iter()
        .map(|m| (m.name.clone(), lib_name(&m.name)))
        .collect();
    // lib name -> package name, for resolving source references.
    let by_lib: BTreeMap<String, String> = manifests
        .iter()
        .map(|m| (lib_name(&m.name), m.name.clone()))
        .collect();

    let mut out = Vec::new();
    for m in &manifests {
        let forbidden: &[String] = cfg
            .forbidden_deps
            .iter()
            .find(|(pkg, _)| *pkg == m.name)
            .map(|(_, f)| f.as_slice())
            .unwrap_or(&[]);
        let isolated = cfg.isolated_packages.iter().any(|p| *p == m.name);
        let refs = referenced_crates(&m.dir, cfg)?;

        for (dep, (line, raw)) in &m.deps {
            let in_workspace = workspace.contains_key(dep);
            let violates_edge = forbidden.iter().any(|f| f == dep);
            let violates_isolation = isolated && in_workspace;
            if violates_edge || violates_isolation {
                out.push(Finding::new(
                    rule_ids::LAYERING,
                    &m.rel_path,
                    *line,
                    format!(
                        "`{}` must not depend on `{dep}` ({})",
                        m.name,
                        if violates_isolation {
                            "package is layer-isolated: no in-workspace deps"
                        } else {
                            "forbidden layering edge"
                        }
                    ),
                    raw,
                ));
            }
            if !refs.contains(&lib_name(dep)) {
                out.push(Finding::new(
                    rule_ids::LAYERING,
                    &m.rel_path,
                    *line,
                    format!(
                        "`{}` declares dependency `{dep}` but never references `{}::` — \
                         remove it to keep the layering graph honest",
                        m.name,
                        lib_name(dep)
                    ),
                    raw,
                ));
            }
        }

        // Source references to workspace libs that are not declared, or
        // that cross a forbidden edge without a manifest entry.
        for r in &refs {
            let Some(ref_pkg) = by_lib.get(r) else {
                continue;
            };
            if *ref_pkg == m.name {
                continue; // crate-internal absolute path
            }
            if forbidden.iter().any(|f| f == ref_pkg) && !m.deps.contains_key(ref_pkg) {
                out.push(Finding::new(
                    rule_ids::LAYERING,
                    &m.rel_path,
                    1,
                    format!(
                        "sources of `{}` reference forbidden layer `{ref_pkg}` (via `{r}::`)",
                        m.name
                    ),
                    &format!("{}::{ref_pkg}", m.name),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parser_reads_both_dep_syntaxes() {
        let m = parse_manifest(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\n\n[dependencies]\nobs.workspace = true\nrand = { path = \"../rand\" }\nplain = \"1.0\"\n\n[dev-dependencies]\nproptest.workspace = true\n",
        )
        .unwrap();
        assert_eq!(m.name, "x");
        let keys: Vec<&String> = m.deps.keys().collect();
        assert_eq!(keys, ["obs", "plain", "rand"]);
        assert!(!m.deps.contains_key("proptest"));
    }

    #[test]
    fn lib_names_normalize_dashes() {
        assert_eq!(lib_name("lqcd-core"), "lqcd_core");
    }
}
