//! Model of the solve-service result cache's get-or-compute protocol.
//!
//! Mirrors `crates/service/src/cache.rs`: one mutex guards the slot map; a
//! getter that misses claims the key with an `InFlight` marker, computes
//! *unlocked*, then relocks to publish `Ready` and wake waiters; a getter
//! that finds `InFlight` waits on the condvar and re-inspects after
//! relocking; a hit copies the value out in a single locked section
//! (`Arc::clone` under the lock in the real code). LRU eviction — modeled
//! as an adversary task standing in for capacity pressure from other keys —
//! clears a `Ready` slot back to `Empty`, which may only force a
//! *recompute*, never a torn or stale response.
//!
//! The modeled configurations are the issue's two bounded races:
//!
//! - two threads racing a miss on the same key → exactly one solve (the
//!   single-flight invariant: computes never exceed `1 + evictions`) and
//!   both callers observe the bit-identical payload;
//! - LRU eviction racing a hit → never a torn entry: every observed
//!   payload is exactly the computed one, both words.
//!
//! Two seeded-defect switches keep the checker honest. `skip_claim`
//! removes the `InFlight` claim (the real bug class single-flight exists
//! for): both racers must be seen solving the same key. `torn_read` splits
//! the hit's copy-out into two locked sections (modeling a returned
//! reference outliving the lock): an eviction between them must produce a
//! payload whose halves disagree.

use crate::explore::{Footprint, System};
use crate::model::obj_id;

/// The payload both halves of which every response must carry. Word 1 is
/// derived from word 0 so a torn read (one word fresh, one stale/zero) is
/// detectable bit-exactly.
fn expected() -> [u64; 2] {
    let f = crate::fnv1a_64(b"cache.key0");
    [f, f.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15]
}

/// Bounded cache configuration: `getters` callers race on one key.
#[derive(Debug, Clone)]
pub struct CacheSpec {
    /// Concurrent callers of get-or-compute on the same key.
    pub getters: usize,
    /// Start with the slot already `Ready` (so the hit path races the
    /// evictor from step one).
    pub prepopulate: bool,
    /// Add an LRU-pressure adversary that evicts a `Ready` slot (budget 1).
    pub evict: bool,
    /// Seeded defect: a miss computes without claiming `InFlight` first.
    pub skip_claim: bool,
    /// Seeded defect: the hit copies the payload in two separately locked
    /// sections instead of one.
    pub torn_read: bool,
}

impl Default for CacheSpec {
    fn default() -> Self {
        Self {
            getters: 2,
            prepopulate: false,
            evict: false,
            skip_claim: false,
            torn_read: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    InFlight(usize),
    Ready([u64; 2]),
}

/// Getter program counter; each variant is one atomic step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// Wants the cache lock.
    Acquire,
    /// Holds the lock; inspects the slot and branches.
    Inspect,
    /// Released the lock, parked on the condvar until the slot leaves
    /// `InFlight`; the wake relocks and re-inspects.
    Wait,
    /// Solving, unlocked.
    Compute,
    /// Wants the lock back to publish.
    PubAcquire,
    /// Holds the lock; publishes `Ready` and notifies.
    Publish,
    /// Defect twin only: holds half the payload, wants the lock back for
    /// the other half.
    TornRelock,
    /// Defect twin only: holds the lock; reads the second word.
    TornRead,
    Done,
}

/// Task layout: `0..getters` callers; `getters` (optional) the evictor.
pub struct CacheSystem {
    spec: CacheSpec,
    lock_holder: Option<usize>,
    slot: Slot,
    pc: Vec<Pc>,
    /// Response each getter returned, for the bit-identity checks.
    observed: Vec<Option<[u64; 2]>>,
    /// First word stashed by a torn reader between its locked sections.
    torn_lo: Vec<u64>,
    computes: u64,
    evictions: u64,
    evict_budget: u64,
    /// Evictor holds the lock between its two steps.
    evictor_locked: bool,
    /// Lock misuse surfaced by `check` (a model bug, not a schedule).
    protocol_error: Option<String>,
}

impl CacheSystem {
    pub fn new(spec: CacheSpec) -> Self {
        Self {
            lock_holder: None,
            slot: if spec.prepopulate {
                Slot::Ready(expected())
            } else {
                Slot::Empty
            },
            pc: vec![Pc::Acquire; spec.getters],
            observed: vec![None; spec.getters],
            torn_lo: vec![0; spec.getters],
            computes: 0,
            evictions: 0,
            evict_budget: u64::from(spec.evict),
            evictor_locked: false,
            protocol_error: None,
            spec,
        }
    }

    fn lock(&mut self, task: usize) {
        if let Some(h) = self.lock_holder {
            self.protocol_error = Some(format!("task {task} locked a mutex held by task {h}"));
            return;
        }
        self.lock_holder = Some(task);
    }

    fn unlock(&mut self, task: usize) {
        if self.lock_holder != Some(task) {
            self.protocol_error = Some(format!(
                "task {task} unlocked a mutex it does not hold (holder: {:?})",
                self.lock_holder
            ));
            return;
        }
        self.lock_holder = None;
    }

    fn lock_free(&self) -> bool {
        self.lock_holder.is_none()
    }
}

impl System for CacheSystem {
    fn n_tasks(&self) -> usize {
        self.spec.getters + usize::from(self.spec.evict)
    }

    fn task_name(&self, task: usize) -> String {
        if task < self.spec.getters {
            format!("getter{task}")
        } else {
            "evictor".into()
        }
    }

    fn done(&self, task: usize) -> bool {
        if task < self.spec.getters {
            self.pc[task] == Pc::Done
        } else {
            self.evict_budget == 0 && !self.evictor_locked
        }
    }

    fn enabled(&self, task: usize) -> bool {
        if task < self.spec.getters {
            match self.pc[task] {
                Pc::Acquire | Pc::PubAcquire | Pc::TornRelock => self.lock_free(),
                // Condvar wake: runnable once notified (slot left
                // `InFlight`) and the relock can succeed.
                Pc::Wait => self.lock_free() && !matches!(self.slot, Slot::InFlight(_)),
                Pc::Inspect | Pc::Compute | Pc::Publish | Pc::TornRead => true,
                Pc::Done => false,
            }
        } else if self.evictor_locked {
            true
        } else {
            self.evict_budget > 0 && self.lock_free()
        }
    }

    fn peek(&self, _task: usize) -> Footprint {
        // Every step of every task synchronizes on the one cache mutex, so
        // all steps are mutually dependent; the coarse footprint is exact
        // here, not just a sound over-approximation.
        Footprint::new()
            .read(obj_id("cache.lock"))
            .write(obj_id("cache.lock"))
            .read(obj_id("cache.slot"))
            .write(obj_id("cache.slot"))
    }

    fn step(&mut self, task: usize) {
        if task >= self.spec.getters {
            if self.evictor_locked {
                // Capacity pressure: only a `Ready` entry is an LRU victim.
                if matches!(self.slot, Slot::Ready(_)) {
                    self.slot = Slot::Empty;
                    self.evictions += 1;
                }
                self.unlock(task);
                self.evictor_locked = false;
                self.evict_budget = 0;
            } else {
                self.lock(task);
                self.evictor_locked = true;
            }
            return;
        }
        match self.pc[task] {
            Pc::Acquire | Pc::Wait => {
                self.lock(task);
                self.pc[task] = Pc::Inspect;
            }
            Pc::Inspect => match self.slot {
                Slot::Ready(p) => {
                    if self.spec.torn_read {
                        // Seeded defect: the copy-out spans two locked
                        // sections, as if a borrowed reference outlived
                        // the first one.
                        self.torn_lo[task] = p[0];
                        self.unlock(task);
                        self.pc[task] = Pc::TornRelock;
                    } else {
                        self.observed[task] = Some(p);
                        self.unlock(task);
                        self.pc[task] = Pc::Done;
                    }
                }
                Slot::InFlight(_) => {
                    self.unlock(task);
                    self.pc[task] = Pc::Wait;
                }
                Slot::Empty => {
                    if !self.spec.skip_claim {
                        self.slot = Slot::InFlight(task);
                    }
                    self.unlock(task);
                    self.pc[task] = Pc::Compute;
                }
            },
            Pc::Compute => {
                self.computes += 1;
                self.pc[task] = Pc::PubAcquire;
            }
            Pc::PubAcquire => {
                self.lock(task);
                self.pc[task] = Pc::Publish;
            }
            Pc::Publish => {
                self.slot = Slot::Ready(expected());
                self.observed[task] = Some(expected());
                self.unlock(task);
                self.pc[task] = Pc::Done;
            }
            Pc::TornRelock => {
                self.lock(task);
                self.pc[task] = Pc::TornRead;
            }
            Pc::TornRead => {
                let hi = match self.slot {
                    Slot::Ready(p) => p[1],
                    // The entry is gone (or mid-flight): the stale borrow
                    // reads whatever is there now.
                    Slot::Empty | Slot::InFlight(_) => 0,
                };
                self.observed[task] = Some([self.torn_lo[task], hi]);
                self.unlock(task);
                self.pc[task] = Pc::Done;
            }
            Pc::Done => {}
        }
    }

    fn check(&self) -> Result<(), String> {
        if let Some(err) = &self.protocol_error {
            return Err(err.clone());
        }
        // Single-flight modulo eviction: each eviction licenses at most one
        // recompute; racing misses must coalesce onto one solve.
        if self.computes > 1 + self.evictions {
            return Err(format!(
                "{} computes for one key with {} evictions (single-flight violated)",
                self.computes, self.evictions
            ));
        }
        for (t, obs) in self.observed.iter().enumerate() {
            if let Some(p) = obs {
                if *p != expected() {
                    return Err(format!(
                        "getter{t} returned a torn payload {p:016x?} (want {:016x?})",
                        expected()
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        self.check()?;
        for (t, obs) in self.observed.iter().enumerate() {
            if obs.is_none() {
                return Err(format!("getter{t} finished without a response"));
            }
        }
        if !self.spec.evict && self.computes != 1 && !self.spec.prepopulate {
            return Err(format!(
                "{} computes for one cold key (want exactly 1)",
                self.computes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer};

    #[test]
    fn racing_misses_coalesce_onto_one_solve() {
        let run = Explorer::default().explore("cache", || CacheSystem::new(CacheSpec::default()));
        assert!(
            run.verified(),
            "exhaustive pass expected, got {:?}",
            run.violation
        );
        assert!(run.schedules > 1, "space should be non-trivial");
    }

    #[test]
    fn eviction_racing_a_hit_never_tears() {
        let run = Explorer::default().explore("cache-evict", || {
            CacheSystem::new(CacheSpec {
                prepopulate: true,
                evict: true,
                ..CacheSpec::default()
            })
        });
        assert!(
            run.verified(),
            "exhaustive pass expected, got {:?}",
            run.violation
        );
    }

    #[test]
    fn missing_claim_is_caught_and_replayable() {
        let spec = CacheSpec {
            skip_claim: true,
            ..CacheSpec::default()
        };
        let run = Explorer::default().explore("cache-defect", || CacheSystem::new(spec.clone()));
        let v = run.violation.expect("skip_claim must double-solve");
        assert!(v.message.contains("single-flight"), "{}", v.message);
        let mut sys = CacheSystem::new(spec);
        let replayed = replay(&mut sys, &v.schedule).expect_err("replay must reproduce");
        assert_eq!(replayed.message, v.message);
    }

    #[test]
    fn torn_copy_out_is_caught_and_replayable() {
        let spec = CacheSpec {
            prepopulate: true,
            evict: true,
            torn_read: true,
            ..CacheSpec::default()
        };
        let run =
            Explorer::default().explore("cache-torn-defect", || CacheSystem::new(spec.clone()));
        let v = run
            .violation
            .expect("split copy-out must tear under eviction");
        assert!(v.message.contains("torn"), "{}", v.message);
        let mut sys = CacheSystem::new(spec);
        let replayed = replay(&mut sys, &v.schedule).expect_err("replay must reproduce");
        assert_eq!(replayed.message, v.message);
    }

    #[test]
    fn correct_hit_path_survives_the_evictor_without_recompute_waste() {
        // With claim and single-section copy-out, computes never exceed
        // 1 + evictions on any explored schedule (asserted by `check`), and
        // the clean run completes.
        let run = Explorer::default().explore("cache-clean", || {
            CacheSystem::new(CacheSpec {
                prepopulate: true,
                evict: false,
                ..CacheSpec::default()
            })
        });
        assert!(run.verified());
    }
}
