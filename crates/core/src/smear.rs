//! Smearing: APE link smearing and Gaussian (Wuppertal) quark-source
//! smearing.
//!
//! Production nucleon calculations (including the paper's) use smeared
//! sources to improve ground-state overlap — the same excited-state
//! contamination the Fig. 1 fit removes is first suppressed at the source.
//! APE-smeared links feed the source smearing so it remains gauge covariant.

use crate::field::{FermionField, GaugeField, GaugeLinks};
use crate::lattice::{Lattice, ND};
use crate::spinor::Spinor;
use crate::su3::Su3;
use rayon::prelude::*;

/// Sites per parallel chunk of a smearing sweep (length-derived chunking
/// keeps the output identical at any thread count).
const SITE_GRAIN: usize = 256;

/// One APE smearing sweep over the *spatial* links:
/// `U'_i(x) = Proj_SU(3)[ (1−α) U_i(x) + α/4 Σ_staples ]`, temporal links
/// untouched (the standard choice for spectroscopy). All three spatial
/// directions of a site are produced in one chunked pass writing straight
/// into the output links (no per-direction gather/scatter vectors).
pub fn ape_smear_spatial(lat: &Lattice, gauge: &GaugeField<f64>, alpha: f64) -> GaugeField<f64> {
    let mut out = gauge.clone();
    rayon::for_each_chunk_mut(out.links_mut(), SITE_GRAIN * ND, |base, chunk| {
        for (k, site_links) in chunk.chunks_exact_mut(ND).enumerate() {
            let x = base / ND + k;
            let nb = lat.neighbors(x);
            for (mu, new_link) in site_links.iter_mut().enumerate().take(3) {
                let mut staple = Su3::zero();
                for nu in 0..3 {
                    if nu == mu {
                        continue;
                    }
                    let x_mu = nb.fwd[mu] as usize;
                    let x_nu = nb.fwd[nu] as usize;
                    staple +=
                        gauge.link(x, nu) * gauge.link(x_nu, mu) * gauge.link(x_mu, nu).dagger();
                    let x_dn = nb.bwd[nu] as usize;
                    let x_mu_dn = lat.neighbors(x_mu).bwd[nu] as usize;
                    staple += gauge.link(x_dn, nu).dagger()
                        * gauge.link(x_dn, mu)
                        * gauge.link(x_mu_dn, nu);
                }
                let blended = gauge.link(x, mu).scale(1.0 - alpha) + staple.scale(alpha / 4.0);
                *new_link = blended.reunitarize();
            }
        }
    });
    out
}

/// One step of gauge-covariant Gaussian (Wuppertal) smearing:
/// `ψ' = (1 − 6κ) ψ + κ Σ_i [U_i(x) ψ(x+î) + U_i†(x−î) ψ(x−î)]`.
pub fn gaussian_smear_step(
    lat: &Lattice,
    gauge: &GaugeField<f64>,
    src: &FermionField<f64>,
    kappa: f64,
) -> FermionField<f64> {
    assert_eq!(src.len(), lat.volume());
    let data: Vec<Spinor<f64>> = (0..lat.volume())
        .into_par_iter()
        .map(|x| {
            let nb = lat.neighbors(x);
            let mut acc = src.data[x].scale(1.0 - 6.0 * kappa);
            for mu in 0..3 {
                let up = nb.fwd[mu] as usize;
                let dn = nb.bwd[mu] as usize;
                let u = gauge.link(x, mu);
                let udag = gauge.link(dn, mu);
                for s in 0..4 {
                    acc.s[s] += u.mul_vec(&src.data[up].s[s]).scale(kappa);
                    acc.s[s] += udag.dagger_mul_vec(&src.data[dn].s[s]).scale(kappa);
                }
            }
            acc
        })
        .collect();
    FermionField { data }
}

/// `n` iterations of Gaussian smearing.
pub fn gaussian_smear(
    lat: &Lattice,
    gauge: &GaugeField<f64>,
    src: &FermionField<f64>,
    kappa: f64,
    n: usize,
) -> FermionField<f64> {
    let mut cur = src.clone();
    for _ in 0..n {
        cur = gaussian_smear_step(lat, gauge, &cur, kappa);
    }
    cur
}

/// One sweep of stout smearing over all links:
/// `U' = exp(ρ · P_TA(C U†)) U` with `C` the plain staple sum — the exactly
/// group-preserving, differentiable smearing used by modern gauge-generation
/// chains (Morningstar–Peardon).
pub fn stout_smear(lat: &Lattice, gauge: &GaugeField<f64>, rho: f64) -> GaugeField<f64> {
    use crate::su3exp::{exp_su3, project_antihermitian_traceless};
    let mut out = gauge.clone();
    rayon::for_each_chunk_mut(out.links_mut(), SITE_GRAIN * ND, |base, chunk| {
        for (k, site_links) in chunk.chunks_exact_mut(ND).enumerate() {
            let x = base / ND + k;
            let nb = lat.neighbors(x);
            for (mu, new_link) in site_links.iter_mut().enumerate() {
                let mut c = Su3::zero();
                for nu in 0..4 {
                    if nu == mu {
                        continue;
                    }
                    let x_mu = nb.fwd[mu] as usize;
                    let x_nu = nb.fwd[nu] as usize;
                    c += gauge.link(x, nu) * gauge.link(x_nu, mu) * gauge.link(x_mu, nu).dagger();
                    let x_dn = nb.bwd[nu] as usize;
                    let x_mu_dn = lat.neighbors(x_mu).bwd[nu] as usize;
                    c += gauge.link(x_dn, nu).dagger()
                        * gauge.link(x_dn, mu)
                        * gauge.link(x_mu_dn, nu);
                }
                let omega = c.scale(rho) * gauge.link(x, mu).dagger();
                let q = project_antihermitian_traceless(&omega);
                *new_link = exp_su3(&q) * gauge.link(x, mu);
            }
        }
    });
    out
}

/// RMS spatial radius of a source centered at `center` (wrap-aware), used to
/// verify that smearing spreads the wavefunction.
pub fn source_radius(lat: &Lattice, src: &FermionField<f64>, center: usize) -> f64 {
    let dims = lat.dims();
    let c = lat.coords(center);
    let mut w_sum = 0.0;
    let mut r2_sum = 0.0;
    for x in 0..lat.volume() {
        let w = src.data[x].norm_sqr();
        if w == 0.0 {
            continue;
        }
        let xc = lat.coords(x);
        let mut r2 = 0.0;
        for mu in 0..3 {
            let d = (xc[mu] as i64 - c[mu] as i64).unsigned_abs() as usize;
            let d = d.min(dims[mu] - d);
            r2 += (d * d) as f64;
        }
        w_sum += w;
        r2_sum += w * r2;
    }
    (r2_sum / w_sum).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauge::average_plaquette;
    use crate::prop::point_source;

    #[test]
    fn ape_smearing_raises_the_plaquette() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let mut ens = crate::gauge::QuenchedEnsemble::cold_start(
            &lat,
            crate::gauge::HeatbathParams { beta: 5.7, n_or: 1 },
            3,
        );
        for _ in 0..8 {
            ens.update();
        }
        let rough = ens.current().clone();
        let smooth = ape_smear_spatial(&lat, &rough, 0.5);
        assert!(smooth.max_unitarity_error() < 1e-10, "stays on SU(3)");
        assert!(
            average_plaquette(&lat, &smooth) > average_plaquette(&lat, &rough),
            "smearing smooths UV fluctuations"
        );
    }

    #[test]
    fn ape_preserves_temporal_links() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 5);
        let smeared = ape_smear_spatial(&lat, &gauge, 0.5);
        for x in 0..lat.volume() {
            assert_eq!(smeared.link(x, 3), gauge.link(x, 3));
        }
    }

    #[test]
    fn stout_smearing_is_exactly_on_the_group_and_smooths() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let mut ens = crate::gauge::QuenchedEnsemble::cold_start(
            &lat,
            crate::gauge::HeatbathParams { beta: 5.7, n_or: 1 },
            13,
        );
        for _ in 0..8 {
            ens.update();
        }
        let rough = ens.current().clone();
        let smooth = stout_smear(&lat, &rough, 0.1);
        // exp of an algebra element: unitarity is exact, not projected.
        assert!(smooth.max_unitarity_error() < 1e-12);
        assert!(
            average_plaquette(&lat, &smooth) > average_plaquette(&lat, &rough),
            "stout smooths the field"
        );
    }

    #[test]
    fn stout_at_zero_rho_is_identity() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge = GaugeField::<f64>::hot(&lat, 15);
        let same = stout_smear(&lat, &gauge, 0.0);
        for (a, b) in gauge.links().iter().zip(same.links()) {
            assert!(a.distance(b) < 1e-13);
        }
    }

    #[test]
    fn gaussian_smearing_spreads_a_point_source() {
        let lat = Lattice::new([8, 8, 8, 4]);
        let gauge = GaugeField::<f64>::cold(&lat);
        let src = point_source(&lat, 0, 0, 0);
        assert_eq!(source_radius(&lat, &src, 0), 0.0);
        let s1 = gaussian_smear(&lat, &gauge, &src, 0.1, 5);
        let s2 = gaussian_smear(&lat, &gauge, &src, 0.1, 20);
        let r1 = source_radius(&lat, &s1, 0);
        let r2 = source_radius(&lat, &s2, 0);
        assert!(r1 > 0.3, "5 steps spread the source: r = {r1}");
        assert!(r2 > r1, "more steps, wider source: {r2} > {r1}");
    }

    #[test]
    fn smearing_preserves_total_norm_approximately_on_unit_gauge() {
        // On a cold gauge the smearing kernel is a doubly stochastic-like
        // diffusion: the source's integrated weight is conserved exactly
        // (sum of coefficients = 1), so the norm shrinks but stays finite.
        let lat = Lattice::new([8, 8, 8, 4]);
        let gauge = GaugeField::<f64>::cold(&lat);
        let src = point_source(&lat, 0, 1, 1);
        let sm = gaussian_smear(&lat, &gauge, &src, 0.08, 10);
        let total: f64 = sm
            .data
            .iter()
            .map(|s| {
                let mut acc = crate::complex::C64::zero();
                acc += s.s[1].c[1].to_c64();
                acc.re
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-10, "integrated amplitude {total}");
    }

    #[test]
    fn smeared_source_improves_ground_state_overlap() {
        // Pion effective mass from a smeared source should plateau faster
        // (smaller m_eff(1) - m_eff(2) gap) than from a point source.
        use crate::contract::pion_correlator;
        use crate::prop::{Propagator, PropagatorSolver, SolverKind};

        let lat = Lattice::new([4, 4, 4, 8]);
        let mut ens = crate::gauge::QuenchedEnsemble::cold_start(
            &lat,
            crate::gauge::HeatbathParams { beta: 6.0, n_or: 1 },
            7,
        );
        for _ in 0..6 {
            ens.update();
        }
        let gauge = ens.current().clone();
        let smeared_gauge = ape_smear_spatial(&lat, &gauge, 0.5);
        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonBicgstab { mass: 0.5 });

        // Point-source propagator.
        let (point_prop, _) = solver.point_propagator(0);

        // Smeared-source propagator: smear each of the 12 columns' sources.
        let mut columns = Vec::with_capacity(12);
        for spin in 0..4 {
            for color in 0..3 {
                let src = point_source(&lat, 0, spin, color);
                let smeared = gaussian_smear(&lat, &smeared_gauge, &src, 0.1, 6);
                let (q, s) = solver.solve(&smeared);
                assert!(s.converged);
                columns.push(q);
            }
        }
        let smeared_prop = Propagator {
            columns,
            source_site: 0,
            source_time: 0,
        };

        let cp = pion_correlator(&lat, &point_prop);
        let cs = pion_correlator(&lat, &smeared_prop);
        let meff = |c: &[f64], t: usize| (c[t] / c[t + 1]).ln();
        let gap_point = (meff(&cp, 1) - meff(&cp, 2)).abs();
        let gap_smear = (meff(&cs, 1) - meff(&cs, 2)).abs();
        assert!(
            gap_smear < gap_point,
            "smeared source should plateau faster: {gap_smear} vs {gap_point}"
        );
    }
}
