//! `repro bench` — threaded micro-benchmarks of the hot kernels.
//!
//! Runs the dslash / BLAS / contraction kernels at pool width 1 and at a
//! "high" width (max of 4 and the machine's available parallelism), then
//! emits a machine-readable `BENCH_kernels.json` and a human-readable
//! `bench.md` table with GiB/s, Gflop/s, and the N-thread speedup.
//!
//! The vendored criterion shim only prints to stdout, so this harness keeps
//! its own best-of-N wall-clock timer: one warmup call, then `reps` timed
//! calls, reporting the minimum (least-noise) iteration.
//!
//! Byte counts are per-application traffic estimates (spinors and links
//! actually touched, assuming no cache reuse); flop counts come from each
//! operator's own [`LinearOp::flops_per_apply`] accounting or from the
//! standard per-site BLAS/contraction formulas. Both are documented next to
//! each kernel below so the derived GiB/s and Gflop/s are auditable.
//!
//! Before timing, the dslash operators are run through
//! [`tune_dslash_variant`], so each dslash row reports the execution
//! variant (`aos` / `aos_fused` / `soa`) the layout-aware autotuner picked
//! on this machine. Each row also carries its arithmetic intensity
//! (flops/byte, from the same traffic model) and its width-1 bandwidth as a
//! percentage of a STREAM-like triad bound measured by the harness itself,
//! so compute-bound and bandwidth-bound kernels are distinguishable at a
//! glance.

use crate::output::{print_table, ExperimentOutput};
use autotune::Tuner;
use lqcd_core::prelude::*;
use obs::Json;
use std::time::Instant;

/// Bench JSON schema version. Bump whenever `BENCH_kernels.json` gains,
/// loses, or renames a field, and regenerate the committed file (checked by
/// `repro bench --check-schema`). v2: per-kernel `variant`,
/// `arith_intensity`, `pct_stream_w1`; config `stream_gib_s_w1`.
pub const BENCH_SCHEMA_VERSION: f64 = 2.0;

/// Options for the bench subcommand.
#[derive(Default)]
pub struct BenchOpts {
    /// Fewer repetitions — for CI smoke runs.
    pub quick: bool,
}

/// Bytes of one `Spinor<R>`: 4 spin × 3 color × 2 reals.
fn spinor_bytes(real_bytes: f64) -> f64 {
    4.0 * 3.0 * 2.0 * real_bytes
}

/// Bytes of one `Su3<R>` link: 3×3 complex.
fn link_bytes(real_bytes: f64) -> f64 {
    3.0 * 3.0 * 2.0 * real_bytes
}

/// One benchmark kernel: a closure plus its per-iteration traffic/flops.
struct Kernel<'a> {
    name: &'static str,
    /// Autotuned execution variant for dslash rows, `"-"` for fixed-path
    /// kernels (BLAS, contractions).
    variant: String,
    bytes_per_iter: f64,
    flops_per_iter: f64,
    reps: usize,
    run: Box<dyn FnMut() + Send + 'a>,
}

/// Best-of-`reps` wall-clock seconds for one call of `run` (after a warmup).
fn time_best(reps: usize, run: &mut (dyn FnMut() + Send)) -> f64 {
    run();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Timing of one kernel at each width, in the order of `widths`.
struct Timed {
    name: &'static str,
    variant: String,
    bytes_per_iter: f64,
    flops_per_iter: f64,
    seconds: Vec<f64>,
}

impl Timed {
    /// Arithmetic intensity (flops per byte of modeled traffic).
    fn arith_intensity(&self) -> f64 {
        if self.bytes_per_iter > 0.0 {
            self.flops_per_iter / self.bytes_per_iter
        } else {
            0.0
        }
    }
}

fn run_kernels(widths: &[usize], kernels: &mut [Kernel<'_>]) -> Vec<Timed> {
    let mut results: Vec<Timed> = kernels
        .iter()
        .map(|k| Timed {
            name: k.name,
            variant: k.variant.clone(),
            bytes_per_iter: k.bytes_per_iter,
            flops_per_iter: k.flops_per_iter,
            seconds: Vec::new(),
        })
        .collect();
    for &w in widths {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(w)
            .build()
            .expect("bench pool handle");
        let slot: Vec<f64> = pool.install(|| {
            kernels
                .iter_mut()
                .map(|k| {
                    let s = time_best(k.reps, &mut *k.run);
                    println!("  [{w} thread(s)] {:<24} {:>10.3} ms", k.name, s * 1e3);
                    s
                })
                .collect()
        });
        for (r, s) in results.iter_mut().zip(slot) {
            r.seconds.push(s);
        }
    }
    results
}

/// Run the benchmark suite and write `BENCH_kernels.json` + `bench.md`.
pub fn run_bench(out: &ExperimentOutput, opts: &BenchOpts) -> std::io::Result<()> {
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let hi = avail.max(4);
    let widths = [1usize, hi];
    let (reps, reps_heavy) = if opts.quick { (2, 1) } else { (20, 5) };

    println!("repro bench: widths {widths:?}, available_parallelism {avail}");

    // --- kernel setup (fixed seeds; sizes match benches/dslash.rs) ---
    let lat = Lattice::new([8, 8, 8, 16]);
    let vol = lat.volume() as f64;
    let gauge64 = GaugeField::<f64>::hot(&lat, 3);
    let gauge32 = gauge64.cast::<f32>();
    let mut d64 = WilsonDirac::new(&lat, &gauge64, 0.1, true);
    let mut d32 = WilsonDirac::new(&lat, &gauge32, 0.1, true);
    let src64 = FermionField::<f64>::gaussian(lat.volume(), 1).data;
    let src32 = FermionField::<f32>::gaussian(lat.volume(), 1).data;
    let mut out64 = vec![Spinor::<f64>::zero(); lat.volume()];
    let mut out32 = vec![Spinor::<f32>::zero(); lat.volume()];

    let lat5 = Lattice::new([8, 8, 8, 8]);
    let gauge5 = GaugeField::<f64>::hot(&lat5, 5);
    let mut prec = PrecMobius::new(&lat5, &gauge5, MobiusParams::standard(8, 0.1));
    let src5 = FermionField::<f64>::gaussian(prec.vec_len(), 2).data;
    let mut out5 = vec![Spinor::<f64>::zero(); prec.vec_len()];

    // Autotune each dslash operator's (variant, grain) at width 1 — the
    // timed rows below then exercise exactly what the tuner selected, and
    // the winner's name is attached to the row. Every variant is
    // bit-identical, so tuning only affects speed.
    let tuner = Tuner::new();
    let tune_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("bench tune pool");
    let (vw64, vw32, vprec) = tune_pool.install(|| {
        (
            tune_dslash_variant(&tuner, &mut d64).0,
            tune_dslash_variant(&tuner, &mut d32).0,
            tune_dslash_variant(&tuner, &mut prec).0,
        )
    });
    println!(
        "autotuned variants: wilson_f64={} wilson_f32={} mobius_prec_f64={}",
        vw64.name(),
        vw32.name(),
        vprec.name()
    );
    let (d64, d32, prec) = (&d64, &d32, &prec);

    // STREAM-like triad bound at width 1, used for the %STREAM column.
    let stream_gib_s = measure_stream_w1(reps);
    println!("stream triad (width 1): {stream_gib_s:.2} GiB/s");

    const BLAS_LEN: usize = 32_768;
    let bx = FermionField::<f64>::gaussian(BLAS_LEN, 11).data;
    let mut by = FermionField::<f64>::gaussian(BLAS_LEN, 12).data;

    let prop = Propagator {
        columns: (0..12)
            .map(|i| FermionField::<f64>::gaussian(lat.volume(), 200 + i))
            .collect(),
        source_site: 0,
        source_time: 0,
    };
    let projector = lqcd_core::gamma::polarized_projector();

    // Wilson dslash traffic per site: 8 neighbor spinors read + 1 written,
    // 8 links read.
    let wilson_bytes = |rb: f64| vol * (9.0 * spinor_bytes(rb) + 8.0 * link_bytes(rb));
    // Preconditioned Möbius traffic per 5D site: 8 neighbor + 2 Ls-coupled
    // spinors read + 1 written; 8 links read per underlying 4D half-site.
    let mobius_bytes = {
        let sites5 = prec.vec_len() as f64;
        let half4 = lat5.volume() as f64 / 2.0;
        sites5 * 11.0 * spinor_bytes(8.0) + half4 * 8.0 * link_bytes(8.0)
    };
    // BLAS per site (24 reals): axpy = 2 flops/real, read x+y write y;
    // dot = 8 flops/complex over 12 complex, read x+y;
    // norm2 = 4 flops/complex, read x.
    let n = BLAS_LEN as f64;
    let sb = spinor_bytes(8.0);
    // Pion: 12 columns × 24 reals × (1 mul + 1 add); reads 12 column spinors
    // per site. Proton: traffic-bound epsilon contraction, reads three
    // 12-spinor site matrices per site; flop count not modeled (reported 0).
    let d64_flops = d64.flops_per_apply();
    let d32_flops = d32.flops_per_apply();
    let prec_flops = prec.flops_per_apply();

    let mut kernels = vec![
        Kernel {
            name: "dslash_wilson_f64",
            variant: vw64.name().to_string(),
            bytes_per_iter: wilson_bytes(8.0),
            flops_per_iter: d64_flops,
            reps,
            run: Box::new(|| d64.apply(&mut out64, &src64)),
        },
        Kernel {
            name: "dslash_wilson_f32",
            variant: vw32.name().to_string(),
            bytes_per_iter: wilson_bytes(4.0),
            flops_per_iter: d32_flops,
            reps,
            run: Box::new(|| d32.apply(&mut out32, &src32)),
        },
        Kernel {
            name: "dslash_mobius_prec_f64",
            variant: vprec.name().to_string(),
            bytes_per_iter: mobius_bytes,
            flops_per_iter: prec_flops,
            reps,
            run: Box::new(|| prec.apply(&mut out5, &src5)),
        },
        Kernel {
            name: "blas_axpy_32768",
            variant: "-".to_string(),
            bytes_per_iter: n * 3.0 * sb,
            flops_per_iter: n * 48.0,
            reps,
            run: Box::new(|| blas::axpy(1.0000001, &bx, &mut by)),
        },
        Kernel {
            name: "blas_dot_32768",
            variant: "-".to_string(),
            bytes_per_iter: n * 2.0 * sb,
            flops_per_iter: n * 96.0,
            reps,
            run: Box::new(|| {
                std::hint::black_box(blas::dot(&bx, std::hint::black_box(&bx)));
            }),
        },
        Kernel {
            name: "blas_norm2_32768",
            variant: "-".to_string(),
            bytes_per_iter: n * sb,
            flops_per_iter: n * 48.0,
            reps,
            run: Box::new(|| {
                std::hint::black_box(blas::norm_sqr(std::hint::black_box(&bx)));
            }),
        },
        Kernel {
            name: "contract_pion",
            variant: "-".to_string(),
            bytes_per_iter: vol * 12.0 * sb,
            flops_per_iter: vol * 12.0 * 48.0,
            reps,
            run: Box::new(|| {
                std::hint::black_box(pion_correlator(&lat, std::hint::black_box(&prop)));
            }),
        },
        Kernel {
            name: "contract_proton",
            variant: "-".to_string(),
            bytes_per_iter: vol * 3.0 * 12.0 * sb,
            flops_per_iter: 0.0,
            reps: reps_heavy,
            run: Box::new(|| {
                std::hint::black_box(proton_correlator(
                    &lat,
                    std::hint::black_box(&prop),
                    &prop,
                    &projector,
                ));
            }),
        },
    ];

    let timed = run_kernels(&widths, &mut kernels);

    // --- emit JSON ---
    let kernel_json: Vec<Json> = timed
        .iter()
        .map(|t| {
            let t1 = t.seconds[0];
            let tn = t.seconds[1];
            let gib1 = gib_per_s(t.bytes_per_iter, t1);
            Json::obj(vec![
                ("name", Json::Str(t.name.to_string())),
                ("variant", Json::Str(t.variant.clone())),
                ("bytes_per_iter", Json::Num(t.bytes_per_iter)),
                ("flops_per_iter", Json::Num(t.flops_per_iter)),
                ("arith_intensity", Json::Num(t.arith_intensity())),
                ("seconds_w1", Json::Num(t1)),
                ("seconds_wN", Json::Num(tn)),
                ("gib_per_s_w1", Json::Num(gib1)),
                ("gib_per_s_wN", Json::Num(gib_per_s(t.bytes_per_iter, tn))),
                (
                    "pct_stream_w1",
                    Json::Num(100.0 * gib1 / stream_gib_s.max(1e-12)),
                ),
                (
                    "gflop_per_s_w1",
                    Json::Num(gflop_per_s(t.flops_per_iter, t1)),
                ),
                (
                    "gflop_per_s_wN",
                    Json::Num(gflop_per_s(t.flops_per_iter, tn)),
                ),
                ("speedup", Json::Num(t1 / tn)),
            ])
        })
        .collect();
    let json = Json::obj(vec![
        ("experiment", Json::Str("bench".to_string())),
        ("schema_version", Json::Num(BENCH_SCHEMA_VERSION)),
        (
            "config",
            Json::obj(vec![
                ("width_low", Json::Num(1.0)),
                ("width_high", Json::Num(hi as f64)),
                ("available_parallelism", Json::Num(avail as f64)),
                ("stream_gib_s_w1", Json::Num(stream_gib_s)),
                ("quick", Json::Bool(opts.quick)),
            ]),
        ),
        ("kernels", Json::Arr(kernel_json)),
    ]);
    let json_path = out.path("BENCH_kernels.json");
    std::fs::write(&json_path, json.to_string_pretty() + "\n")?;

    // --- emit markdown + console table ---
    let mut md = String::new();
    md.push_str("# Kernel benchmarks (`repro bench`)\n\n");
    md.push_str(&format!(
        "Pool widths: 1 and {hi} (available_parallelism on the generating \
         machine: {avail}). Best-of-N wall-clock per kernel application; \
         bytes/flops models are documented in \
         `crates/bench/src/experiments/kernels.rs`.\n\n"
    ));
    if avail < hi {
        md.push_str(&format!(
            "> **Note:** the generating machine exposes only {avail} CPU(s), \
             so the {hi}-thread column oversubscribes a single core and the \
             speedup column reflects scheduling overhead, not scaling. On a \
             machine with ≥{hi} cores the same harness measures real \
             multi-core speedup.\n\n"
        ));
    }
    md.push_str(&format!(
        "Measured STREAM-like triad bound at width 1: {stream_gib_s:.2} \
         GiB/s. `AI` is arithmetic intensity (flops per modeled byte); \
         `%STREAM @1` is the kernel's width-1 bandwidth relative to that \
         bound; kernels whose working set fits in cache can exceed 100%. \
         `variant` is the execution path the layout-aware autotuner \
         selected for each dslash row (`-` for fixed-path kernels).\n\n"
    ));
    md.push_str(
        "| kernel | variant | AI (F/B) | GiB/s @1 | %STREAM @1 | GiB/s @N \
         | Gflop/s @1 | Gflop/s @N | speedup |\n",
    );
    md.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|\n");
    let mut rows = Vec::new();
    for t in &timed {
        let (t1, tn) = (t.seconds[0], t.seconds[1]);
        let gib1 = gib_per_s(t.bytes_per_iter, t1);
        let cells = [
            t.variant.clone(),
            format!("{:.3}", t.arith_intensity()),
            format!("{gib1:.2}"),
            format!("{:.1}%", 100.0 * gib1 / stream_gib_s.max(1e-12)),
            format!("{:.2}", gib_per_s(t.bytes_per_iter, tn)),
            format!("{:.2}", gflop_per_s(t.flops_per_iter, t1)),
            format!("{:.2}", gflop_per_s(t.flops_per_iter, tn)),
            format!("{:.2}x", t1 / tn),
        ];
        md.push_str(&format!("| {} | {} |\n", t.name, cells.join(" | ")));
        let mut row = vec![t.name.to_string()];
        row.extend(cells);
        rows.push(row);
    }
    std::fs::write(out.path("bench.md"), md)?;
    print_table(
        "kernel benchmarks",
        &[
            "kernel",
            "variant",
            "AI (F/B)",
            "GiB/s @1",
            "%STREAM @1",
            "GiB/s @N",
            "Gflop/s @1",
            "Gflop/s @N",
            "speedup",
        ],
        &rows,
    );
    println!("wrote {} and bench.md", json_path.display());
    Ok(())
}

/// Measure a STREAM-like bandwidth bound at width 1: best-of-`reps` `axpy`
/// (2 reads + 1 write per element, like STREAM triad) over a working set
/// several times larger than typical last-level caches, so the figure
/// reflects memory bandwidth rather than cache throughput.
fn measure_stream_w1(reps: usize) -> f64 {
    // 131072 spinors × 192 B ≈ 24 MiB per array, ~72 MiB of traffic/iter.
    const STREAM_LEN: usize = 1 << 17;
    let x = FermionField::<f64>::gaussian(STREAM_LEN, 31).data;
    let mut y = FermionField::<f64>::gaussian(STREAM_LEN, 32).data;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("stream pool");
    let secs = pool.install(|| time_best(reps, &mut || blas::axpy(1.0000001, &x, &mut y)));
    gib_per_s(STREAM_LEN as f64 * 3.0 * spinor_bytes(8.0), secs)
}

fn gib_per_s(bytes: f64, secs: f64) -> f64 {
    bytes / secs / (1024.0 * 1024.0 * 1024.0)
}

fn gflop_per_s(flops: f64, secs: f64) -> f64 {
    flops / secs / 1e9
}

/// Flatten a JSON value into sorted `path` strings describing its shape
/// (object keys and array element shape, ignoring scalar values).
pub fn schema_paths(j: &Json, path: &str, acc: &mut Vec<String>) {
    match j {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                schema_paths(v, &format!("{path}/{k}"), acc);
            }
            if pairs.is_empty() {
                acc.push(format!("{path}:{{}}"));
            }
        }
        Json::Arr(items) => {
            acc.push(format!("{path}:[]"));
            if let Some(first) = items.first() {
                schema_paths(first, &format!("{path}[]"), acc);
            }
        }
        _ => acc.push(path.to_string()),
    }
}

/// Compare the structural schema of a committed `BENCH_kernels.json` against
/// a reference produced by this build. Returns the mismatching paths
/// (empty = schemas agree).
pub fn schema_diff(committed: &Json, fresh: &Json) -> Vec<String> {
    let mut a = Vec::new();
    let mut b = Vec::new();
    schema_paths(committed, "", &mut a);
    schema_paths(fresh, "", &mut b);
    a.sort();
    a.dedup();
    b.sort();
    b.dedup();
    let mut diff = Vec::new();
    for p in &a {
        if !b.contains(p) {
            diff.push(format!("only in committed file: {p}"));
        }
    }
    for p in &b {
        if !a.contains(p) {
            diff.push(format!("missing from committed file: {p}"));
        }
    }
    diff
}

/// `--check-schema FILE`: verify that a committed benchmark JSON still has
/// the schema this build produces. Exits non-zero on mismatch.
pub fn check_schema(out: &ExperimentOutput, file: &str) {
    let committed = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("repro bench --check-schema: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let committed = Json::parse(&committed).expect("parse committed benchmark JSON");
    let fresh_path = out.path("BENCH_kernels.json");
    let fresh = std::fs::read_to_string(&fresh_path).unwrap_or_else(|e| {
        eprintln!(
            "repro bench --check-schema: cannot read {}: {e} (run `repro bench` first)",
            fresh_path.display()
        );
        std::process::exit(1);
    });
    let fresh = Json::parse(&fresh).expect("parse fresh benchmark JSON");
    let diff = schema_diff(&committed, &fresh);
    if diff.is_empty() {
        println!("schema check OK: {file} matches the current bench schema");
    } else {
        eprintln!("schema mismatch between {file} and this build:");
        for d in &diff {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_diff_accepts_identical_shapes_with_different_values() {
        let a = Json::parse(r#"{"kernels":[{"name":"a","speedup":1.0}],"n":1}"#).unwrap();
        let b = Json::parse(r#"{"kernels":[{"name":"b","speedup":3.9}],"n":7}"#).unwrap();
        assert!(schema_diff(&a, &b).is_empty());
    }

    #[test]
    fn schema_diff_reports_missing_and_extra_keys() {
        let a = Json::parse(r#"{"kernels":[{"name":"a"}],"extra":1}"#).unwrap();
        let b = Json::parse(r#"{"kernels":[{"name":"a","speedup":1.0}]}"#).unwrap();
        let diff = schema_diff(&a, &b);
        assert!(diff.iter().any(|d| d.contains("only in committed")));
        assert!(diff.iter().any(|d| d.contains("missing from committed")));
    }

    #[test]
    fn throughput_conversions() {
        assert!((gib_per_s(1024.0 * 1024.0 * 1024.0, 2.0) - 0.5).abs() < 1e-12);
        assert!((gflop_per_s(2e9, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arith_intensity_is_flops_over_bytes() {
        let t = Timed {
            name: "k",
            variant: "aos_fused".to_string(),
            bytes_per_iter: 8.0,
            flops_per_iter: 12.0,
            seconds: vec![],
        };
        assert!((t.arith_intensity() - 1.5).abs() < 1e-12);
        let z = Timed {
            bytes_per_iter: 0.0,
            ..t
        };
        assert_eq!(z.arith_intensity(), 0.0);
    }

    #[test]
    fn schema_version_is_bumped_for_variant_columns() {
        assert!(BENCH_SCHEMA_VERSION >= 2.0);
    }
}
