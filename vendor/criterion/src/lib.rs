//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements exactly the surface the workspace's benches use: benchmark
//! groups, `sample_size`/`throughput` configuration, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//! Measurement is a calibrated best-of-N wall-clock loop printed to
//! stdout — good enough for relative comparisons in an offline
//! container, not a statistics engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Units for reporting throughput alongside the per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier; `new(name, param)` renders as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the calibrated iteration count, timing the whole batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state; benches receive `&mut Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibrate with a single-iteration probe, then size the batch so
        // each sample runs for roughly 10 ms (capped for very fast bodies).
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut probe);
        let per_iter_ns = probe.elapsed.as_nanos().max(1);
        let iters = (10_000_000 / per_iter_ns).clamp(1, 1_000_000) as u64;

        // Keep the best (fastest per-iteration) sample; the probe seeds it.
        let mut best = probe.elapsed;
        let mut best_iters = 1u64;
        for _ in 0..self.sample_size.min(20) {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed.as_nanos() * u128::from(best_iters) < best.as_nanos() * u128::from(b.iters)
            {
                best = b.elapsed;
                best_iters = b.iters;
            }
        }

        let ns = best.as_nanos() as f64 / best_iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / (ns * 1e-9)),
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:.3} GiB/s",
                    n as f64 / (ns * 1e-9) / (1u64 << 30) as f64
                )
            }
            None => String::new(),
        };
        println!("{}/{}  {ns:.1} ns/iter{rate}", self.name, id.id);
        self
    }

    pub fn finish(&mut self) {}
}

/// Define a function `$name` that runs every listed bench against a
/// fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` to run the listed groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("sum", "tiny"), |b| {
            b.iter(|| {
                runs += 1;
                (0..4u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs > 0, "closure must actually execute");
    }
}
