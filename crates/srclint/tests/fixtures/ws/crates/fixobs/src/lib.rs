//! Fixture crate whose `clock` module is on the test Config's sanctioned
//! list: the raw `Instant::now()` there must not be flagged.

pub mod clock;

pub use fixio::read_all;
