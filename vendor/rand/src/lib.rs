//! Offline typecheck stub mirroring the subset of the `rand 0.8` API this
//! workspace uses. Functional enough to compile against, not statistically
//! meaningful.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[doc(hidden)]
pub trait Standardable {
    fn from_u64(v: u64) -> Self;
}

macro_rules! standardable_int {
    ($($t:ty),*) => { $(impl Standardable for $t { fn from_u64(v: u64) -> Self { v as $t } })* };
}
standardable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standardable for f64 {
    fn from_u64(v: u64) -> Self {
        (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standardable for f32 {
    fn from_u64(v: u64) -> Self {
        (v >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standardable for bool {
    fn from_u64(v: u64) -> Self {
        v & 1 == 1
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standardable>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
    fn gen_range<T>(&mut self, range: std::ops::Range<T>) -> T
    where
        T: Copy + RangeSample,
    {
        T::pick(self.next_u64(), range)
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

#[doc(hidden)]
pub trait RangeSample: Sized {
    fn pick(v: u64, range: std::ops::Range<Self>) -> Self;
}
macro_rules! range_sample_int {
    ($($t:ty),*) => { $(impl RangeSample for $t {
        fn pick(v: u64, range: std::ops::Range<Self>) -> Self {
            let span = range.end.wrapping_sub(range.start);
            if span == 0 { range.start } else { range.start + (v % span as u64) as $t }
        }
    })* };
}
range_sample_int!(u8, u16, u32, u64, usize);

pub mod rngs {
    /// Splitmix64-backed stand-in for rand's `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(u64);

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(seed)
        }
    }
}

pub mod distributions {
    pub trait Distribution<T> {
        fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    pub struct Standard;
}
