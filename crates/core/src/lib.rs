//! Lattice QCD core library.
//!
//! Implements the numerical heart of the paper "Simulating the weak death of
//! the neutron in a femtoscale universe with near-Exascale computing"
//! (Berkowitz et al., SC18): SU(3) gauge fields on a 4D lattice, the Wilson
//! and Möbius domain-wall Dirac operators with red–black preconditioning,
//! mixed-precision Krylov solvers with reliable updates, quenched gauge
//! generation, quark propagators, hadronic contractions, and the
//! Feynman–Hellmann propagators that give the exponential improvement in the
//! axial-coupling signal.
//!
//! # Quick start
//!
//! ```
//! use lqcd_core::prelude::*;
//!
//! // A tiny quenched lattice with a hot start.
//! let lat = Lattice::new([4, 4, 4, 8]);
//! let gauge = GaugeField::<f64>::hot(&lat, 42);
//!
//! // Solve the Möbius domain-wall Dirac equation for a random source.
//! let params = MobiusParams::standard(4, 0.1);
//! let d = MobiusDirac::new(&lat, &gauge, params);
//! let mut x = vec![Spinor::zero(); d.vec_len()];
//! let b = FermionField::<f64>::gaussian(d.vec_len(), 1).data;
//! let stats = cgne(&d, &mut x, &b, CgParams::default());
//! assert!(stats.converged);
//! ```

// Index loops over multiple coupled arrays are the natural idiom in stencil
// and contraction code; iterator rewrites obscure the site arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod blas;
pub mod block;
pub mod comms;
pub mod complex;
pub mod contract;
pub mod dirac;
pub mod fh;
pub mod field;
pub mod flops;
pub mod gamma;
pub mod gauge;
pub mod halfprec;
pub mod hmc;
pub mod lattice;
pub mod layout;
pub mod observables;
pub mod prop;
pub mod real;
pub mod recon;
pub mod reduce;
pub mod simd;
pub mod smear;
pub mod solver;
pub mod spinor;
pub mod su3;
pub mod su3exp;
pub mod threads;
pub mod topology;
pub mod tune;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::blas;
    pub use crate::block::BlockSpinor;
    pub use crate::comms::{
        tune_comm_policy, CommStats, DomainDecomposition, ShardedField, ShardedHopping,
        ShardedMobius,
    };
    pub use crate::complex::{Complex, C32, C64};
    pub use crate::contract::{
        effective_mass, meson_correlator, pion_correlator, pion_correlator_momentum,
        proton_correlator, proton_correlator_general,
    };
    pub use crate::dirac::{
        BlockDiracOp, BlockLinearOp, DiracOp, DslashVariant, HoppingKernel, LinearOp, MobiusDirac,
        MobiusParams, NormalOp, PrecMobius, PrecWilson, WilsonDirac,
    };
    pub use crate::fh::{effective_ga, fh_nucleon_correlator, FeynmanHellmann};
    pub use crate::field::{FermionField, GaugeField, GaugeLinks};
    pub use crate::gamma::{gamma5_dense, gamma_dense, SpinMatrix, NS};
    pub use crate::gauge::{average_plaquette, HeatbathParams, QuenchedEnsemble};
    pub use crate::halfprec::{HalfFermionField, HalfGaugeField, HalfRecon12Gauge};
    pub use crate::hmc::{HmcParams, HmcSampler};
    pub use crate::lattice::{Lattice, Parity, ND};
    pub use crate::layout::{hop_full_soa, SoaGaugeField, SoaSpinorField};
    pub use crate::observables::{polyakov_loop, static_potential, wilson_loop};
    pub use crate::prop::{
        point_source, wall_source, z2_noise_source, Propagator, PropagatorSolver, SolverKind,
    };
    pub use crate::real::Real;
    pub use crate::recon::{Recon12Gauge, Recon8Gauge};
    pub use crate::simd::{CVec, LaneReal, LANES};
    pub use crate::smear::{ape_smear_spatial, gaussian_smear};
    pub use crate::solver::{
        bicgstab, cg, cg_block, cgne, deflated_cg, deflated_cg_block, lanczos, lanczos_lowest,
        mixed_cg, multishift_cg, BlockOp, CgParams, Deflation, EigenPair, LanczosParams,
        MixedParams, ReliableBlock, SolveStats,
    };
    pub use crate::spinor::Spinor;
    pub use crate::su3::{ColorVec, Su3, NC};
    pub use crate::topology::{action_density, topological_charge};
    pub use crate::tune::{
        tune_block_operator, tune_dslash_variant, tune_operator, GrainTunable, VariantTunable,
    };
}

pub use prelude::*;
