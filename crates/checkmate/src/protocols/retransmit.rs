//! Model of the NACK/retransmit recv loop under wire faults.
//!
//! Mirrors `FaultyTransport` in `crates/core/src/comms/transport.rs` for a
//! single exchange: the sender parks a copy of the frame in its resend
//! slot before transmitting; the receiver drains the wire, dedup-dropping
//! stale seqs, NACKing checksum failures, timing out on a lost frame, and
//! failing the exchange once the retry budget (`CommRetryPolicy`-default
//! 4 attempts) is spent. Wire faults are adversary tasks with unit
//! budgets — corrupt, drop, duplicate, and reorder (inject a stale frame)
//! — so the explorer enumerates every fault *timing*, not a sampled one.
//!
//! Abstractions, documented in DESIGN.md:
//!
//! - the checksum is an `intact` bit (CRC collisions out of scope);
//! - the NACK is a modeled channel the sender serves, standing in for the
//!   synchronous `nack()` call;
//! - a timeout fires only when the frame is truly lost (wire and NACK
//!   queue empty), modeling a deadline much longer than retransmit
//!   latency — the real backoff schedule guarantees exactly this.
//!
//! Properties: the receiver always completes the exchange, having applied
//! the correct payload exactly once, within the retry budget. The
//! `skip_dedup` switch removes the stale-seq gate; with the reorder
//! adversary live this is the issue's seeded dedup defect and must yield a
//! violating schedule (a stale frame applied as current).

use crate::explore::{Footprint, System};
use crate::model::{obj_id, ChanM};

/// Retry budget, matching `CommRetryPolicy::default().max_attempts`.
pub const MAX_ATTEMPTS: usize = 4;

/// The exchange seq under test; the reorderer injects `SEQ - 1`.
const SEQ: u64 = 5;

fn payload(seq: u64) -> u64 {
    crate::fnv1a_64(&seq.to_le_bytes())
}

#[derive(Debug, Clone)]
struct FrameM {
    seq: u64,
    payload: u64,
    /// Checksum abstraction: false models a CRC mismatch on verify.
    intact: bool,
}

/// Which adversaries ride on the wire (each with budget 1).
#[derive(Debug, Clone)]
pub struct RetransmitSpec {
    pub corrupt: bool,
    pub drop: bool,
    pub duplicate: bool,
    /// Inject a stale (already-delivered) seq, modeling reordering.
    pub reorder: bool,
    /// Seeded defect: the receiver applies whatever seq arrives.
    pub skip_dedup: bool,
}

impl Default for RetransmitSpec {
    fn default() -> Self {
        Self {
            corrupt: true,
            drop: true,
            duplicate: true,
            reorder: true,
            skip_dedup: false,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum SenderPc {
    Park,
    Transmit,
    Serve,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum RecvResult {
    Delivered,
    Failed(String),
}

/// Task layout: 0 sender, 1 receiver, then one task per enabled adversary
/// in corrupt, drop, duplicate, reorder order.
pub struct RetransmitSystem {
    spec: RetransmitSpec,
    wire: ChanM<FrameM>,
    nacks: ChanM<u64>,
    resend_id: u64,
    resend: Option<FrameM>,
    sender_pc: SenderPc,
    recv_id: u64,
    attempts: usize,
    applied: Vec<(u64, u64)>,
    result: Option<RecvResult>,
    adversaries: Vec<Adversary>,
}

#[derive(Debug, Clone)]
struct Adversary {
    kind: AdvKind,
    budget: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdvKind {
    Corrupt,
    Drop,
    Duplicate,
    Reorder,
}

impl RetransmitSystem {
    pub fn new(spec: RetransmitSpec) -> Self {
        let mut adversaries = Vec::new();
        for (kind, on) in [
            (AdvKind::Corrupt, spec.corrupt),
            (AdvKind::Drop, spec.drop),
            (AdvKind::Duplicate, spec.duplicate),
            (AdvKind::Reorder, spec.reorder),
        ] {
            if on {
                adversaries.push(Adversary { kind, budget: 1 });
            }
        }
        Self {
            spec,
            wire: ChanM::new("retx.wire"),
            nacks: ChanM::new("retx.nacks"),
            resend_id: obj_id("retx.resend"),
            resend: None,
            sender_pc: SenderPc::Park,
            recv_id: obj_id("retx.recv"),
            attempts: 1,
            applied: Vec::new(),
            result: None,
            adversaries,
        }
    }

    fn receiver_done(&self) -> bool {
        self.result.is_some()
    }

    /// The modeled timeout condition: the frame is truly lost — nothing in
    /// flight on the wire, no NACK awaiting service.
    fn timed_out(&self) -> bool {
        self.sender_pc == SenderPc::Serve && self.wire.is_empty() && self.nacks.is_empty()
    }

    fn nack_or_fail(&mut self, why: &str) {
        if self.attempts >= MAX_ATTEMPTS {
            self.result = Some(RecvResult::Failed(format!(
                "retry budget exhausted after {}: {why}",
                self.attempts
            )));
        } else {
            self.attempts += 1;
            self.nacks.send(SEQ);
        }
    }
}

impl System for RetransmitSystem {
    fn n_tasks(&self) -> usize {
        2 + self.adversaries.len()
    }

    fn task_name(&self, task: usize) -> String {
        match task {
            0 => "sender".into(),
            1 => "receiver".into(),
            _ => match self.adversaries[task - 2].kind {
                AdvKind::Corrupt => "corruptor".into(),
                AdvKind::Drop => "dropper".into(),
                AdvKind::Duplicate => "duplicator".into(),
                AdvKind::Reorder => "reorderer".into(),
            },
        }
    }

    fn done(&self, task: usize) -> bool {
        match task {
            0 => self.sender_pc == SenderPc::Serve && self.receiver_done(),
            1 => self.receiver_done(),
            _ => self.adversaries[task - 2].budget == 0 || self.receiver_done(),
        }
    }

    fn enabled(&self, task: usize) -> bool {
        if self.done(task) {
            return false;
        }
        match task {
            0 => self.sender_pc != SenderPc::Serve || !self.nacks.is_empty(),
            // The receiver only starts once the exchange is in flight
            // (recv is called after the matching send was posted).
            1 => self.sender_pc == SenderPc::Serve && (!self.wire.is_empty() || self.timed_out()),
            _ => match self.adversaries[task - 2].kind {
                AdvKind::Reorder => self.sender_pc != SenderPc::Park,
                _ => !self.wire.is_empty(),
            },
        }
    }

    fn peek(&self, task: usize) -> Footprint {
        match task {
            0 => match self.sender_pc {
                SenderPc::Park => Footprint::new().write(self.resend_id),
                SenderPc::Transmit => Footprint::new().read(self.resend_id).write(self.wire.id()),
                SenderPc::Serve => Footprint::new()
                    .read(self.resend_id)
                    .write(self.nacks.id())
                    .write(self.wire.id()),
            },
            1 => Footprint::new()
                .write(self.wire.id())
                .write(self.nacks.id())
                .write(self.recv_id)
                .read(self.resend_id),
            _ => Footprint::new().write(self.wire.id()).read(self.recv_id),
        }
    }

    fn step(&mut self, task: usize) {
        match task {
            0 => match self.sender_pc {
                SenderPc::Park => {
                    self.resend = Some(FrameM {
                        seq: SEQ,
                        payload: payload(SEQ),
                        intact: true,
                    });
                    self.sender_pc = SenderPc::Transmit;
                }
                SenderPc::Transmit => {
                    if let Some(frame) = self.resend.clone() {
                        self.wire.send(frame);
                    }
                    self.sender_pc = SenderPc::Serve;
                }
                SenderPc::Serve => {
                    if self.nacks.try_recv().is_some() {
                        if let Some(frame) = self.resend.clone() {
                            self.wire.send(frame);
                        }
                    }
                }
            },
            1 => {
                if let Some(frame) = self.wire.try_recv() {
                    if frame.seq != SEQ && !self.spec.skip_dedup {
                        // Stale seq: dedup-dropped, costs nothing.
                        return;
                    }
                    if !frame.intact {
                        self.nack_or_fail("checksum mismatch");
                        return;
                    }
                    self.applied.push((frame.seq, frame.payload));
                    self.result = Some(RecvResult::Delivered);
                } else if self.timed_out() {
                    self.nack_or_fail("timeout");
                }
            }
            _ => {
                let adv = &mut self.adversaries[task - 2];
                match adv.kind {
                    AdvKind::Corrupt => {
                        if let Some(frame) = self.wire.front_mut() {
                            frame.intact = false;
                            adv.budget -= 1;
                        }
                    }
                    AdvKind::Drop => {
                        if self.wire.try_recv().is_some() {
                            adv.budget -= 1;
                        }
                    }
                    AdvKind::Duplicate => {
                        if !self.wire.is_empty() {
                            self.wire.duplicate_front();
                            adv.budget -= 1;
                        }
                    }
                    AdvKind::Reorder => {
                        self.wire.send(FrameM {
                            seq: SEQ - 1,
                            payload: payload(SEQ - 1),
                            intact: true,
                        });
                        adv.budget -= 1;
                    }
                }
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        if self.applied.len() > 1 {
            return Err(format!(
                "payload applied {} times (want at most once)",
                self.applied.len()
            ));
        }
        if let Some((seq, pay)) = self.applied.first() {
            if *seq != SEQ || *pay != payload(SEQ) {
                return Err(format!(
                    "wrong frame applied: seq {seq} (want {SEQ}) — stale or corrupt data \
                     reached the solver"
                ));
            }
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        self.check()?;
        match &self.result {
            Some(RecvResult::Delivered) => Ok(()),
            Some(RecvResult::Failed(why)) => {
                Err(format!("exchange failed within the retry budget: {why}"))
            }
            None => Err("receiver never ran".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer};

    #[test]
    fn full_adversary_mix_delivers_exactly_once() {
        let run = Explorer::default().explore("retransmit", || {
            RetransmitSystem::new(RetransmitSpec::default())
        });
        assert!(
            run.verified(),
            "exhaustive pass expected, got {:?}",
            run.violation
        );
        assert!(run.schedules > 50, "fault timings should be non-trivial");
    }

    #[test]
    fn dropped_dedup_check_applies_a_stale_frame() {
        let spec = RetransmitSpec {
            skip_dedup: true,
            ..RetransmitSpec::default()
        };
        let run = Explorer::default()
            .explore("retransmit-defect", || RetransmitSystem::new(spec.clone()));
        let v = run.violation.expect("skip_dedup must be caught");
        assert!(v.message.contains("stale"), "{}", v.message);
        let mut sys = RetransmitSystem::new(spec);
        let replayed = replay(&mut sys, &v.schedule).expect_err("replay must reproduce");
        assert_eq!(replayed.message, v.message);
    }

    #[test]
    fn clean_wire_is_a_two_step_delivery() {
        let run = Explorer::default().explore("retransmit-clean", || {
            RetransmitSystem::new(RetransmitSpec {
                corrupt: false,
                drop: false,
                duplicate: false,
                reorder: false,
                skip_dedup: false,
            })
        });
        assert!(run.verified());
    }
}
