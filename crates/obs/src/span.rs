//! Span timers: RAII guards that measure a region's duration on the
//! registry's clock and record it into a `<name>.seconds` histogram
//! (plus a `<name>.calls` counter). With a [`crate::ManualClock`]
//! installed, spans measure simulated time — under a DES the recorded
//! durations are exactly the simulated durations.

use crate::registry::Registry;

/// Default duration buckets: 1 µs .. ~68 s, ×4 per bucket.
pub const DEFAULT_SECONDS_BOUNDS: [f64; 13] = [
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3, 1.6384e-2, 6.5536e-2, 2.62144e-1,
    1.048576, 4.194304, 16.777216,
];

pub struct Span {
    registry: Registry,
    name: String,
    start: f64,
    recorded: bool,
}

impl Span {
    /// Start a span on an explicit registry.
    pub fn start_on(registry: &Registry, name: &str) -> Span {
        let start = registry.now();
        Span {
            registry: registry.clone(),
            name: name.to_string(),
            start,
            recorded: false,
        }
    }

    /// Start a span on the ambient registry.
    pub fn start(name: &str) -> Span {
        Span::start_on(&Registry::current(), name)
    }

    /// End the span now and return the elapsed seconds.
    pub fn end(mut self) -> f64 {
        self.finish()
    }

    fn finish(&mut self) -> f64 {
        let elapsed = self.registry.now() - self.start;
        self.registry
            .histogram(&format!("{}.seconds", self.name), &DEFAULT_SECONDS_BOUNDS)
            .record(elapsed);
        self.registry.counter(&format!("{}.calls", self.name)).inc();
        self.recorded = true;
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            self.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn span_measures_on_the_registry_clock() {
        let r = Registry::new();
        let clock = ManualClock::new(0.0);
        r.set_clock(clock.clone());
        let span = Span::start_on(&r, "solve");
        clock.advance(2.5);
        assert_eq!(span.end(), 2.5);
        assert_eq!(r.counter("solve.calls").get(), 1);
        let h = r
            .histogram("solve.seconds", &DEFAULT_SECONDS_BOUNDS)
            .snapshot();
        assert_eq!((h.count, h.sum), (1, 2.5));
    }

    #[test]
    fn dropping_a_span_records_it_once() {
        let r = Registry::new();
        let clock = ManualClock::new(0.0);
        r.set_clock(clock.clone());
        {
            let _span = Span::start_on(&r, "region");
            clock.advance(1.0);
        }
        assert_eq!(r.counter("region.calls").get(), 1);
        assert_eq!(
            r.histogram("region.seconds", &DEFAULT_SECONDS_BOUNDS).sum(),
            1.0
        );
    }
}
