//! Model of `CheckpointStore` two-slot rotation with torn writes.
//!
//! Mirrors `crates/io/src/checkpoint.rs`: saves rotate between two slots
//! under a store mutex, a slot write is multi-step (begin → payload →
//! commit, where only commit marks the slot intact and stamps its seq),
//! and restore picks the newest slot that passes its CRC. A crash
//! adversary freezes every writer at an arbitrary step — including mid-
//! write, leaving a torn slot — after which the restorer runs.
//!
//! The crash fires in *every* schedule; firing after all saves complete is
//! the no-crash scenario, so one exploration covers both. The ghost
//! variable `committed` records each fully-committed `(seq, payload)`
//! outside the crash's reach, giving the final property its reference:
//! restore must return the newest committed snapshot, bit-correct — a torn
//! newest slot must fall back to the older intact one, never be served.
//!
//! The `single_slot` switch removes the rotation (every save overwrites
//! slot 0), the design defect the two-slot scheme exists to prevent; a
//! crash mid-overwrite then loses the only intact snapshot and the
//! explorer must find it.

use crate::explore::{Footprint, System};
use crate::model::{obj_id, MutexM};

fn payload(seq: u64) -> u64 {
    crate::fnv1a_64(&seq.to_le_bytes())
}

#[derive(Debug, Clone, Default)]
struct SlotM {
    /// Stamped at commit; `None` while torn/empty.
    seq: Option<u64>,
    /// Models the CRC: false from begin until commit.
    intact: bool,
    data: u64,
}

/// Bounded checkpoint configuration (2 writers).
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Saves each writer performs.
    pub saves_per_writer: u64,
    /// Seeded defect: no rotation — every save overwrites slot 0.
    pub single_slot: bool,
}

impl Default for CheckpointSpec {
    fn default() -> Self {
        Self {
            saves_per_writer: 2,
            single_slot: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WritePc {
    Lock,
    Begin,
    Payload,
    Commit,
    Unlock,
}

#[derive(Debug, Clone)]
struct Writer {
    saves_left: u64,
    pc: WritePc,
    /// Slot claimed at Begin (from the store's rotation cursor).
    slot: usize,
    /// Seq claimed at Begin (from the store's counter).
    seq: u64,
}

/// Task layout: 0,1 writers; 2 crash; 3 restorer.
pub struct CheckpointSystem {
    spec: CheckpointSpec,
    slots: [SlotM; 2],
    slots_id: u64,
    store_id: u64,
    mutex: MutexM,
    next_seq: u64,
    next_slot: usize,
    writers: [Writer; 2],
    crashed: bool,
    crash_id: u64,
    /// Ghost: every fully committed (seq, payload), in commit order.
    committed: Vec<(u64, u64)>,
    restored: Option<Option<(u64, u64)>>,
}

impl CheckpointSystem {
    pub fn new(spec: CheckpointSpec) -> Self {
        let writer = |saves: u64| Writer {
            saves_left: saves,
            pc: WritePc::Lock,
            slot: 0,
            seq: 0,
        };
        Self {
            slots: [SlotM::default(), SlotM::default()],
            slots_id: obj_id("ckpt.slots"),
            store_id: obj_id("ckpt.store"),
            mutex: MutexM::new("ckpt.mutex"),
            next_seq: 0,
            next_slot: 0,
            writers: [writer(spec.saves_per_writer), writer(spec.saves_per_writer)],
            crashed: false,
            crash_id: obj_id("ckpt.crashed"),
            committed: Vec::new(),
            restored: None,
            spec,
        }
    }

    fn writer_finished(&self, w: usize) -> bool {
        self.writers[w].saves_left == 0 && self.writers[w].pc == WritePc::Lock
    }

    fn writers_over(&self) -> bool {
        self.crashed || (0..2).all(|w| self.writer_finished(w))
    }
}

impl System for CheckpointSystem {
    fn n_tasks(&self) -> usize {
        4
    }

    fn task_name(&self, task: usize) -> String {
        match task {
            0 | 1 => format!("writer{task}"),
            2 => "crash".into(),
            _ => "restorer".into(),
        }
    }

    fn done(&self, task: usize) -> bool {
        match task {
            0 | 1 => self.crashed || self.writer_finished(task),
            2 => self.crashed,
            _ => self.restored.is_some(),
        }
    }

    fn enabled(&self, task: usize) -> bool {
        if self.done(task) {
            return false;
        }
        match task {
            0 | 1 => self.writers[task].pc != WritePc::Lock || self.mutex.is_free(),
            2 => true,
            // Restore is a post-crash (or post-completion) action; the
            // crash task retiring late models the no-crash run.
            _ => self.writers_over(),
        }
    }

    fn peek(&self, task: usize) -> Footprint {
        match task {
            0 | 1 => {
                // Generous: every writer step reads the crash flag (it
                // gates enabledness) and touches the store lock state or
                // the slot being written.
                let fp = Footprint::new().read(self.crash_id);
                match self.writers[task].pc {
                    WritePc::Lock | WritePc::Unlock => fp.write(self.mutex.id()),
                    WritePc::Begin => fp.read(self.store_id).write(self.slots_id),
                    WritePc::Payload => fp.write(self.slots_id),
                    WritePc::Commit => fp.write(self.slots_id).write(self.store_id),
                }
            }
            2 => Footprint::new().write(self.crash_id),
            _ => Footprint::new()
                .read(self.crash_id)
                .read(self.slots_id)
                .read(self.store_id)
                .read(self.mutex.id())
                .write(obj_id("ckpt.restored")),
        }
    }

    fn step(&mut self, task: usize) {
        match task {
            0 | 1 => {
                let pc = self.writers[task].pc;
                match pc {
                    WritePc::Lock => {
                        if self.mutex.lock(task).is_err() {
                            return;
                        }
                        self.writers[task].pc = WritePc::Begin;
                    }
                    WritePc::Begin => {
                        let slot = if self.spec.single_slot {
                            0
                        } else {
                            self.next_slot
                        };
                        let seq = self.next_seq;
                        // Begin tears the slot: CRC invalid until commit.
                        self.slots[slot].intact = false;
                        self.slots[slot].seq = None;
                        self.writers[task].slot = slot;
                        self.writers[task].seq = seq;
                        self.writers[task].pc = WritePc::Payload;
                    }
                    WritePc::Payload => {
                        let w = &self.writers[task];
                        self.slots[w.slot].data = payload(w.seq);
                        self.writers[task].pc = WritePc::Commit;
                    }
                    WritePc::Commit => {
                        let w = self.writers[task].clone();
                        self.slots[w.slot].seq = Some(w.seq);
                        self.slots[w.slot].intact = true;
                        self.committed.push((w.seq, payload(w.seq)));
                        self.next_seq = w.seq + 1;
                        self.next_slot = (w.slot + 1) % 2;
                        self.writers[task].pc = WritePc::Unlock;
                    }
                    WritePc::Unlock => {
                        if self.mutex.unlock(task).is_err() {
                            return;
                        }
                        self.writers[task].saves_left -= 1;
                        self.writers[task].pc = WritePc::Lock;
                    }
                }
            }
            2 => {
                self.crashed = true;
            }
            _ => {
                // load_latest: newest slot whose CRC verifies.
                let best = self
                    .slots
                    .iter()
                    .filter(|s| s.intact)
                    .filter_map(|s| s.seq.map(|seq| (seq, s.data)))
                    .max_by_key(|(seq, _)| *seq);
                self.restored = Some(best);
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let Some(restored) = self.restored else {
            return Err("restorer never ran".into());
        };
        let newest = self.committed.last().copied();
        match (restored, newest) {
            (Some((rs, rd)), Some((cs, cd))) => {
                if (rs, rd) != (cs, cd) {
                    return Err(format!(
                        "restore returned seq {rs} (data {rd:#x}); newest committed \
                         snapshot is seq {cs} (data {cd:#x})"
                    ));
                }
                Ok(())
            }
            (None, None) => Ok(()),
            (Some((rs, _)), None) => Err(format!(
                "restore served seq {rs} but nothing ever committed"
            )),
            (None, Some((cs, _))) => Err(format!(
                "restore found no intact slot but seq {cs} was committed"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer};

    #[test]
    fn two_slot_rotation_survives_a_crash_anywhere() {
        let run = Explorer::default().explore("checkpoint", || {
            CheckpointSystem::new(CheckpointSpec::default())
        });
        assert!(
            run.verified(),
            "exhaustive pass expected, got {:?}",
            run.violation
        );
        assert!(run.schedules > 20, "crash positions should be non-trivial");
    }

    #[test]
    fn single_slot_defect_loses_the_snapshot() {
        let spec = CheckpointSpec {
            single_slot: true,
            ..CheckpointSpec::default()
        };
        let run = Explorer::default()
            .explore("checkpoint-defect", || CheckpointSystem::new(spec.clone()));
        let v = run.violation.expect("single-slot overwrite must be caught");
        assert!(v.message.contains("committed"), "{}", v.message);
        let mut sys = CheckpointSystem::new(spec);
        let replayed = replay(&mut sys, &v.schedule).expect_err("replay must reproduce");
        assert_eq!(replayed.message, v.message);
    }
}
