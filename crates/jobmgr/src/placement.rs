//! GPU-granular job placement on dense nodes — the paper's Summit example.
//!
//! Summit's six GPUs per node do not divide the power-of-two GPU counts
//! lattice jobs want. §VII: "a set of three jobs that require 16 GPUs each
//! can nicely be placed on 8 Summit nodes (48 GPUs). The first and second
//! jobs can occupy GPUs 1,2,4,5 on nodes 1-4 and 5-8, while the third job
//! can be placed on GPUs 3,6 on all 8 nodes. While the jobs that occupy
//! 2 GPUs per node suffer a performance degradation, this can be largely
//! mitigated by the backfilling capability of mpi_jm."
//!
//! This module implements that placement arithmetic and its throughput
//! consequences, including the backfill mitigation.

use serde::{Deserialize, Serialize};

/// One job's placement across nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GpuPlacement {
    /// `(node, gpu_indices)` assignments.
    pub assignment: Vec<(usize, Vec<usize>)>,
    /// GPUs used per node by this job.
    pub gpus_per_node: usize,
    /// Relative solve rate: spreading a fixed-GPU job over more nodes cuts
    /// the per-node NIC share it needs but costs more inter-node surface.
    pub relative_rate: f64,
}

/// Rate penalty of running a `job_gpus`-GPU job at `gpus_per_node`
/// occupancy instead of fully packed: more nodes means more of the halo
/// crosses the network. Calibrated to a mild (10-20%) penalty as the paper
/// describes ("suffer a performance degradation ... largely mitigated").
pub fn spread_penalty(job_gpus: usize, gpus_per_node: usize, packed_gpn: usize) -> f64 {
    assert!(gpus_per_node >= 1 && gpus_per_node <= packed_gpn);
    let nodes_spread = job_gpus.div_ceil(gpus_per_node) as f64;
    let nodes_packed = job_gpus.div_ceil(packed_gpn) as f64;
    // Inter-node surface grows with the node count's cube-root squared
    // (surface-to-volume of the node-level decomposition).
    let surface_ratio = (nodes_spread / nodes_packed).powf(2.0 / 3.0);
    1.0 / (1.0 + 0.12 * (surface_ratio - 1.0))
}

/// Place `n_jobs` jobs of `job_gpus` GPUs each on `nodes` nodes of
/// `gpn` GPUs, filling whole-node slots first and overlaying the remainder
/// across partially used nodes — the paper's 3×16-on-8×6 pattern.
///
/// Returns one placement per job, or `None` if the GPUs don't suffice.
///
/// ```
/// // The paper's Summit example: three 16-GPU jobs on 8 six-GPU nodes.
/// let placements = mpi_jm::place_jobs(3, 16, 8, 6).unwrap();
/// assert_eq!(placements[0].gpus_per_node, 4); // jobs 1-2: 4 GPUs x 4 nodes
/// assert_eq!(placements[2].gpus_per_node, 2); // job 3: GPUs "3,6" on all 8
/// assert_eq!(placements[2].assignment.len(), 8);
/// ```
pub fn place_jobs(
    n_jobs: usize,
    job_gpus: usize,
    nodes: usize,
    gpn: usize,
) -> Option<Vec<GpuPlacement>> {
    if n_jobs * job_gpus > nodes * gpn {
        return None;
    }
    // Free GPU count per node.
    let mut free: Vec<Vec<usize>> = (0..nodes).map(|_| (0..gpn).collect()).collect();
    let mut placements = Vec::with_capacity(n_jobs);

    for _ in 0..n_jobs {
        // Choose the occupancy: the largest uniform per-node share g such
        // that enough nodes have ≥ g free GPUs and g divides the job.
        let mut chosen: Option<(usize, Vec<usize>)> = None;
        for g in (1..=gpn.min(job_gpus)).rev() {
            if !job_gpus.is_multiple_of(g) {
                continue;
            }
            let need_nodes = job_gpus / g;
            let candidates: Vec<usize> = (0..nodes).filter(|&n| free[n].len() >= g).collect();
            if candidates.len() >= need_nodes {
                chosen = Some((g, candidates[..need_nodes].to_vec()));
                break;
            }
        }
        let (g, node_list) = chosen?;
        let mut assignment = Vec::with_capacity(node_list.len());
        for &n in &node_list {
            let gpus: Vec<usize> = free[n].drain(..g).collect();
            assignment.push((n, gpus));
        }
        placements.push(GpuPlacement {
            assignment,
            gpus_per_node: g,
            relative_rate: spread_penalty(job_gpus, g, gpn),
        });
    }
    Some(placements)
}

/// Aggregate throughput of a placement set relative to `n_jobs` ideal
/// fully-packed jobs, with and without backfilling.
///
/// Without backfilling, the bundle ends when the slowest (most spread) job
/// does; with it, freed GPUs immediately take new work so throughput is the
/// mean rate instead of the minimum.
pub fn bundle_throughput(placements: &[GpuPlacement]) -> (f64, f64) {
    let n = placements.len() as f64;
    let min_rate = placements
        .iter()
        .map(|p| p.relative_rate)
        .fold(f64::INFINITY, f64::min);
    let mean_rate = placements.iter().map(|p| p.relative_rate).sum::<f64>() / n;
    (min_rate, mean_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_three_16gpu_jobs_on_8_summit_nodes() {
        let placements = place_jobs(3, 16, 8, 6).expect("fits: 48 = 3x16");
        // First two jobs: 4 GPUs on each of 4 nodes.
        assert_eq!(placements[0].gpus_per_node, 4);
        assert_eq!(placements[0].assignment.len(), 4);
        assert_eq!(placements[1].gpus_per_node, 4);
        // Third job: the 2 leftover GPUs on all 8 nodes.
        assert_eq!(placements[2].gpus_per_node, 2);
        assert_eq!(placements[2].assignment.len(), 8);
        // Every GPU used exactly once.
        let mut used = vec![vec![false; 6]; 8];
        for p in &placements {
            for (node, gpus) in &p.assignment {
                for &g in gpus {
                    assert!(!used[*node][g], "GPU double-booked");
                    used[*node][g] = true;
                }
            }
        }
        assert!(used.iter().flatten().all(|&u| u), "all 48 GPUs used");
    }

    #[test]
    fn spread_job_is_slower_but_mildly() {
        let packed = spread_penalty(16, 4, 6);
        let spread = spread_penalty(16, 2, 6);
        assert!(spread < packed);
        assert!(
            spread > 0.8,
            "penalty should be mild (paper: 'largely mitigated'): {spread}"
        );
    }

    #[test]
    fn backfilling_mitigates_the_spread_penalty() {
        let placements = place_jobs(3, 16, 8, 6).expect("fits");
        let (without, with) = bundle_throughput(&placements);
        assert!(
            with > without,
            "backfill raises throughput: {with} > {without}"
        );
        // With backfill the bundle runs within a few percent of ideal.
        assert!(with > 0.93, "mitigated throughput {with}");
    }

    #[test]
    fn oversubscription_is_rejected() {
        assert!(place_jobs(4, 16, 8, 6).is_none(), "64 > 48 GPUs");
    }

    #[test]
    fn whole_node_jobs_take_whole_nodes() {
        let placements = place_jobs(2, 12, 4, 6).expect("fits");
        for p in &placements {
            assert_eq!(p.gpus_per_node, 6, "12-GPU jobs pack 2 full nodes");
            assert!((p.relative_rate - 1.0).abs() < 1e-12);
        }
    }
}
