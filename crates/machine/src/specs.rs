//! Machine specifications — Table II of the paper, plus the calibration
//! constants the performance model needs.

use serde::{Deserialize, Serialize};

/// One row of Table II, extended with model calibration parameters.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct MachineSpec {
    /// Machine name.
    pub name: String,
    /// Number of compute nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// CPU description.
    pub cpu: String,
    /// GPU description.
    pub gpu: String,
    /// Single-precision peak per node, TFLOP/s.
    pub fp32_tflops_per_node: f64,
    /// Aggregate GPU memory bandwidth per node, GB/s.
    pub gpu_bw_per_node_gbs: f64,
    /// CPU↔GPU link bandwidth, GB/s.
    pub cpu_gpu_bw_gbs: f64,
    /// Interconnect description.
    pub interconnect: String,
    /// Injection bandwidth per node into the network, GB/s.
    pub nic_bw_gbs: f64,
    /// GPU↔GPU intra-node bandwidth per GPU (NVLink where present), GB/s.
    pub nvlink_bw_gbs: f64,
    /// Inter-node message latency, microseconds.
    pub net_latency_us: f64,
    /// Whether GPU Direct RDMA is available ("at the time of submission the
    /// Sierra and Summit systems did not support this").
    pub gdr_available: bool,
    /// Calibrated ratio of achieved effective bandwidth to raw HBM bandwidth
    /// at peak solver efficiency. >1 on Volta ("improved cache structure ...
    /// amplifying the effective bandwidth"), <1 on Kepler.
    pub bw_amplification: f64,
    /// Compiler/runtime metadata from Table II.
    pub gcc: String,
    /// MPI implementation from Table II.
    pub mpi: String,
    /// CUDA toolkit from Table II.
    pub cuda: String,
}

impl MachineSpec {
    /// Single-precision peak per GPU, TFLOP/s.
    pub fn fp32_tflops_per_gpu(&self) -> f64 {
        self.fp32_tflops_per_node / self.gpus_per_node as f64
    }

    /// Raw HBM bandwidth per GPU, GB/s.
    pub fn gpu_bw_gbs(&self) -> f64 {
        self.gpu_bw_per_node_gbs / self.gpus_per_node as f64
    }

    /// Effective streaming bandwidth per GPU seen by the solver at peak
    /// efficiency (raw × cache amplification), GB/s.
    pub fn effective_gpu_bw_gbs(&self) -> f64 {
        self.gpu_bw_gbs() * self.bw_amplification
    }

    /// Total GPUs in the machine.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// Titan (OLCF): Cray XK7, one K20X per node, Gemini interconnect.
pub fn titan() -> MachineSpec {
    MachineSpec {
        name: "Titan".into(),
        nodes: 18_688,
        gpus_per_node: 1,
        cpu: "AMD Opteron".into(),
        gpu: "NVIDIA K20X".into(),
        fp32_tflops_per_node: 4.0,
        gpu_bw_per_node_gbs: 250.0,
        cpu_gpu_bw_gbs: 6.0,
        interconnect: "Cray Gemini (~8 GB/s)".into(),
        nic_bw_gbs: 8.0,
        // No NVLink: intra-node is moot with 1 GPU; PCIe bandwidth used.
        nvlink_bw_gbs: 6.0,
        net_latency_us: 1.5,
        gdr_available: false,
        // Calibrated to the paper's 139 GB/s effective at peak efficiency.
        bw_amplification: 139.0 / 250.0,
        gcc: "4.9.3".into(),
        mpi: "Cray MPICH 7.6.3".into(),
        cuda: "7.5.18".into(),
    }
}

/// Ray (LLNL): pre-CORAL development system, four P100 per node.
pub fn ray() -> MachineSpec {
    MachineSpec {
        name: "Ray".into(),
        nodes: 54,
        gpus_per_node: 4,
        cpu: "IBM POWER8".into(),
        gpu: "NVIDIA P100".into(),
        fp32_tflops_per_node: 44.0,
        gpu_bw_per_node_gbs: 2880.0,
        cpu_gpu_bw_gbs: 20.0,
        interconnect: "Mellanox IB 2xEDR".into(),
        nic_bw_gbs: 25.0,
        nvlink_bw_gbs: 40.0,
        net_latency_us: 1.0,
        gdr_available: true,
        // Calibrated to the paper's 516 GB/s effective per GPU (720 raw).
        bw_amplification: 516.0 / 720.0,
        gcc: "4.9.3".into(),
        mpi: "Spectrum 2017.04.03".into(),
        cuda: "9.0.176".into(),
    }
}

/// Sierra (LLNL): four V100 per node, 2×EDR InfiniBand.
pub fn sierra() -> MachineSpec {
    MachineSpec {
        name: "Sierra".into(),
        nodes: 4200,
        gpus_per_node: 4,
        cpu: "IBM POWER9".into(),
        gpu: "NVIDIA V100".into(),
        fp32_tflops_per_node: 60.0,
        gpu_bw_per_node_gbs: 3600.0,
        cpu_gpu_bw_gbs: 75.0,
        interconnect: "Mellanox IB 2xEDR".into(),
        nic_bw_gbs: 25.0,
        nvlink_bw_gbs: 75.0,
        net_latency_us: 1.0,
        gdr_available: false,
        // Calibrated to the paper's 975 GB/s effective per GPU (900 raw):
        // Volta's larger L1/L2 amplify effective bandwidth past HBM.
        bw_amplification: 975.0 / 900.0,
        gcc: "4.9.3".into(),
        mpi: "MVAPICH2 2.3".into(),
        cuda: "9.2.148".into(),
    }
}

/// Summit (OLCF): six V100 per node, 2×EDR InfiniBand.
pub fn summit() -> MachineSpec {
    MachineSpec {
        name: "Summit".into(),
        nodes: 4600,
        gpus_per_node: 6,
        cpu: "IBM POWER9".into(),
        gpu: "NVIDIA V100".into(),
        fp32_tflops_per_node: 90.0,
        gpu_bw_per_node_gbs: 5400.0,
        cpu_gpu_bw_gbs: 50.0,
        interconnect: "Mellanox IB 2xEDR".into(),
        nic_bw_gbs: 25.0,
        nvlink_bw_gbs: 50.0,
        net_latency_us: 1.0,
        gdr_available: false,
        // Same silicon as Sierra.
        bw_amplification: 975.0 / 900.0,
        gcc: "4.8.5".into(),
        mpi: "Spectrum 2018.01.10".into(),
        cuda: "9.1.85".into(),
    }
}

/// All four systems of Table II, in the paper's column order.
pub fn all_machines() -> Vec<MachineSpec> {
    vec![titan(), ray(), sierra(), summit()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let t = titan();
        assert_eq!(t.nodes, 18_688);
        assert_eq!(t.gpus_per_node, 1);
        assert_eq!(t.fp32_tflops_per_node, 4.0);
        let r = ray();
        assert_eq!(r.nodes, 54);
        assert_eq!(r.gpus_per_node, 4);
        assert_eq!(r.gpu_bw_per_node_gbs, 2880.0);
        let s = sierra();
        assert_eq!(s.gpus_per_node, 4);
        assert_eq!(s.fp32_tflops_per_node, 60.0);
        assert_eq!(s.cpu_gpu_bw_gbs, 75.0);
        let m = summit();
        assert_eq!(m.gpus_per_node, 6);
        assert_eq!(m.fp32_tflops_per_node, 90.0);
        assert_eq!(m.gpu_bw_per_node_gbs, 5400.0);
    }

    #[test]
    fn effective_bandwidth_reproduces_fig3c_anchors() {
        assert!((titan().effective_gpu_bw_gbs() - 139.0).abs() < 0.5);
        assert!((ray().effective_gpu_bw_gbs() - 516.0).abs() < 0.5);
        assert!((sierra().effective_gpu_bw_gbs() - 975.0).abs() < 0.5);
    }

    #[test]
    fn volta_amplifies_kepler_does_not() {
        assert!(titan().bw_amplification < 1.0);
        assert!(ray().bw_amplification < 1.0);
        assert!(sierra().bw_amplification > 1.0, "Volta cache amplification");
    }

    #[test]
    fn machine_speedup_over_titan_preserves_paper_ordering() {
        // The paper quotes application-level speedups of ~12x (Sierra) and
        // ~15x (Summit) over Titan. The model's per-GPU effective-bandwidth
        // ratio is ~7x with 4x/6x the GPUs per node; the reproducible claim
        // is the ordering Summit > Sierra >> Titan and the Summit/Sierra
        // ratio of ~1.25 (= 15/12) from the extra GPUs per node being
        // partially offset by NIC sharing. EXPERIMENTS.md discusses the
        // absolute-factor deviation.
        let t = titan();
        let s = sierra();
        let m = summit();
        let per_gpu = |x: &MachineSpec| x.effective_gpu_bw_gbs();
        assert!((6.0..8.0).contains(&(per_gpu(&s) / per_gpu(&t))));
        let node_bw = |x: &MachineSpec| x.effective_gpu_bw_gbs() * x.gpus_per_node as f64;
        let sierra_speedup = node_bw(&s) / node_bw(&t);
        let summit_speedup = node_bw(&m) / node_bw(&t);
        assert!(summit_speedup > sierra_speedup && sierra_speedup > 10.0);
        assert!((1.3..1.7).contains(&(summit_speedup / sierra_speedup)));
    }

    #[test]
    fn gdr_unavailable_on_coral_at_submission() {
        assert!(!sierra().gdr_available);
        assert!(!summit().gdr_available);
        assert!(ray().gdr_available);
    }
}
