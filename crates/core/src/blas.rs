//! BLAS-1 operations on spinor vectors.
//!
//! These are the auxiliary operations of the CG solver (50–100 flops per
//! lattice site in the paper's accounting — "extremely bandwidth bound").
//! All reductions accumulate in `f64` regardless of storage precision,
//! matching the paper's reporting convention that "all reductions are done in
//! double precision"; rayon provides the parallel tree reduction.

use crate::complex::{Complex, C64};
use crate::real::Real;
use crate::spinor::Spinor;
use rayon::prelude::*;

/// Minimum vector length before a BLAS-1 loop is split across threads; tiny
/// vectors stay a single sequential chunk to avoid fork-join overhead.
const PAR_THRESHOLD: usize = 1 << 12;

/// Chunk length for a loop over `len` spinors. Below `PAR_THRESHOLD` the
/// whole vector is one chunk (sequential, and bit-identical to a plain
/// loop); above it, fixed chunks split the work across the pool. Derived
/// from `len` only, so the chunk shape — and therefore every reduction's
/// bits — is independent of the pool width.
pub(crate) fn grain_for(len: usize) -> usize {
    if len < PAR_THRESHOLD {
        len.max(1)
    } else {
        PAR_THRESHOLD / 4
    }
}

/// Chunked elementwise update `y[i] = f(y[i], x[i])`: the one code path
/// behind the axpy family, sequential or parallel by `grain_for`. Like the
/// dslash chunk bodies (see [`crate::simd`]), the inner loop has an
/// AVX2-compiled twin selected at runtime; both twins perform the same
/// elementwise IEEE operations, so results are bit-identical either way.
fn update2<R: Real, F>(x: &[Spinor<R>], y: &mut [Spinor<R>], f: F)
where
    F: Fn(&mut Spinor<R>, &Spinor<R>) + Sync + Send,
{
    assert_eq!(x.len(), y.len());
    let avx2 = crate::simd::avx2_detected();
    rayon::for_each_chunk_mut(y, grain_for(x.len()), |base, chunk| {
        if avx2 {
            // SAFETY: `avx2_detected` returned true, so the AVX2-compiled
            // twin is safe to call on this CPU.
            #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
            unsafe {
                update2_chunk_avx2(x, base, chunk, &f)
            };
        } else {
            update2_chunk(x, base, chunk, &f);
        }
    });
}

/// Chunk body of [`update2`].
#[inline(always)]
fn update2_chunk<R: Real, F>(x: &[Spinor<R>], base: usize, chunk: &mut [Spinor<R>], f: &F)
where
    F: Fn(&mut Spinor<R>, &Spinor<R>),
{
    for (k, yi) in chunk.iter_mut().enumerate() {
        f(yi, &x[base + k]);
    }
}

/// AVX2-recompiled twin of [`update2_chunk`] (same code, 256-bit codegen).
#[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
fn update2_chunk_avx2<R: Real, F>(x: &[Spinor<R>], base: usize, chunk: &mut [Spinor<R>], f: &F)
where
    F: Fn(&mut Spinor<R>, &Spinor<R>),
{
    update2_chunk(x, base, chunk, f);
}

/// Chunked `f64` reduction over `0..len` with per-chunk sequential folds
/// combined in index order: the one code path behind `dot`/`norm_sqr`.
fn reduce2<T, ID, F, OP>(len: usize, identity: ID, fold_chunk: F, combine: OP) -> T
where
    T: Send,
    ID: Fn() -> T + Sync + Send,
    F: Fn(T, std::ops::Range<usize>) -> T + Sync + Send,
    OP: Fn(T, T) -> T + Sync + Send,
{
    rayon::reduce_chunks(len, grain_for(len), identity, fold_chunk, combine)
}

/// `y += a * x` with real `a`.
pub fn axpy<R: Real>(a: f64, x: &[Spinor<R>], y: &mut [Spinor<R>]) {
    let a = R::from_f64(a);
    update2(x, y, |yi, xi| *yi += xi.scale(a));
}

/// `y += a * x` with complex `a`.
pub fn caxpy<R: Real>(a: C64, x: &[Spinor<R>], y: &mut [Spinor<R>]) {
    let a: Complex<R> = a.cast();
    update2(x, y, |yi, xi| *yi += xi.scale_c(a));
}

/// `y = x + b * y` (the CG search-direction update).
pub fn xpby<R: Real>(x: &[Spinor<R>], b: f64, y: &mut [Spinor<R>]) {
    let b = R::from_f64(b);
    update2(x, y, |yi, xi| *yi = *xi + yi.scale(b));
}

/// `y = x` (copy).
pub fn copy<R: Real>(x: &[Spinor<R>], y: &mut [Spinor<R>]) {
    assert_eq!(x.len(), y.len());
    y.copy_from_slice(x);
}

/// `y *= a`.
pub fn scal<R: Real>(a: f64, y: &mut [Spinor<R>]) {
    let a = R::from_f64(a);
    let grain = grain_for(y.len());
    let avx2 = crate::simd::avx2_detected();
    rayon::for_each_chunk_mut(y, grain, |_, chunk| {
        if avx2 {
            // SAFETY: `avx2_detected` returned true, so the AVX2-compiled
            // twin is safe to call on this CPU.
            #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
            unsafe {
                scal_chunk_avx2(a, chunk)
            };
        } else {
            scal_chunk(a, chunk);
        }
    });
}

/// Chunk body of [`scal`].
#[inline(always)]
fn scal_chunk<R: Real>(a: R, chunk: &mut [Spinor<R>]) {
    for yi in chunk.iter_mut() {
        *yi = yi.scale(a);
    }
}

/// AVX2-recompiled twin of [`scal_chunk`] (same code, 256-bit codegen).
#[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
fn scal_chunk_avx2<R: Real>(a: R, chunk: &mut [Spinor<R>]) {
    scal_chunk(a, chunk);
}

/// Set every component to zero.
pub fn zero<R: Real>(y: &mut [Spinor<R>]) {
    y.iter_mut().for_each(|yi| *yi = Spinor::zero());
}

/// `‖x‖²` accumulated in `f64`.
pub fn norm_sqr<R: Real>(x: &[Spinor<R>]) -> f64 {
    reduce2(
        x.len(),
        || 0.0f64,
        |acc, r| r.fold(acc, |a, i| a + x[i].norm_sqr().to_f64()),
        |a, b| a + b,
    )
}

/// `⟨x, y⟩` accumulated in `f64`.
pub fn dot<R: Real>(x: &[Spinor<R>], y: &[Spinor<R>]) -> C64 {
    assert_eq!(x.len(), y.len());
    let (re, im) = reduce2(
        x.len(),
        || (0.0f64, 0.0f64),
        |acc, r| {
            r.fold(acc, |(re, im), i| {
                let d = x[i].dot(&y[i]).to_c64();
                (re + d.re, im + d.im)
            })
        },
        |a, b| (a.0 + b.0, a.1 + b.1),
    );
    C64::new(re, im)
}

/// `z = x − y` into a fresh vector.
pub fn sub<R: Real>(x: &[Spinor<R>], y: &[Spinor<R>]) -> Vec<Spinor<R>> {
    assert_eq!(x.len(), y.len());
    x.par_iter()
        .zip(y.par_iter())
        .map(|(a, b)| *a - *b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FermionField;

    fn v(seed: u64, n: usize) -> Vec<Spinor<f64>> {
        FermionField::<f64>::gaussian(n, seed).data
    }

    #[test]
    fn axpy_matches_reference() {
        let x = v(1, 100);
        let mut y = v(2, 100);
        let y0 = y.clone();
        axpy(2.5, &x, &mut y);
        for i in 0..100 {
            let expect = y0[i] + x[i].scale(2.5);
            assert!((y[i] - expect).norm_sqr() < 1e-24);
        }
    }

    #[test]
    fn dot_is_conjugate_symmetric() {
        let x = v(3, 257);
        let y = v(4, 257);
        let xy = dot(&x, &y);
        let yx = dot(&y, &x);
        assert!((xy - yx.conj()).abs() < 1e-10);
    }

    #[test]
    fn norm_matches_self_dot() {
        let x = v(5, 300);
        let n = norm_sqr(&x);
        let d = dot(&x, &x);
        assert!((n - d.re).abs() < 1e-9 * n);
        assert!(d.im.abs() < 1e-9 * n);
    }

    #[test]
    fn parallel_and_serial_paths_agree() {
        // A vector above the threshold exercises the rayon path; compare the
        // reduction with a plain serial sum.
        let x = v(6, PAR_THRESHOLD + 17);
        let serial: f64 = x.iter().map(|s| s.norm_sqr()).sum();
        assert!((norm_sqr(&x) - serial).abs() < 1e-8 * serial);
    }

    #[test]
    fn xpby_matches_reference() {
        let x = v(7, 64);
        let mut y = v(8, 64);
        let y0 = y.clone();
        xpby(&x, -0.75, &mut y);
        for i in 0..64 {
            let expect = x[i] + y0[i].scale(-0.75);
            assert!((y[i] - expect).norm_sqr() < 1e-24);
        }
    }

    #[test]
    fn caxpy_with_real_coefficient_matches_axpy() {
        let x = v(9, 128);
        let mut y1 = v(10, 128);
        let mut y2 = y1.clone();
        axpy(1.25, &x, &mut y1);
        caxpy(C64::new(1.25, 0.0), &x, &mut y2);
        for i in 0..128 {
            assert!((y1[i] - y2[i]).norm_sqr() < 1e-24);
        }
    }

    #[test]
    fn update_kernels_are_bit_identical_to_plain_loops() {
        // Above PAR_THRESHOLD so the chunked (and, under `arch-simd`, the
        // AVX2-twin) path runs; must match a plain serial loop to the bit.
        let n = PAR_THRESHOLD + 33;
        let x = v(12, n);
        let mut y = v(13, n);
        let mut yref = y.clone();
        axpy(1.0000001, &x, &mut y);
        let a = 1.0000001f64;
        for (yi, xi) in yref.iter_mut().zip(&x) {
            *yi += xi.scale(a);
        }
        assert_eq!(y, yref);
        scal(-0.375, &mut y);
        for yi in yref.iter_mut() {
            *yi = yi.scale(-0.375);
        }
        assert_eq!(y, yref);
    }

    #[test]
    fn scal_and_zero() {
        let mut x = v(11, 32);
        scal(0.5, &mut x);
        let n = norm_sqr(&x);
        zero(&mut x);
        assert_eq!(norm_sqr(&x), 0.0);
        assert!(n > 0.0);
    }
}
