//! Modeled shared objects for [`crate::explore::System`] adapters.
//!
//! These stand in for the real `std`/vendored primitives inside the shadow
//! execution: a FIFO channel, a mutex, and a plain register, each carrying
//! a stable FNV-derived object id for [`crate::Footprint`] reporting. The
//! adapters in [`crate::protocols`] compose them into the protocol cores.

use std::collections::VecDeque;

use crate::fnv1a_64;

/// Stable object id for footprints, derived from a name.
pub fn obj_id(name: &str) -> u64 {
    fnv1a_64(name.as_bytes())
}

/// FIFO channel standing in for `std::sync::mpsc` / the crossbeam shim.
///
/// Unlike the real channel the queue is inspectable and mutable in place —
/// fault adversaries (duplicate / corrupt / drop / reorder) are modeled as
/// scheduled tasks editing the queue, so every fault timing is just another
/// interleaving for the explorer to enumerate.
#[derive(Debug, Clone)]
pub struct ChanM<T> {
    id: u64,
    queue: VecDeque<T>,
}

impl<T> ChanM<T> {
    pub fn new(name: &str) -> Self {
        Self {
            id: obj_id(name),
            queue: VecDeque::new(),
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn send(&mut self, value: T) {
        self.queue.push_back(value);
    }

    pub fn try_recv(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    pub fn front(&self) -> Option<&T> {
        self.queue.front()
    }

    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.queue.front_mut()
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl<T: Clone> ChanM<T> {
    /// Duplicate the head frame in place (models duplicate delivery).
    pub fn duplicate_front(&mut self) {
        if let Some(front) = self.queue.front().cloned() {
            self.queue.push_front(front);
        }
    }
}

/// Mutex modeled as an ownable token; blocking is expressed through
/// `System::enabled`, not by spinning.
#[derive(Debug, Clone)]
pub struct MutexM {
    id: u64,
    holder: Option<usize>,
}

impl MutexM {
    pub fn new(name: &str) -> Self {
        Self {
            id: obj_id(name),
            holder: None,
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn is_free(&self) -> bool {
        self.holder.is_none()
    }

    pub fn holder(&self) -> Option<usize> {
        self.holder
    }

    /// Acquire for `task`. Callers must gate on `is_free` via `enabled`;
    /// acquiring a held mutex is a model bug surfaced in `check`.
    pub fn lock(&mut self, task: usize) -> Result<(), String> {
        match self.holder {
            Some(h) => Err(format!("task {task} locked a mutex held by task {h}")),
            None => {
                self.holder = Some(task);
                Ok(())
            }
        }
    }

    pub fn unlock(&mut self, task: usize) -> Result<(), String> {
        match self.holder {
            Some(h) if h == task => {
                self.holder = None;
                Ok(())
            }
            other => Err(format!(
                "task {task} unlocked a mutex it does not hold (holder: {other:?})"
            )),
        }
    }
}

/// Shared register with an object id, for counters and flags.
#[derive(Debug, Clone)]
pub struct RegM<T> {
    id: u64,
    value: T,
}

impl<T> RegM<T> {
    pub fn new(name: &str, value: T) -> Self {
        Self {
            id: obj_id(name),
            value,
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn get(&self) -> &T {
        &self.value
    }

    pub fn set(&mut self, value: T) {
        self.value = value;
    }
}

impl<T: Copy> RegM<T> {
    pub fn load(&self) -> T {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chan_is_fifo_and_duplicates_in_place() {
        let mut c = ChanM::new("wire");
        c.send(1);
        c.send(2);
        c.duplicate_front();
        assert_eq!(c.len(), 3);
        assert_eq!(c.try_recv(), Some(1));
        assert_eq!(c.try_recv(), Some(1));
        assert_eq!(c.try_recv(), Some(2));
        assert!(c.is_empty());
    }

    #[test]
    fn mutex_tracks_holder_and_rejects_misuse() {
        let mut m = MutexM::new("store");
        assert!(m.is_free());
        m.lock(0).unwrap();
        assert_eq!(m.holder(), Some(0));
        assert!(m.lock(1).is_err(), "double-lock is a model bug");
        assert!(m.unlock(1).is_err(), "non-holder unlock is a model bug");
        m.unlock(0).unwrap();
        assert!(m.is_free());
    }

    #[test]
    fn object_ids_are_stable_and_distinct() {
        assert_eq!(obj_id("wire"), obj_id("wire"));
        assert_ne!(obj_id("wire"), obj_id("nacks"));
    }
}
