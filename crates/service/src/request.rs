//! The solve-request schema and the content-addressed cache key derived
//! from it.
//!
//! The key is *canonical*: every field that changes the answer is folded in
//! with its exact bit pattern, and nothing else is. Two lessons are baked
//! in from cache-aliasing bugs this repository has already paid for:
//!
//! - the configuration enters by **content hash** of the gauge links, not
//!   by id or path — re-generating a configuration under a different id
//!   must still hit, and two configurations that happen to share an id
//!   namespace must never alias;
//! - the quark mass enters as **raw `f64` bits** (`to_bits`), never as a
//!   formatted string — `0.05` and `0.05 + 1 ulp` are different systems
//!   and must be different keys.
//!
//! Equality on [`CacheKey`] compares the *full tuple*, so even a 64-bit
//! config-hash collision cannot make two distinct requests share a cache
//! slot: the colliding entries simply occupy different keys.

/// Working tolerance tier of a solve. Sloppy solves are the high-volume
/// AMA bias samples; double solves are the correction term.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full tolerance (`1e-9`).
    Double,
    /// Relaxed tolerance (`1e-5`), the all-mode-averaging workhorse.
    Sloppy,
}

impl Precision {
    /// CG relative tolerance for this tier.
    pub fn tol(self) -> f64 {
        match self {
            Precision::Double => 1e-9,
            Precision::Sloppy => 1e-5,
        }
    }

    /// Stable one-byte tag folded into the cache key.
    pub fn tag(self) -> u8 {
        match self {
            Precision::Double => 0,
            Precision::Sloppy => 1,
        }
    }
}

/// Which solve pipeline serves the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// In-process Wilson normal-equation solve, batched multi-RHS.
    Dense,
    /// Sharded Möbius normal-equation solve through the fault-tolerant
    /// `cg_ft` stack (comm faults injected, checkpoint/restart live).
    Sharded,
}

impl Policy {
    /// Stable one-byte tag folded into the cache key.
    pub fn tag(self) -> u8 {
        match self {
            Policy::Dense => 0,
            Policy::Sharded => 1,
        }
    }
}

/// One solve request as admitted by the gateway.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveRequest {
    /// Submitting tenant (contraction campaign), for fair scheduling.
    pub tenant: u32,
    /// Which gauge configuration to solve against (gateway-local id; the
    /// cache key uses the configuration's content hash instead).
    pub config_id: u32,
    /// Seed of the Gaussian source vector.
    pub source_seed: u64,
    /// Quark mass.
    pub mass: f64,
    /// Tolerance tier.
    pub precision: Precision,
    /// Solve pipeline.
    pub policy: Policy,
    /// Arrival time in virtual ticks (monotone non-decreasing across a
    /// generated stream).
    pub arrival: u64,
}

/// Canonical content-addressed identity of a solve. See the module docs
/// for why each field has the representation it does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a over the raw bit pattern of every gauge link of the
    /// configuration (not its id, not its path).
    pub config_hash: u64,
    /// Source-vector seed (the source is fully determined by it).
    pub source_seed: u64,
    /// `mass.to_bits()` — exact, every ulp distinct.
    pub mass_bits: u64,
    /// [`Precision::tag`].
    pub precision: u8,
    /// [`Policy::tag`].
    pub policy: u8,
}

impl CacheKey {
    /// Derive the canonical key for `req` given the content hash of the
    /// configuration it names.
    pub fn canonical(req: &SolveRequest, config_hash: u64) -> Self {
        CacheKey {
            config_hash,
            source_seed: req.source_seed,
            mass_bits: req.mass.to_bits(),
            precision: req.precision.tag(),
            policy: req.policy.tag(),
        }
    }

    /// Stable filename stem for spilled entries. Every key field appears
    /// in full, so distinct keys can never collide on a spill path.
    pub fn file_stem(&self) -> String {
        format!(
            "c{:016x}-s{:016x}-m{:016x}-p{}{}",
            self.config_hash, self.source_seed, self.mass_bits, self.precision, self.policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(mass: f64) -> SolveRequest {
        SolveRequest {
            tenant: 0,
            config_id: 3,
            source_seed: 11,
            mass,
            precision: Precision::Sloppy,
            policy: Policy::Dense,
            arrival: 0,
        }
    }

    #[test]
    fn one_ulp_of_mass_changes_the_key() {
        let m = 0.05f64;
        let m_ulp = f64::from_bits(m.to_bits() + 1);
        assert_ne!(m, m_ulp);
        let k = CacheKey::canonical(&req(m), 42);
        let k_ulp = CacheKey::canonical(&req(m_ulp), 42);
        assert_ne!(k, k_ulp, "mass 0.05 and 0.05+1ulp must never alias");
        assert_ne!(k.file_stem(), k_ulp.file_stem());
    }

    #[test]
    fn key_uses_content_hash_not_config_id() {
        let mut a = req(0.05);
        let mut b = req(0.05);
        a.config_id = 1;
        b.config_id = 2;
        // Same content hash → same key, whatever the ids say.
        assert_eq!(CacheKey::canonical(&a, 7), CacheKey::canonical(&b, 7));
        // Different content under the same id → different key.
        assert_ne!(CacheKey::canonical(&a, 7), CacheKey::canonical(&a, 8));
    }

    #[test]
    fn precision_and_policy_are_key_material() {
        let r = req(0.2);
        let base = CacheKey::canonical(&r, 1);
        let mut d = r;
        d.precision = Precision::Double;
        assert_ne!(base, CacheKey::canonical(&d, 1));
        let mut s = r;
        s.policy = Policy::Sharded;
        assert_ne!(base, CacheKey::canonical(&s, 1));
    }
}
