//! Happens-before data-race detection with FNV-keyed vector clocks.
//!
//! A FastTrack-style detector small enough to vendor: every participating
//! OS thread gets a vector clock; sync objects (locks, channels, pool job
//! handoffs) are identified by stable FNV-derived keys and carry the clock
//! published by their last releasers; shared locations are identified the
//! same way and remember their last write epoch plus the read epochs since.
//!
//! Instrumentation is explicit, not compiler-driven: the vendored
//! `parking_lot` / `crossbeam` / `rayon` shims call [`acquire`] /
//! [`release`] at their sync points when built with their `race-detect`
//! feature, and code under test marks interesting shared accesses with
//! [`on_read`] / [`on_write`]. A conflicting pair of marked accesses with
//! no happens-before path through recorded sync edges is reported — by
//! default with a panic, so an instrumented test fails loudly exactly like
//! it would under ThreadSanitizer, but on a stable toolchain in ordinary
//! wall-clock time.
//!
//! Soundness note: edges are recorded per sync *object*, joining every
//! release into the object's clock. This can only over-synchronize (merge
//! more than the real happens-before order), so the detector may miss
//! races (like any dynamic detector, it only sees the executed schedule)
//! but never reports a false one for the edges it models.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::fnv1a_64;

type VClock = Vec<u64>;

/// `a` happened-before the thread owning `clock` iff the epoch is covered.
fn covered(clock: &VClock, tid: usize, epoch: u64) -> bool {
    clock.get(tid).copied().unwrap_or(0) >= epoch
}

fn join_into(dst: &mut VClock, src: &VClock) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).max(*s);
    }
}

/// One detected race: two marked accesses to the same key with no
/// happens-before ordering between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    pub key: u64,
    /// Registered name for the key, or a hex fallback.
    pub name: String,
    /// "write-write", "write-read", or "read-write" (prior access first).
    pub kind: &'static str,
    /// (prior thread, current thread) detector ids.
    pub threads: (usize, usize),
}

#[derive(Default)]
struct Location {
    last_write: Option<(usize, u64)>,
    /// Read epochs since the last write, one slot per reader thread.
    reads: Vec<(usize, u64)>,
}

#[derive(Default)]
struct Detector {
    /// Per-thread vector clocks, indexed by detector thread id.
    threads: Vec<VClock>,
    /// Sync-object clocks: what the releasers of this key had observed.
    sync: BTreeMap<u64, VClock>,
    /// Marked shared locations.
    locations: BTreeMap<u64, Location>,
    /// Key → human-readable name, filled by [`key`] / [`keyed`].
    names: BTreeMap<u64, String>,
    reports: Vec<RaceReport>,
}

impl Detector {
    fn name_of(&self, key: u64) -> String {
        self.names
            .get(&key)
            .cloned()
            .unwrap_or_else(|| format!("key:{key:016x}"))
    }

    fn record(&mut self, key: u64, kind: &'static str, prior: usize, current: usize) -> RaceReport {
        let report = RaceReport {
            key,
            name: self.name_of(key),
            kind,
            threads: (prior, current),
        };
        self.reports.push(report.clone());
        report
    }
}

fn detector() -> MutexGuard<'static, Detector> {
    static DETECTOR: OnceLock<Mutex<Detector>> = OnceLock::new();
    DETECTOR
        .get_or_init(|| Mutex::new(Detector::default()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

static PANIC_ON_RACE: AtomicBool = AtomicBool::new(true);

thread_local! {
    static TID: std::cell::OnceCell<usize> = const { std::cell::OnceCell::new() };
}

/// Detector id of the calling thread, registering it on first use.
fn my_tid() -> usize {
    TID.with(|cell| {
        *cell.get_or_init(|| {
            let mut det = detector();
            let tid = det.threads.len();
            let mut clock = vec![0; tid + 1];
            // A thread's own component starts at 1 so its very first access
            // is never mistaken for the zero epoch other threads trivially
            // cover.
            clock[tid] = 1;
            det.threads.push(clock);
            tid
        })
    })
}

/// Derive (and register) a sync/location key from a name.
pub fn key(name: &str) -> u64 {
    let k = fnv1a_64(name.as_bytes());
    let mut det = detector();
    det.names.entry(k).or_insert_with(|| name.to_string());
    k
}

/// Derive a key from a name and a numeric discriminator (job ids, chunk
/// indices, lock addresses) without allocating per call site.
pub fn keyed(name: &str, salt: u64) -> u64 {
    let base = fnv1a_64(name.as_bytes());
    let k = fnv1a_64(&[base.to_le_bytes(), salt.to_le_bytes()].concat());
    let mut det = detector();
    det.names
        .entry(k)
        .or_insert_with(|| format!("{name}#{salt}"));
    k
}

/// Record an acquire edge: the caller now observes everything published to
/// `key` by prior [`release`] calls.
pub fn acquire(key: u64) {
    let tid = my_tid();
    let mut det = detector();
    if let Some(obj) = det.sync.get(&key).cloned() {
        join_into(&mut det.threads[tid], &obj);
    }
}

/// Record a release edge: publish the caller's clock to `key` and advance
/// the caller's epoch.
pub fn release(key: u64) {
    let tid = my_tid();
    let mut det = detector();
    let mine = det.threads[tid].clone();
    let obj = det.sync.entry(key).or_default();
    join_into(obj, &mine);
    det.threads[tid][tid] += 1;
}

fn report_race(report: &RaceReport) {
    if PANIC_ON_RACE.load(Ordering::SeqCst) {
        panic!(
            "data race on {}: {} between thread {} and thread {} \
             (no happens-before edge recorded)",
            report.name, report.kind, report.threads.0, report.threads.1
        );
    }
}

/// Mark a write to the shared location `key`, reporting any conflicting
/// unordered prior access.
pub fn on_write(key: u64) {
    let tid = my_tid();
    let pending = {
        let mut det = detector();
        let mine = det.threads[tid].clone();
        let mut found: Option<(&'static str, usize)> = None;
        let loc = det.locations.entry(key).or_default();
        if let Some((wt, we)) = loc.last_write {
            if wt != tid && !covered(&mine, wt, we) {
                found = Some(("write-write", wt));
            }
        }
        if found.is_none() {
            for &(rt, re) in &loc.reads {
                if rt != tid && !covered(&mine, rt, re) {
                    found = Some(("read-write", rt));
                    break;
                }
            }
        }
        let epoch = mine.get(tid).copied().unwrap_or(1);
        let loc = det.locations.entry(key).or_default();
        loc.last_write = Some((tid, epoch));
        loc.reads.clear();
        found.map(|(kind, prior)| det.record(key, kind, prior, tid))
    };
    if let Some(report) = pending {
        report_race(&report);
    }
}

/// Mark a read of the shared location `key`, reporting an unordered prior
/// write.
pub fn on_read(key: u64) {
    let tid = my_tid();
    let pending = {
        let mut det = detector();
        let mine = det.threads[tid].clone();
        let mut found: Option<usize> = None;
        let loc = det.locations.entry(key).or_default();
        if let Some((wt, we)) = loc.last_write {
            if wt != tid && !covered(&mine, wt, we) {
                found = Some(wt);
            }
        }
        let epoch = mine.get(tid).copied().unwrap_or(1);
        match loc.reads.iter_mut().find(|(rt, _)| *rt == tid) {
            Some(slot) => slot.1 = epoch,
            None => loc.reads.push((tid, epoch)),
        }
        found.map(|prior| det.record(key, "write-read", prior, tid))
    };
    if let Some(report) = pending {
        report_race(&report);
    }
}

/// Toggle panic-on-race (default on); returns the previous setting.
/// Detection keeps accumulating [`RaceReport`]s either way.
pub fn set_panic_on_race(on: bool) -> bool {
    PANIC_ON_RACE.swap(on, Ordering::SeqCst)
}

/// Drain accumulated reports (for tests asserting presence/absence).
pub fn take_reports() -> Vec<RaceReport> {
    std::mem::take(&mut detector().reports)
}

/// Forget all sync-object clocks and marked locations, for isolation
/// between test phases. Thread registrations and clocks survive (they are
/// monotone, so stale entries can only add ordering, never fake a race).
pub fn reset() {
    let mut det = detector();
    det.sync.clear();
    det.locations.clear();
    det.reports.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The detector state is process-global, so exercise every scenario
    /// from one test (Rust runs tests in threads within one process).
    #[test]
    fn detects_unordered_accesses_and_respects_sync_edges() {
        let prev = set_panic_on_race(false);
        reset();

        // Same-thread accesses never race.
        let solo = key("race.test.solo");
        on_write(solo);
        on_read(solo);
        on_write(solo);
        assert!(take_reports().is_empty());

        // Unordered cross-thread write/write must be reported.
        let shared = key("race.test.shared");
        on_write(shared);
        std::thread::spawn(move || on_write(shared)).join().unwrap();
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "unsynchronized write-write");
        assert_eq!(reports[0].kind, "write-write");
        assert_eq!(reports[0].name, "race.test.shared");

        // The same pattern through a release/acquire pair is clean.
        reset();
        let guarded = key("race.test.guarded");
        let lock = key("race.test.lock");
        on_write(guarded);
        release(lock);
        std::thread::spawn(move || {
            acquire(lock);
            on_write(guarded);
        })
        .join()
        .unwrap();
        assert!(
            take_reports().is_empty(),
            "release/acquire orders the writes"
        );

        // Write-read with no edge is reported; keyed() discriminates.
        reset();
        let a = keyed("race.test.chunk", 0);
        let b = keyed("race.test.chunk", 1);
        assert_ne!(a, b);
        on_write(a);
        std::thread::spawn(move || {
            on_read(a);
            on_write(b);
        })
        .join()
        .unwrap();
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "only the unsynchronized read races");
        assert_eq!(reports[0].kind, "write-read");
        assert_eq!(reports[0].name, "race.test.chunk#0");

        set_panic_on_race(prev);
    }
}
