//! `repro deflation` — batched multi-RHS solves with low-mode deflation.
//!
//! For each quark mass the experiment solves the same `nrhs` Gaussian
//! sources against the Wilson normal operator `D†D` three ways:
//!
//! - **sequential** (`solver_id` 0): `nrhs` independent [`cg`] solves —
//!   the 1-RHS baseline every other row is compared against;
//! - **block** (`solver_id` 1): one [`cg_block`] solve over the
//!   interleaved [`BlockSpinor`] — identical arithmetic, but every
//!   operator application loads the gauge links once for all still-active
//!   columns;
//! - **deflated block** (`solver_id` 2): [`deflated_cg_block`] seeded with
//!   the `x₀ = V Λ⁻¹ V† b` guess from a restarted-Lanczos low-mode
//!   subspace computed once per mass (outside the timed region).
//!
//! Two claims are asserted, not just recorded:
//!
//! - the block solve is **bit-identical** to the sequential baseline —
//!   per-column [`SolveStats`] compare equal and solutions match spinor
//!   for spinor;
//! - at the lightest mass, deflation strictly reduces the total CG
//!   iteration count (the low modes it removes are exactly the ones that
//!   dominate light-quark convergence).
//!
//! `link_gib` is the gauge-link traffic actually loaded (block applies
//! load the links once per apply regardless of width); `eff_gib_per_s` is
//! the *sequential-equivalent* traffic divided by measured wall time, i.e.
//! the effective bandwidth relative to the 1-RHS baseline. Timings come
//! from an injected [`Clock`], so the golden test drives the experiment
//! with a [`ManualClock`](obs::ManualClock) and gets a bit-stable CSV.

use crate::output::{print_table, ExperimentOutput};
use lqcd_core::prelude::*;
use obs::{Clock, Registry, WallClock};

/// Options for the deflation subcommand.
#[derive(Default)]
pub struct DeflationOpts {
    /// Smaller lattice, fewer sources and modes — for CI smoke runs.
    pub quick: bool,
}

/// The CSV header `deflation.csv` is written (and schema-checked) against.
pub const CSV_HEADER: &str = "mass_id,mass,nrhs,n_modes,solver_id,converged,\
iters_total,iters_per_rhs,applies,link_gib,seconds,eff_gib_per_s";

/// One solver's outcome on the common set of sources.
struct SolverRun {
    /// Human label for the console table.
    label: &'static str,
    /// 0 sequential, 1 block, 2 deflated block (CSV `solver_id`).
    solver_id: usize,
    /// Every column converged.
    converged: bool,
    /// Total CG iterations across all columns.
    iters_total: usize,
    /// Gauge-link-loading operator applications.
    applies: u64,
    /// Measured seconds for the solve phase.
    seconds: f64,
    stats: Vec<SolveStats>,
    solutions: Vec<Vec<Spinor<f64>>>,
}

fn summarize(
    label: &'static str,
    solver_id: usize,
    applies: u64,
    seconds: f64,
    stats: Vec<SolveStats>,
    solutions: Vec<Vec<Spinor<f64>>>,
) -> SolverRun {
    SolverRun {
        label,
        solver_id,
        converged: stats.iter().all(|s| s.converged),
        iters_total: stats.iter().map(|s| s.iterations).sum(),
        applies,
        seconds,
        stats,
        solutions,
    }
}

/// Bytes of gauge links one single-column normal-op apply loads:
/// `D` then `D†`, 8 neighbor links per site.
fn link_bytes_per_apply(volume: usize) -> f64 {
    (2 * 8 * volume * std::mem::size_of::<Su3<f64>>()) as f64
}

/// Run the experiment and write `deflation.csv` + `deflation.md` + a
/// console table. Timings are read from `clock` so tests can inject a
/// [`ManualClock`](obs::ManualClock) for bit-stable output.
pub fn run_deflation_with_clock(
    out: &ExperimentOutput,
    opts: &DeflationOpts,
    clock: &dyn Clock,
) -> std::io::Result<()> {
    let (dims, nrhs, n_modes, krylov_dim, masses): (_, usize, usize, usize, &[f64]) = if opts.quick
    {
        ([4usize, 4, 2, 4], 4, 6, 48, &[0.2, 0.05])
    } else {
        ([4usize, 4, 4, 8], 12, 12, 72, &[0.2, 0.08, 0.03])
    };
    println!(
        "repro deflation: {} nrhs={nrhs} modes={n_modes} masses {masses:?}",
        lqcd_core::lattice::volume_string(dims)
    );

    let lat = Lattice::new(dims);
    let v = lat.volume();
    let gauge = GaugeField::<f64>::hot(&lat, 7);
    let params = CgParams {
        tol: 1e-8,
        max_iter: 20_000,
    };
    let cols: Vec<Vec<Spinor<f64>>> = (0..nrhs)
        .map(|j| FermionField::<f64>::gaussian(v, 100 + j as u64).data)
        .collect();
    let bb = BlockSpinor::from_columns(&cols);
    let per_apply = link_bytes_per_apply(v);
    let gib = 1024.0f64.powi(3);
    let lightest = masses.iter().cloned().fold(f64::INFINITY, f64::min);

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut table: Vec<Vec<String>> = Vec::new();
    let mut md_rows: Vec<String> = Vec::new();
    for (mass_id, &mass) in masses.iter().enumerate() {
        let d = WilsonDirac::new(&lat, &gauge, mass, true);
        let a = NormalOp::new(&d);

        // The subspace is computed once per mass, outside every timed
        // region — in production it amortizes over the full source stream.
        let defl = Deflation::compute(&a, &LanczosParams::new(n_modes, krylov_dim, 13));

        // solver 0: the 1-RHS baseline, one cg per source.
        let sequential = {
            let reg = Registry::new();
            let _guard = reg.install_scoped();
            let t0 = clock.now();
            let mut stats = Vec::with_capacity(nrhs);
            let mut solutions = Vec::with_capacity(nrhs);
            for c in &cols {
                let mut x = vec![Spinor::zero(); v];
                stats.push(cg(&a, &mut x, c, params));
                solutions.push(x);
            }
            let seconds = clock.now() - t0;
            // One apply forms each initial residual, one more per
            // iteration (sources are Gaussian, never the zero shortcut).
            let applies: u64 = stats.iter().map(|s| s.iterations as u64 + 1).sum();
            summarize("cg x nrhs", 0, applies, seconds, stats, solutions)
        };

        // solver 1: one block solve sharing link traffic.
        let block = {
            let reg = Registry::new();
            let (stats, xb, seconds) = {
                let _guard = reg.install_scoped();
                let mut rb = ReliableBlock::new(&a);
                let mut xb = BlockSpinor::zeros(v, nrhs);
                let t0 = clock.now();
                let stats = cg_block(&mut rb, &mut xb, &bb, params);
                (stats, xb, clock.now() - t0)
            };
            let applies = reg.counter("solver.cg_block.block_applies").get();
            let solutions = (0..nrhs).map(|j| xb.col(j)).collect();
            summarize("cg_block", 1, applies, seconds, stats, solutions)
        };

        // solver 2: block solve from the low-mode guess.
        let deflated = {
            let reg = Registry::new();
            let (stats, xb, seconds) = {
                let _guard = reg.install_scoped();
                let mut rb = ReliableBlock::new(&a);
                let mut xb = BlockSpinor::zeros(v, nrhs);
                let t0 = clock.now();
                let stats = deflated_cg_block(&mut rb, &defl, &mut xb, &bb, params);
                (stats, xb, clock.now() - t0)
            };
            let applies = reg.counter("solver.cg_block.block_applies").get();
            let solutions = (0..nrhs).map(|j| xb.col(j)).collect();
            summarize("cg_block+defl", 2, applies, seconds, stats, solutions)
        };

        // The block path must be indistinguishable from the baseline —
        // same per-column stats (flops included), same solution bits.
        for j in 0..nrhs {
            assert_eq!(
                block.stats[j], sequential.stats[j],
                "mass {mass}: block stats of column {j} diverge from sequential cg"
            );
            assert_eq!(
                block.solutions[j], sequential.solutions[j],
                "mass {mass}: block solution of column {j} diverges from sequential cg"
            );
        }
        assert!(
            sequential.converged,
            "mass {mass}: baseline cg failed to converge"
        );
        if mass == lightest {
            assert!(
                deflated.iters_total < block.iters_total,
                "mass {mass}: deflation must reduce iterations at the lightest mass \
                 ({} vs {})",
                deflated.iters_total,
                block.iters_total
            );
        }

        // `eff_gib_per_s` charges every run with the traffic the baseline
        // would have moved for the same per-column iteration counts.
        let seq_equiv_gib = |run: &SolverRun| {
            run.stats
                .iter()
                .map(|s| s.iterations as f64 + 1.0)
                .sum::<f64>()
                * per_apply
                / gib
        };
        for run in [&sequential, &block, &deflated] {
            let link_gib = run.applies as f64 * per_apply / gib;
            let eff = if run.seconds > 0.0 {
                seq_equiv_gib(run) / run.seconds
            } else {
                0.0
            };
            rows.push(vec![
                mass_id as f64,
                mass,
                nrhs as f64,
                defl.n_modes() as f64,
                run.solver_id as f64,
                run.converged as u8 as f64,
                run.iters_total as f64,
                run.iters_total as f64 / nrhs as f64,
                run.applies as f64,
                link_gib,
                run.seconds,
                eff,
            ]);
            table.push(vec![
                format!("{mass}"),
                run.label.into(),
                if run.converged { "yes" } else { "NO" }.into(),
                format!("{:.1}", run.iters_total as f64 / nrhs as f64),
                format!("{}", run.applies),
                format!("{link_gib:.3}"),
                format!("{eff:.2}"),
            ]);
        }
        md_rows.push(format!(
            "| {mass} | {nrhs} | {} | {:.1} | {:.1} | {:.1} | {:.1}x | {} |",
            defl.n_modes(),
            sequential.iters_total as f64 / nrhs as f64,
            block.iters_total as f64 / nrhs as f64,
            deflated.iters_total as f64 / nrhs as f64,
            sequential.applies as f64 / block.applies.max(1) as f64,
            sequential.iters_total.saturating_sub(deflated.iters_total),
        ));
    }

    let path = out.csv("deflation.csv", CSV_HEADER, &rows)?;
    print_table(
        "deflation: batched solves vs the 1-RHS baseline",
        &[
            "mass",
            "solver",
            "conv",
            "iters/RHS",
            "applies",
            "link GiB",
            "eff GiB/s",
        ],
        &table,
    );
    write_summary(out, nrhs, &md_rows)?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Run with the wall clock and write `deflation.csv` + `deflation.md`.
pub fn run_deflation(out: &ExperimentOutput, opts: &DeflationOpts) -> std::io::Result<()> {
    run_deflation_with_clock(out, opts, &WallClock::new())
}

/// Write the `deflation.md` iteration-savings summary.
fn write_summary(out: &ExperimentOutput, nrhs: usize, md_rows: &[String]) -> std::io::Result<()> {
    let mut md = String::new();
    md.push_str("# Batched multi-RHS solves with low-mode deflation\n\n");
    md.push_str(&format!(
        "Each mass solves the same {nrhs} Gaussian sources against the Wilson \
         normal operator\nthree ways: sequential CG (the 1-RHS baseline), \
         `cg_block` (bit-identical arithmetic,\nshared gauge-link traffic), and \
         `cg_block` from the Lanczos low-mode guess\n`x0 = V L^-1 V^t b`. \
         The block column is asserted bit-identical to the baseline;\nthe \
         link-traffic column is the factor by which batching shrinks \
         link loads\n(sequential applies / block applies).\n\n"
    ));
    md.push_str(
        "| mass | nrhs | modes | seq iters/RHS | block iters/RHS | deflated iters/RHS \
         | link-traffic saving | iters saved |\n",
    );
    md.push_str("|---|---|---|---|---|---|---|---|\n");
    for row in md_rows {
        md.push_str(row);
        md.push('\n');
    }
    md.push_str(
        "\nDeflation savings grow toward light masses, where the projected-out \
         low modes\nare exactly the slowly-converging directions; the assertion \
         in `repro deflation`\nrequires a strict reduction at the lightest \
         tested mass.\n",
    );
    std::fs::write(out.path("deflation.md"), md)?;
    Ok(())
}

/// `--check-schema FILE`: verify a committed `deflation.csv` still has the
/// column layout this build writes. Exits non-zero on mismatch.
pub fn check_schema(file: &str) {
    let committed = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("repro deflation --check-schema: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let header = committed.lines().next().unwrap_or("");
    if header == CSV_HEADER {
        println!("schema check OK: {file} matches the current deflation.csv columns");
    } else {
        eprintln!("schema mismatch in {file}:");
        eprintln!("  committed: {header}");
        eprintln!("  expected:  {CSV_HEADER}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::ManualClock;

    #[test]
    fn csv_header_names_the_batching_columns() {
        let cols: Vec<&str> = CSV_HEADER.split(',').collect();
        assert_eq!(cols.len(), 12);
        for c in [
            "mass",
            "nrhs",
            "n_modes",
            "solver_id",
            "iters_per_rhs",
            "link_gib",
            "eff_gib_per_s",
        ] {
            assert!(cols.contains(&c), "missing column {c}");
        }
    }

    #[test]
    fn quick_run_writes_all_solver_rows() {
        let dir = std::env::temp_dir().join("repro_deflation_test");
        let out = ExperimentOutput::new(&dir).unwrap();
        let clock = ManualClock::new(0.0);
        run_deflation_with_clock(&out, &DeflationOpts { quick: true }, &*clock).unwrap();
        let content = std::fs::read_to_string(out.path("deflation.csv")).unwrap();
        let mut lines = content.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        // 2 quick masses x 3 solvers.
        assert_eq!(lines.count(), 2 * 3);
        assert!(out.path("deflation.md").exists());
        std::fs::remove_file(out.path("deflation.csv")).ok();
        std::fs::remove_file(out.path("deflation.md")).ok();
    }
}
