//! Tables I and II of the paper.

use crate::output::print_table;
use coral_machine::all_machines;

/// Table I: performance attributes of the measurement methodology.
pub fn table1() {
    print_table(
        "Table I — performance attributes",
        &["Attribute", "Value"],
        &[
            vec!["Category of achievement".into(), "time to solution".into()],
            vec!["method".into(), "explicit".into()],
            vec!["reporting".into(), "whole application including I/O".into()],
            vec!["precision".into(), "mixed-precision".into()],
            vec!["system scale".into(), "full-scale system".into()],
            vec!["measurement method".into(), "FLOP count".into()],
        ],
    );
    println!(
        "\nFlop accounting: {} flops per 5D site per preconditioned apply,\n\
         arithmetic intensity {}, percent-of-peak scale {}x against FP32 peak.",
        lqcd_core::flops::DWF_PREC_FLOPS_PER_SITE,
        lqcd_core::flops::CG_ARITHMETIC_INTENSITY,
        lqcd_core::flops::PEAK_ACCOUNTING_SCALE,
    );
}

/// Table II: the systems used in the study.
pub fn table2() {
    let machines = all_machines();
    let mut rows = Vec::new();
    let push = |rows: &mut Vec<Vec<String>>, label: &str, f: &dyn Fn(usize) -> String| {
        let mut row = vec![label.to_string()];
        for i in 0..machines.len() {
            row.push(f(i));
        }
        rows.push(row);
    };
    push(&mut rows, "nodes", &|i| machines[i].nodes.to_string());
    push(&mut rows, "GPUs / node", &|i| {
        machines[i].gpus_per_node.to_string()
    });
    push(&mut rows, "CPU", &|i| machines[i].cpu.clone());
    push(&mut rows, "GPU", &|i| machines[i].gpu.clone());
    push(&mut rows, "FP32 TFLOPS / node", &|i| {
        format!("{}", machines[i].fp32_tflops_per_node)
    });
    push(&mut rows, "GPU bw / node GB/s", &|i| {
        format!("{}", machines[i].gpu_bw_per_node_gbs)
    });
    push(&mut rows, "CPU-GPU bw GB/s", &|i| {
        format!("{}", machines[i].cpu_gpu_bw_gbs)
    });
    push(&mut rows, "Interconnect", &|i| {
        machines[i].interconnect.clone()
    });
    push(&mut rows, "GCC", &|i| machines[i].gcc.clone());
    push(&mut rows, "MPI", &|i| machines[i].mpi.clone());
    push(&mut rows, "CUDA toolkit", &|i| machines[i].cuda.clone());
    push(&mut rows, "eff. GB/s per GPU (model)", &|i| {
        format!("{:.0}", machines[i].effective_gpu_bw_gbs())
    });

    print_table(
        "Table II — systems used in this study",
        &["Attribute", "Titan", "Ray", "Sierra", "Summit"],
        &rows,
    );
}
