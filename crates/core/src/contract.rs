//! Tensor contractions of propagators into hadron correlators — the "3% of
//! execution time" CPU-only stage of the paper's workflow that `mpi_jm`
//! co-schedules with GPU propagator solves.
//!
//! Implemented here:
//! - generic meson two-point functions `C(t) = Σx Tr[Γ_snk S_a Γ_src γ5 S_b† γ5]`,
//! - the proton (nucleon) two-point function via explicit Wick contraction
//!   of the `ε_abc (u^T Cγ5 d) u` interpolating operator,
//! - the substituted contractions used by the Feynman–Hellmann method, where
//!   one quark line at a time is replaced by a current-inserted propagator.

use crate::complex::C64;
use crate::gamma::{c_gamma5, gamma5_dense, SpinMatrix, NS};
use crate::lattice::Lattice;
use crate::prop::Propagator;

/// Sites per parallel chunk of a contraction volume sum. Constant (never
/// width-derived) so the reduction shape — and the correlator's bits — are
/// identical at any thread count.
const SITE_GRAIN: usize = 1024;

/// Timeslice-binned volume sum `corr[(t(x) + nt - t0) % nt] += site(x)`:
/// each fixed chunk of sites folds into its own `nt`-length partial
/// correlator, and partials are added slice-wise in chunk-index order.
fn timeslice_sum<T, F>(lattice: &Lattice, t0: usize, zero: T, site: F) -> Vec<T>
where
    T: Copy + std::ops::AddAssign + Send + Sync,
    F: Fn(usize) -> (usize, T) + Sync + Send,
{
    let nt = lattice.nt();
    rayon::reduce_chunks(
        lattice.volume(),
        SITE_GRAIN,
        || vec![zero; nt],
        |mut corr, sites| {
            for x in sites {
                let (t, v) = site(x);
                corr[(t + nt - t0) % nt] += v;
            }
            corr
        },
        |mut a, b| {
            for (ai, bi) in a.iter_mut().zip(b) {
                *ai += bi;
            }
            a
        },
    )
}

/// The 6 non-zero entries of the ε tensor as (a, b, c, sign).
const EPSILON: [(usize, usize, usize, f64); 6] = [
    (0, 1, 2, 1.0),
    (1, 2, 0, 1.0),
    (2, 0, 1, 1.0),
    (0, 2, 1, -1.0),
    (2, 1, 0, -1.0),
    (1, 0, 2, -1.0),
];

/// Generic meson two-point function with sink and source spin structures:
/// `C(t) = Σ_x Tr[ Γ_snk S_a(x,0) Γ_src γ5 S_b(x,0)† γ5 ]`,
/// time-sliced relative to the source time. For `Γ_snk = Γ_src = γ5` this is
/// the pion correlator `Σ |S|²`.
pub fn meson_correlator(
    lattice: &Lattice,
    prop_a: &Propagator,
    prop_b: &Propagator,
    gamma_snk: &SpinMatrix<f64>,
    gamma_src: &SpinMatrix<f64>,
) -> Vec<C64> {
    assert_eq!(prop_a.source_site, prop_b.source_site, "same source needed");
    let t0 = prop_a.source_time;
    let g5 = gamma5_dense();
    // Γ̃_src = γ5 Γ_src γ5 is applied to the conjugated propagator:
    // Tr[Γ_snk S_a Γ_src γ5 S_b† γ5] = Σ (Γ_snk S_a)_{..} (γ5 Γ_src† γ5 ...).
    timeslice_sum(lattice, t0, C64::zero(), |x| {
        let ma = prop_a.site_matrix(x);
        let mb = prop_b.site_matrix(x);
        let mut acc = C64::zero();
        // Tr over spin-color: Γ_snk(s1,s2) S_a[(s2,c1),(s3,c2)]
        // Γ_src(s3,s4) [γ5 S_b† γ5][(s4,c2),(s1,c1)]
        // with [γ5 S_b† γ5][(s4,c2),(s1,c1)]
        //    = γ5(s4) γ5(s1) conj(S_b[(s1,c1),(s4,c2)]).
        for s1 in 0..NS {
            for s2 in 0..NS {
                let gk = gamma_snk.m[s1][s2];
                if gk.norm_sqr() == 0.0 {
                    continue;
                }
                for s3 in 0..NS {
                    for s4 in 0..NS {
                        let gs = gamma_src.m[s3][s4];
                        if gs.norm_sqr() == 0.0 {
                            continue;
                        }
                        let phase = g5.m[s4][s4] * g5.m[s1][s1];
                        for c1 in 0..3 {
                            for c2 in 0..3 {
                                let a = ma[s2 * 3 + c1][s3 * 3 + c2];
                                let b = mb[s1 * 3 + c1][s4 * 3 + c2].conj();
                                acc += gk * gs * phase * a * b;
                            }
                        }
                    }
                }
            }
        }
        (lattice.time_of(x), acc)
    })
}

/// Pion correlator via the γ5-hermiticity shortcut: `C(t) = Σ_x Σ |S(x)|²`.
/// Used both as the physical pseudoscalar channel and as a cross-check of
/// [`meson_correlator`].
pub fn pion_correlator(lattice: &Lattice, prop: &Propagator) -> Vec<f64> {
    timeslice_sum(lattice, prop.source_time, 0.0f64, |x| {
        let mut acc = 0.0;
        for col in &prop.columns {
            acc += col.data[x].norm_sqr();
        }
        (lattice.time_of(x), acc)
    })
}

/// Proton two-point function with an arbitrary sink spin projector:
///
/// `C(t) = Σ_x ε_abc ε_a'b'c' (Cγ5)_{αβ} (Cγ5)_{α'β'} P_{γ'γ}
///         S_d^{bb'}_{ββ'} [ S_u^{aa'}_{αα'} S_u^{cc'}_{γγ'}
///                          − S_u^{ac'}_{αγ'} S_u^{ca'}_{γα'} ]`
///
/// The two terms are the direct and exchange Wick pairings of the two up
/// quarks.
pub fn proton_correlator(
    lattice: &Lattice,
    prop_u: &Propagator,
    prop_d: &Propagator,
    projector: &SpinMatrix<f64>,
) -> Vec<C64> {
    proton_correlator_general(lattice, prop_u, prop_u, prop_d, projector)
}

/// Proton contraction with independently substitutable up-quark lines:
/// `u1` contracts the `u_a` line, `u2` the `u_c` line. Used by the
/// Feynman–Hellmann substitution (one line at a time carries the current).
pub fn proton_correlator_general(
    lattice: &Lattice,
    u1: &Propagator,
    u2: &Propagator,
    d: &Propagator,
    projector: &SpinMatrix<f64>,
) -> Vec<C64> {
    let t0 = d.source_time;
    let cg5 = c_gamma5();

    // Precompute the sparse entries of Cγ5 (4 non-zeros, all real).
    let mut cg5_entries: Vec<(usize, usize, f64)> = Vec::new();
    for a in 0..NS {
        for b in 0..NS {
            if cg5.m[a][b].norm_sqr() > 0.0 {
                cg5_entries.push((a, b, cg5.m[a][b].re));
            }
        }
    }

    timeslice_sum(lattice, t0, C64::zero(), |x| {
        let mu1 = u1.site_matrix(x);
        let mu2 = u2.site_matrix(x);
        let md = d.site_matrix(x);
        let mut acc = C64::zero();
        for &(a, b, c, sgn) in &EPSILON {
            for &(ap, bp, cp, sgnp) in &EPSILON {
                let color_sign = sgn * sgnp;
                for &(al, be, w1) in &cg5_entries {
                    for &(alp, bep, w2) in &cg5_entries {
                        let sd = md[be * 3 + b][bep * 3 + bp];
                        let w = color_sign * w1 * w2;
                        for ga in 0..NS {
                            for gap in 0..NS {
                                let p = projector.m[gap][ga];
                                if p.norm_sqr() == 0.0 {
                                    continue;
                                }
                                // Direct pairing.
                                let direct =
                                    mu1[al * 3 + a][alp * 3 + ap] * mu2[ga * 3 + c][gap * 3 + cp];
                                // Exchange pairing.
                                let exchange =
                                    mu1[al * 3 + a][gap * 3 + cp] * mu2[ga * 3 + c][alp * 3 + ap];
                                acc += p * sd * (direct - exchange) * C64::new(w, 0.0);
                            }
                        }
                    }
                }
            }
        }
        (lattice.time_of(x), acc)
    })
}

/// Momentum-projected pion correlator:
/// `C(p, t) = Σ_x e^{−i p·x} Σ |S(x)|²`-style with the phase on the sink,
/// for integer momentum `n = (nx, ny, nz)` in units of `2π/L`.
pub fn pion_correlator_momentum(lattice: &Lattice, prop: &Propagator, n_mom: [i32; 3]) -> Vec<C64> {
    let dims = lattice.dims();
    timeslice_sum(lattice, prop.source_time, C64::zero(), |x| {
        let c = lattice.coords(x);
        let mut phase = 0.0f64;
        for (k, &n) in n_mom.iter().enumerate() {
            phase += 2.0 * std::f64::consts::PI * n as f64 * c[k] as f64 / dims[k] as f64;
        }
        let w = C64::new(phase.cos(), -phase.sin());
        let mut acc = 0.0;
        for col in &prop.columns {
            acc += col.data[x].norm_sqr();
        }
        (lattice.time_of(x), w * C64::new(acc, 0.0))
    })
}

/// Effective mass `m_eff(t) = ln[C(t) / C(t+1)]` of a decaying correlator.
pub fn effective_mass(corr: &[f64]) -> Vec<f64> {
    (0..corr.len().saturating_sub(1))
        .map(|t| {
            if corr[t] > 0.0 && corr[t + 1] > 0.0 {
                (corr[t] / corr[t + 1]).ln()
            } else {
                f64::NAN
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GaugeField;
    use crate::gamma::parity_projector;
    use crate::prop::{PropagatorSolver, SolverKind};

    fn quenched_setup() -> (Lattice, GaugeField<f64>) {
        let lat = Lattice::new([4, 4, 4, 8]);
        let mut ens = crate::gauge::QuenchedEnsemble::cold_start(
            &lat,
            crate::gauge::HeatbathParams { beta: 6.0, n_or: 1 },
            11,
        );
        for _ in 0..5 {
            ens.update();
        }
        (lat.clone(), ens.current().clone())
    }

    fn make_prop(lat: &Lattice, gauge: &GaugeField<f64>, mass: f64) -> Propagator {
        let solver = PropagatorSolver::new(lat, gauge, SolverKind::WilsonBicgstab { mass });
        solver.point_propagator(0).0
    }

    #[test]
    fn generic_meson_with_gamma5_matches_pion_shortcut() {
        let (lat, gauge) = quenched_setup();
        let prop = make_prop(&lat, &gauge, 0.5);
        let g5 = gamma5_dense();
        let generic = meson_correlator(&lat, &prop, &prop, &g5, &g5);
        let shortcut = pion_correlator(&lat, &prop);
        for t in 0..lat.nt() {
            assert!(
                (generic[t].re - shortcut[t]).abs() < 1e-8 * shortcut[t].abs().max(1e-30),
                "t={t}: {} vs {}",
                generic[t].re,
                shortcut[t]
            );
            assert!(generic[t].im.abs() < 1e-10 * shortcut[t].abs().max(1e-30));
        }
    }

    #[test]
    fn pion_correlator_is_positive_and_decays() {
        let (lat, gauge) = quenched_setup();
        let prop = make_prop(&lat, &gauge, 0.5);
        let c = pion_correlator(&lat, &prop);
        for t in 0..lat.nt() {
            assert!(c[t] > 0.0, "pion correlator positive at t={t}");
        }
        // Decay away from the source toward the midpoint.
        assert!(c[1] < c[0]);
        assert!(c[2] < c[1]);
        // Approximate time-reflection symmetry (periodic + apbc doubling).
        let nt = lat.nt();
        for t in 1..nt / 2 {
            let ratio = c[t] / c[nt - t];
            assert!(
                (0.2..5.0).contains(&ratio),
                "gross asymmetry at t={t}: {ratio}"
            );
        }
    }

    #[test]
    fn proton_correlator_is_real_and_decays() {
        let (lat, gauge) = quenched_setup();
        let prop = make_prop(&lat, &gauge, 0.5);
        let c = proton_correlator(&lat, &prop, &prop, &parity_projector());
        // The imaginary part vanishes only in the ensemble average; on a
        // single configuration it is a volume-suppressed fluctuation, so
        // compare it against the t=0 signal rather than the decayed one.
        let scale = c[0].re.abs();
        for t in 0..4 {
            assert!(
                c[t].im.abs() < 1e-3 * scale,
                "t={t} imaginary part too large: {:?} (scale {scale})",
                c[t]
            );
        }
        let c0 = c[0].re.abs();
        let c1 = c[1].re.abs();
        let c2 = c[2].re.abs();
        assert!(c0 > 0.0 && c1 > 0.0);
        assert!(c1 < c0, "baryon correlator must decay: {c0} -> {c1}");
        assert!(c2 < c1, "baryon correlator must decay: {c1} -> {c2}");
    }

    #[test]
    fn proton_heavier_than_pion() {
        let (lat, gauge) = quenched_setup();
        let prop = make_prop(&lat, &gauge, 0.5);
        let cpi = pion_correlator(&lat, &prop);
        let cp = proton_correlator(&lat, &prop, &prop, &parity_projector());
        let m_pi = (cpi[1] / cpi[2]).ln();
        let m_p = (cp[1].re.abs() / cp[2].re.abs()).ln();
        assert!(
            m_p > m_pi,
            "effective proton mass {m_p} should exceed pion {m_pi}"
        );
    }

    #[test]
    fn general_contraction_reduces_to_standard_when_lines_equal() {
        let (lat, gauge) = quenched_setup();
        let prop = make_prop(&lat, &gauge, 0.5);
        let a = proton_correlator(&lat, &prop, &prop, &parity_projector());
        let b = proton_correlator_general(&lat, &prop, &prop, &prop, &parity_projector());
        for t in 0..lat.nt() {
            assert!((a[t] - b[t]).abs() < 1e-12 * a[t].abs().max(1e-30));
        }
    }

    #[test]
    fn momentum_zero_projection_matches_plain_pion() {
        let (lat, gauge) = quenched_setup();
        let prop = make_prop(&lat, &gauge, 0.5);
        let plain = pion_correlator(&lat, &prop);
        let p0 = pion_correlator_momentum(&lat, &prop, [0, 0, 0]);
        for t in 0..lat.nt() {
            assert!((p0[t].re - plain[t]).abs() < 1e-10 * plain[t].abs());
            assert!(p0[t].im.abs() < 1e-10 * plain[t].abs());
        }
    }

    #[test]
    fn dispersion_relation_boosted_pion_is_heavier() {
        // E(p)² ≈ m² + p²: the momentum-projected correlator must decay
        // faster than the zero-momentum one.
        let (lat, gauge) = quenched_setup();
        let prop = make_prop(&lat, &gauge, 0.5);
        let c0 = pion_correlator_momentum(&lat, &prop, [0, 0, 0]);
        let c1 = pion_correlator_momentum(&lat, &prop, [1, 0, 0]);
        let e0 = (c0[1].re.abs() / c0[2].re.abs()).ln();
        let e1 = (c1[1].re.abs() / c1[2].re.abs()).ln();
        assert!(
            e1 > e0,
            "boosted pion must be heavier: E(1) = {e1} vs E(0) = {e0}"
        );
        // Loose continuum-dispersion check: E(p)² − E(0)² ≈ p² up to
        // lattice artifacts on a coarse 4³ box.
        let p2 = (2.0 * std::f64::consts::PI / 4.0f64).powi(2);
        let gap = e1 * e1 - e0 * e0;
        assert!(
            (0.2 * p2..3.0 * p2).contains(&gap),
            "dispersion gap {gap} vs p² = {p2}"
        );
    }

    #[test]
    fn effective_mass_of_pure_exponential_is_flat() {
        let corr: Vec<f64> = (0..10).map(|t| 3.0 * (-0.7 * t as f64).exp()).collect();
        let m = effective_mass(&corr);
        for v in m {
            assert!((v - 0.7).abs() < 1e-12);
        }
    }
}
