//! Observability for the lattice pipeline: a zero-dependency, thread-safe
//! metrics registry (counters, gauges, fixed-bucket histograms, span
//! timers on an injectable clock), a structured event log with text /
//! JSON / CSV export, and assertion macros that turn metric values into
//! regression tests.
//!
//! Design notes live in DESIGN.md §Observability. The short version:
//!
//! * **Ambient registry.** Instrumented code calls
//!   [`Registry::current()`]; tests and experiment drivers install a
//!   fresh registry with [`Registry::install_scoped`] for isolation, or
//!   [`Registry::install_global`] for a whole process.
//! * **Injectable clock.** Events and spans are stamped by the
//!   registry's [`Clock`]; the scheduler simulations install a
//!   [`ManualClock`] (or pass explicit times to
//!   [`Registry::event_at`]) so metric time is *simulated* time.
//! * **Deterministic export.** Metrics are stored in sorted maps and
//!   [`Registry::to_json`] emits them in name order, so two identical
//!   runs produce byte-identical JSON — the property the committed
//!   `results/metrics.json` golden and CI diff step rely on.

pub mod clock;
pub mod events;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod testing;

pub use clock::{Clock, ManualClock, WallClock};
pub use events::{Event, EventLog};
pub use json::{Json, JsonError};
pub use metrics::{Counter, FloatCounter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{Registry, ScopedInstall};
pub use span::Span;
