//! A hand-rolled token-level Rust lexer.
//!
//! The workspace builds with no registry access, so `syn` is not an option;
//! the rules only need token streams anyway. The lexer understands the
//! parts of Rust's lexical grammar that matter for not producing false
//! positives: line and (nested) block comments, string/char/byte literals,
//! raw strings with arbitrary `#` fences, lifetimes vs char literals, and
//! numeric literals (so `0..n` does not eat the range dots). Everything
//! else is identifiers and single-character punctuation — rules that need
//! multi-character operators (`::`, `.await`-style paths) match adjacent
//! punctuation tokens.

/// What kind of token this is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// A lifetime such as `'a` (without the quote).
    Lifetime(String),
    /// Single punctuation character.
    Punct(char),
    /// String, raw string, byte string, char, or byte literal (content
    /// dropped — rules never look inside literals).
    Literal,
    /// Numeric literal (content dropped).
    Number,
    /// Comment text, including the `//` / `/*` markers.
    Comment(String),
}

/// One token plus the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Tokenize `src`. The lexer never fails: unterminated constructs consume
/// to end-of-input, which is the forgiving behaviour a linter wants (the
/// compiler is the authority on well-formedness, not us).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    /// Advance one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: TokKind, line: u32) {
        self.out.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'r' | b'b' if self.raw_or_byte_literal(line) => {}
                b'"' => self.string(line),
                b'\'' => self.quote(line),
                c if c.is_ascii_digit() => self.number(line),
                c if is_ident_start(c) => self.ident(line),
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c as char), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while self.peek(0).is_some_and(|c| c != b'\n') {
            self.bump();
        }
        let text = self.src[start..self.pos].to_string();
        self.push(TokKind::Comment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        let text = self.src[start..self.pos].to_string();
        self.push(TokKind::Comment(text), line);
    }

    /// Handle `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'` starting at an `r`
    /// or `b`. Returns false if this is actually a plain identifier.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let c0 = self.peek(0);
        // b'…' byte literal (possibly escaped).
        if c0 == Some(b'b') && self.peek(1) == Some(b'\'') {
            self.bump();
            self.bump();
            if self.peek(0) == Some(b'\\') {
                self.bump();
            }
            while self.peek(0).is_some_and(|c| c != b'\'') {
                self.bump();
            }
            self.bump(); // closing quote
            self.push(TokKind::Literal, line);
            return true;
        }
        // b"…": ordinary escaped byte string.
        if c0 == Some(b'b') && self.peek(1) == Some(b'"') {
            self.bump();
            self.string(line);
            return true;
        }
        // r / br followed by a fence or quote: raw (byte) string.
        let prefix = match (c0, self.peek(1), self.peek(2)) {
            (Some(b'r'), Some(b'"') | Some(b'#'), _) => 1,
            (Some(b'b'), Some(b'r'), Some(b'"') | Some(b'#')) => 2,
            _ => return false,
        };
        // A raw identifier (`r#match`) also starts `r#`; only commit after
        // confirming the fence run ends in a quote.
        let mut fences = 0usize;
        while self.peek(prefix + fences) == Some(b'#') {
            fences += 1;
        }
        if self.peek(prefix + fences) != Some(b'"') {
            return false;
        }
        for _ in 0..prefix + fences + 1 {
            self.bump();
        }
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    self.bump();
                    let mut got = 0usize;
                    while got < fences && self.peek(0) == Some(b'#') {
                        got += 1;
                        self.bump();
                    }
                    if got == fences {
                        break;
                    }
                }
                Some(_) => self.bump(),
            }
        }
        self.push(TokKind::Literal, line);
        true
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
        self.push(TokKind::Literal, line);
    }

    /// A `'`: either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
    fn quote(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal.
                self.bump();
                while self.peek(0).is_some_and(|c| c != b'\'') {
                    self.bump();
                }
                self.bump();
                self.push(TokKind::Literal, line);
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'a' (char) or 'a (lifetime): a char literal has a
                // closing quote right after one scalar; a lifetime does not.
                let start = self.pos;
                while self.peek(0).is_some_and(is_ident_cont) {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                    self.push(TokKind::Literal, line);
                } else {
                    let name = self.src[start..self.pos].to_string();
                    self.push(TokKind::Lifetime(name), line);
                }
            }
            Some(_) => {
                // Punctuation char literal like '(' or '0'.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::Literal, line);
            }
            None => self.push(TokKind::Punct('\''), line),
        }
    }

    fn number(&mut self, line: u32) {
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
        // Fraction only if `.` is followed by a digit (so `0..n` and
        // `1.sum()` leave the dot to punctuation).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
            // Signed exponent (`1.5e-3`): the alnum scan above stops at the
            // sign, so stitch it back on.
            if matches!(self.peek(0), Some(b'+') | Some(b'-'))
                && self
                    .src
                    .as_bytes()
                    .get(self.pos.wrapping_sub(1))
                    .is_some_and(|c| *c == b'e' || *c == b'E')
            {
                self.bump();
                while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric()) {
                    self.bump();
                }
            }
        } else if matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && self
                .src
                .as_bytes()
                .get(self.pos.wrapping_sub(1))
                .is_some_and(|c| *c == b'e' || *c == b'E')
        {
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric()) {
                self.bump();
            }
        }
        self.push(TokKind::Number, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_cont) {
            self.bump();
        }
        let text = self.src[start..self.pos].to_string();
        self.push(TokKind::Ident(text), line);
    }
}

/// Line spans (1-based, inclusive) of `#[cfg(test)] mod … { … }` bodies.
/// Rules that only apply to production code subtract these.
pub fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::Comment(_)))
        .collect();
    let mut i = 0;
    while i + 5 < code.len() {
        let window = &code[i..];
        let is_cfg_test = window[0].1.is_punct('#')
            && window[1].1.is_punct('[')
            && window[2].1.ident() == Some("cfg")
            && window[3].1.is_punct('(')
            && window[4].1.ident() == Some("test")
            && window[5].1.is_punct(')');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Scan forward (over further attributes) for `mod name {`; bail at
        // the first `;` — the attribute was on a `use` or out-of-line mod.
        let mut j = i + 6;
        let mut start_line = None;
        while j < code.len() {
            let t = code[j].1;
            if t.is_punct(';') {
                break;
            }
            if t.ident() == Some("mod") {
                start_line = Some(t.line);
            }
            if t.is_punct('{') && start_line.is_some() {
                // Brace-match to the end of the module body.
                let mut depth = 1usize;
                let mut k = j + 1;
                let mut end_line = t.line;
                while k < code.len() && depth > 0 {
                    if code[k].1.is_punct('{') {
                        depth += 1;
                    } else if code[k].1.is_punct('}') {
                        depth -= 1;
                    }
                    end_line = code[k].1.line;
                    k += 1;
                }
                spans.push((start_line.expect("set above"), end_line));
                j = k;
                break;
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // Instant::now() in a comment
            /* unwrap() in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"panic!("x")"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<&Token> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 2); // 'x' and '\n'
    }

    #[test]
    fn numbers_leave_range_and_method_dots() {
        let toks = lex("for i in 0..n { (1.5e-3).abs(); x.sum::<f64>(); }");
        // `0..n`: Number, '.', '.', Ident(n)
        let mut it = toks.iter();
        while let Some(t) = it.next() {
            if t.kind == TokKind::Number {
                let a = it.next().expect("dot");
                assert!(a.is_punct('.') || a.is_punct(')'));
                break;
            }
        }
        assert!(idents("x.sum::<f64>()").contains(&"sum".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn raw_string_fences_nest() {
        let toks = lex(r####"let x = r##"has "# inside"## ; y"####);
        assert!(toks.iter().any(|t| t.ident() == Some("y")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn cfg_test_mod_spans_cover_the_body() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let spans = test_spans(&lex(src));
        assert_eq!(spans, vec![(3, 5)]);
    }

    #[test]
    fn cfg_test_on_use_is_not_a_span() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn a() {}\n";
        assert!(test_spans(&lex(src)).is_empty());
    }
}
