//! Concurrency verification for the repo's concurrent protocol cores.
//!
//! Two engines, one crate, zero dependencies:
//!
//! 1. **Schedule exploration** ([`explore`]): a deterministic shadow-execution
//!    harness in the CHESS tradition. Protocols are re-modeled as
//!    [`explore::System`]s — cooperative tasks stepping atomically over
//!    modeled channels/mutexes/registers ([`model`]) — and a DFS controller
//!    enumerates interleavings with sleep-set pruning and an optional
//!    preemption bound. Any failing schedule serializes to a replayable
//!    [`trace::Trace`]. The protocol adapters live in [`protocols`]:
//!    mailbox dedup-by-seq, the NACK/retransmit recv loop, two-slot
//!    checkpoint rotation, and a racy-counter defect model.
//!
//! 2. **Happens-before race detection** ([`race`]): FNV-keyed vector clocks
//!    recording sync edges (lock/unlock, channel send/recv, pool chunk
//!    handoff) and flagging conflicting accesses with no ordering between
//!    them. The vendored `parking_lot`/`rayon`/`crossbeam` shims call into
//!    it behind their `race-detect` feature, so the existing determinism
//!    suites double as race tests on any stable toolchain.
//!
//! The bench CLI surfaces both as `repro verify`; see `results/verify.md`
//! for the committed exhaustive-exploration numbers.

pub mod explore;
pub mod model;
pub mod protocols;
pub mod race;
pub mod trace;

pub use explore::{Exploration, Explorer, Footprint, System, Violation};
pub use trace::{Trace, Verdict};

/// FNV-1a 64-bit hash — the same keyed hashing used across the workspace
/// (frame checksums, lint suppression hashes). Used here to derive stable
/// object ids for modeled objects and race-detector sync keys.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::fnv1a_64;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171F73967E8);
    }
}
