//! Dirac operators and the linear-operator interface used by the solvers.

mod hopping;
mod mobius;
mod wilson;

pub use hopping::{hop_site, HoppingKernel, HOPPING_FLOPS_PER_SITE};
pub use mobius::{MobiusDirac, MobiusParams, PrecMobius};
pub use wilson::{PrecWilson, WilsonDirac};

use crate::real::Real;
use crate::spinor::Spinor;

/// A general linear operator on a fermion vector, as seen by Krylov solvers.
pub trait LinearOp<R: Real>: Sync {
    /// Length (in spinors) of vectors this operator acts on.
    fn vec_len(&self) -> usize;
    /// `out = A · inp`.
    fn apply(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]);
    /// Floating-point operations per `apply`, for performance reporting.
    fn flops_per_apply(&self) -> f64 {
        0.0
    }
}

/// A Dirac-type operator: knows its adjoint (via γ5-hermiticity), so the
/// normal equations `D†D x = D†b` can be formed.
pub trait DiracOp<R: Real>: LinearOp<R> {
    /// `out = D† · inp`.
    fn apply_dagger(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]);
}

/// `D† D`, the Hermitian positive-definite operator CG actually inverts —
/// "conjugate gradient on the normal equations", the paper's solver for the
/// Möbius domain-wall discretization.
pub struct NormalOp<'a, R: Real, D: DiracOp<R>> {
    op: &'a D,
    _marker: std::marker::PhantomData<R>,
}

impl<'a, R: Real, D: DiracOp<R>> NormalOp<'a, R, D> {
    /// Wrap a Dirac operator.
    pub fn new(op: &'a D) -> Self {
        Self {
            op,
            _marker: std::marker::PhantomData,
        }
    }

    /// The underlying Dirac operator.
    pub fn inner(&self) -> &D {
        self.op
    }
}

impl<'a, R: Real, D: DiracOp<R>> LinearOp<R> for NormalOp<'a, R, D> {
    fn vec_len(&self) -> usize {
        self.op.vec_len()
    }

    fn apply(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let mut tmp = vec![Spinor::zero(); self.op.vec_len()];
        self.op.apply(&mut tmp, inp);
        self.op.apply_dagger(out, &tmp);
    }

    fn flops_per_apply(&self) -> f64 {
        2.0 * self.op.flops_per_apply()
    }
}
