//! Dirac γ-matrix algebra in the DeGrand–Rossi (chiral) basis.
//!
//! Every Euclidean γ-matrix in this basis has exactly one non-zero entry per
//! row, with value ±1 or ±i. We exploit that twice:
//!
//! - [`GammaSparse`] stores a γ as a spin permutation plus per-row phase, so
//!   the Wilson-term spin projectors `(1 ∓ γμ)` reduce to two color-vector
//!   combinations — the standard half-spinor trick that halves the SU(3)
//!   multiplies in the stencil.
//! - [`SpinMatrix`] is the dense 4×4 form used by contraction code, where
//!   products like `C γ5` and polarization projectors are built once.
//!
//! In this basis `γ5 = γ1 γ2 γ3 γ4 = diag(+1, +1, −1, −1)`, so chirality
//! projection (needed by the domain-wall operator) is component selection.

use crate::complex::{Complex, C64};
use crate::real::Real;

/// Number of spin components.
pub const NS: usize = 4;

/// A γ-matrix with one non-zero entry per row: `γ[s][perm[s]] = phase[s]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GammaSparse {
    /// Column of the non-zero entry in each row.
    pub perm: [usize; NS],
    /// Value of that entry (always a fourth root of unity here).
    pub phase: [C64; NS],
}

const I: C64 = C64 { re: 0.0, im: 1.0 };
const MI: C64 = C64 { re: 0.0, im: -1.0 };
const ONE: C64 = C64 { re: 1.0, im: 0.0 };
const MONE: C64 = C64 { re: -1.0, im: 0.0 };

/// The four Euclidean γ-matrices, DeGrand–Rossi basis, indexed by direction
/// `mu = 0..4` (x, y, z, t).
pub const GAMMAS: [GammaSparse; 4] = [
    // γ_x
    GammaSparse {
        perm: [3, 2, 1, 0],
        phase: [I, I, MI, MI],
    },
    // γ_y
    GammaSparse {
        perm: [3, 2, 1, 0],
        phase: [MONE, ONE, ONE, MONE],
    },
    // γ_z
    GammaSparse {
        perm: [2, 3, 0, 1],
        phase: [I, MI, MI, I],
    },
    // γ_t
    GammaSparse {
        perm: [2, 3, 0, 1],
        phase: [ONE, ONE, ONE, ONE],
    },
];

/// Diagonal of γ5 in this basis: `diag(+1, +1, −1, −1)`.
pub const GAMMA5_DIAG: [f64; NS] = [1.0, 1.0, -1.0, -1.0];

impl GammaSparse {
    /// Dense 4×4 form.
    pub fn dense(&self) -> SpinMatrix<f64> {
        let mut m = SpinMatrix::zero();
        for s in 0..NS {
            m.m[s][self.perm[s]] = self.phase[s];
        }
        m
    }
}

/// Dense 4×4 complex spin matrix, row-major.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpinMatrix<R> {
    /// Entries `m[row][col]`.
    pub m: [[Complex<R>; NS]; NS],
}

impl<R: Real> SpinMatrix<R> {
    /// Zero matrix.
    pub fn zero() -> Self {
        Self {
            m: [[Complex::zero(); NS]; NS],
        }
    }

    /// Identity matrix.
    pub fn identity() -> Self {
        let mut m = Self::zero();
        for s in 0..NS {
            m.m[s][s] = Complex::one();
        }
        m
    }

    /// Matrix product.
    pub fn mul(&self, rhs: &Self) -> Self {
        let mut out = Self::zero();
        for i in 0..NS {
            for k in 0..NS {
                let a = self.m[i][k];
                if a.norm_sqr() == R::ZERO {
                    continue;
                }
                for j in 0..NS {
                    out.m[i][j] = out.m[i][j].add_mul(a, rhs.m[k][j]);
                }
            }
        }
        out
    }

    /// Sum of two matrices.
    pub fn add(&self, rhs: &Self) -> Self {
        let mut out = *self;
        for i in 0..NS {
            for j in 0..NS {
                out.m[i][j] += rhs.m[i][j];
            }
        }
        out
    }

    /// Every entry scaled by a complex factor.
    pub fn scale_c(&self, s: Complex<R>) -> Self {
        let mut out = *self;
        for row in out.m.iter_mut() {
            for e in row.iter_mut() {
                *e *= s;
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zero();
        for i in 0..NS {
            for j in 0..NS {
                out.m[i][j] = self.m[j][i];
            }
        }
        out
    }

    /// Hermitian conjugate.
    pub fn dagger(&self) -> Self {
        let mut out = Self::zero();
        for i in 0..NS {
            for j in 0..NS {
                out.m[i][j] = self.m[j][i].conj();
            }
        }
        out
    }

    /// Trace.
    pub fn trace(&self) -> Complex<R> {
        let mut t = Complex::zero();
        for s in 0..NS {
            t += self.m[s][s];
        }
        t
    }

    /// Frobenius distance, as `f64`, for tests.
    pub fn distance(&self, rhs: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..NS {
            for j in 0..NS {
                acc += (self.m[i][j] - rhs.m[i][j]).norm_sqr().to_f64();
            }
        }
        acc.sqrt()
    }

    /// Convert precision entry-wise.
    pub fn cast<S: Real>(&self) -> SpinMatrix<S> {
        let mut out = SpinMatrix::zero();
        for i in 0..NS {
            for j in 0..NS {
                out.m[i][j] = self.m[i][j].cast();
            }
        }
        out
    }
}

/// Dense γμ for `mu = 0..4`.
pub fn gamma_dense(mu: usize) -> SpinMatrix<f64> {
    GAMMAS[mu].dense()
}

/// Dense γ5.
pub fn gamma5_dense() -> SpinMatrix<f64> {
    let mut m = SpinMatrix::zero();
    for s in 0..NS {
        m.m[s][s] = Complex::new(GAMMA5_DIAG[s], 0.0);
    }
    m
}

/// `C γ5` where `C = γ2 γ4` is the charge-conjugation matrix in this basis;
/// this is the diquark spin matrix in the proton interpolating operator.
pub fn c_gamma5() -> SpinMatrix<f64> {
    gamma_dense(1).mul(&gamma_dense(3)).mul(&gamma5_dense())
}

/// Positive-parity projector `(1 + γ4)/2` used at the baryon sink.
pub fn parity_projector() -> SpinMatrix<f64> {
    let half = Complex::new(0.5, 0.0);
    SpinMatrix::identity().add(&gamma_dense(3)).scale_c(half)
}

/// Polarized positive-parity projector `(1 + γ4)(1 + i γ1 γ2 ... )`:
/// concretely `(1 + γ4)/2 · (1 + i γ1 γ2)/2`, projecting onto spin-up along z.
/// This is the sink projector for the axial-charge matrix element.
pub fn polarized_projector() -> SpinMatrix<f64> {
    let half = Complex::new(0.5, 0.0);
    let i = Complex::new(0.0, 1.0);
    let g12 = gamma_dense(0).mul(&gamma_dense(1)).scale_c(i);
    let spin = SpinMatrix::identity().add(&g12).scale_c(half);
    parity_projector().mul(&spin)
}

/// Dense `γ3 γ5`, the spin structure of the z-polarized axial current `A3`.
pub fn gamma3_gamma5() -> SpinMatrix<f64> {
    gamma_dense(2).mul(&gamma5_dense())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anticommutator(a: &SpinMatrix<f64>, b: &SpinMatrix<f64>) -> SpinMatrix<f64> {
        a.mul(b).add(&b.mul(a))
    }

    #[test]
    fn clifford_algebra_holds() {
        // {γμ, γν} = 2 δμν
        for mu in 0..4 {
            for nu in 0..4 {
                let ac = anticommutator(&gamma_dense(mu), &gamma_dense(nu));
                let expect = if mu == nu {
                    SpinMatrix::identity().scale_c(Complex::new(2.0, 0.0))
                } else {
                    SpinMatrix::zero()
                };
                assert!(
                    ac.distance(&expect) < 1e-14,
                    "anticommutator failed for mu={mu} nu={nu}"
                );
            }
        }
    }

    #[test]
    fn gammas_are_hermitian() {
        for mu in 0..4 {
            let g = gamma_dense(mu);
            assert!(g.distance(&g.dagger()) < 1e-15, "γ{mu} hermitian");
        }
    }

    #[test]
    fn gamma5_is_product_of_gammas() {
        let prod = gamma_dense(0)
            .mul(&gamma_dense(1))
            .mul(&gamma_dense(2))
            .mul(&gamma_dense(3));
        assert!(prod.distance(&gamma5_dense()) < 1e-14);
    }

    #[test]
    fn gamma5_squares_to_identity_and_anticommutes() {
        let g5 = gamma5_dense();
        assert!(g5.mul(&g5).distance(&SpinMatrix::identity()) < 1e-15);
        for mu in 0..4 {
            let ac = anticommutator(&g5, &gamma_dense(mu));
            assert!(ac.distance(&SpinMatrix::zero()) < 1e-14, "γ5 γ{mu}");
        }
    }

    #[test]
    fn sparse_phases_satisfy_involution() {
        // φ_s φ_{p(s)} = 1 is what the half-spinor reconstruction relies on.
        for g in &GAMMAS {
            for s in 0..NS {
                let prod = g.phase[s] * g.phase[g.perm[s]];
                assert!((prod - Complex::one()).abs() < 1e-15);
            }
            // Spin permutation must exchange upper and lower components.
            for j in 0..2 {
                assert!(g.perm[j] >= 2, "upper rows map to lower components");
            }
            for s in 2..4 {
                assert!(g.perm[s] < 2, "lower rows map to upper components");
            }
        }
    }

    #[test]
    fn projectors_are_idempotent() {
        let p = parity_projector();
        assert!(p.mul(&p).distance(&p) < 1e-14);
        let pz = polarized_projector();
        assert!(pz.mul(&pz).distance(&pz) < 1e-14);
    }

    #[test]
    fn parity_projector_has_trace_two() {
        let t = parity_projector().trace();
        assert!((t.re - 2.0).abs() < 1e-14 && t.im.abs() < 1e-15);
    }

    #[test]
    fn polarized_projector_has_trace_one() {
        let t = polarized_projector().trace();
        assert!((t.re - 1.0).abs() < 1e-14 && t.im.abs() < 1e-15);
    }

    #[test]
    fn c_gamma5_is_real_and_antisymmetric() {
        let cg5 = c_gamma5();
        for i in 0..NS {
            for j in 0..NS {
                assert!(cg5.m[i][j].im.abs() < 1e-15, "real");
                assert!(
                    (cg5.m[i][j] + cg5.m[j][i]).abs() < 1e-14,
                    "antisymmetric at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn gamma3_gamma5_is_antihermitian_in_euclidean() {
        // (γ3 γ5)† = γ5 γ3 = -γ3 γ5.
        let a = gamma3_gamma5();
        let neg = a.scale_c(Complex::new(-1.0, 0.0));
        assert!(a.dagger().distance(&neg) < 1e-14);
    }
}
