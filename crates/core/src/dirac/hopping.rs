//! The radius-one Wilson hopping stencil — the hot kernel of the whole code.
//!
//! `H ψ(x) = Σμ [(1−γμ) Uμ(x) ψ(x+μ̂) + (1+γμ) U†μ(x−μ̂) ψ(x−μ̂)]`
//!
//! Each direction is applied with the half-spinor trick: `(1∓γμ)ψ` has rank
//! two, so only two color-vectors are multiplied by the link and the other
//! two spin components are reconstructed by a phase — exactly the matrix-free
//! stencil structure QUDA uses. The same kernel serves the 4D Wilson operator
//! and (slice-by-slice) the 5D Möbius domain-wall operator.
//!
//! Antiperiodic temporal boundary conditions for fermions are applied as a
//! sign on hops whose neighbor lookup wrapped in `t`.

use crate::complex::Complex;
use crate::field::GaugeLinks;
use crate::gamma::GAMMAS;
use crate::lattice::{Lattice, Neighbors, Parity, ND};
use crate::real::Real;
use crate::simd::avx2_detected;
use crate::spinor::Spinor;
use crate::su3::Su3;

/// Flops per site of one full hopping application (8 directions, half-spinor
/// form): the standard Wilson-dslash figure.
pub const HOPPING_FLOPS_PER_SITE: f64 = 1320.0;

/// One site of `H ψ` in half-spinor form, with all geometry abstracted out:
/// neighbor indices come from `nb`, spinors from `fetch`, links from
/// `link(site, mu)`. The single-domain kernel resolves these against the
/// full lattice; the sharded halo-exchange kernel resolves them against
/// extended local tables whose wrap flags were computed from *global*
/// coordinates. Both paths share this one function, so their outputs are
/// bit-identical by construction.
#[inline]
pub fn hop_site<R: Real>(
    nb: &Neighbors,
    x: usize,
    antiperiodic_t: bool,
    fetch: &impl Fn(usize) -> Spinor<R>,
    link: &impl Fn(usize, usize) -> Su3<R>,
) -> Spinor<R> {
    let mut r = Spinor::zero();
    for mu in 0..ND {
        let g = &GAMMAS[mu];
        let p0 = g.perm[0];
        let p1 = g.perm[1];
        let phi0: Complex<R> = g.phase[0].cast();
        let phi1: Complex<R> = g.phase[1].cast();
        // Reconstruction phases: result_s = ∓φ_s t_{p(s)} for s = 2, 3.
        let phi2: Complex<R> = g.phase[2].cast();
        let phi3: Complex<R> = g.phase[3].cast();
        let p2 = g.perm[2];
        let p3 = g.perm[3];

        // Forward hop: (1 − γμ) Uμ(x) ψ(x+μ̂).
        {
            let nbr = nb.fwd[mu] as usize;
            let flip = antiperiodic_t && mu == 3 && (nb.fwd_wrap >> mu) & 1 == 1;
            let psi = fetch(nbr);
            let u = link(x, mu);
            let h0 = psi.s[0] - psi.s[p0].scale_c(phi0);
            let h1 = psi.s[1] - psi.s[p1].scale_c(phi1);
            let mut t = [u.mul_vec(&h0), u.mul_vec(&h1)];
            if flip {
                t[0] = -t[0];
                t[1] = -t[1];
            }
            r.s[0] += t[0];
            r.s[1] += t[1];
            r.s[2] += -(t[p2].scale_c(phi2));
            r.s[3] += -(t[p3].scale_c(phi3));
        }

        // Backward hop: (1 + γμ) U†μ(x−μ̂) ψ(x−μ̂).
        {
            let nbr = nb.bwd[mu] as usize;
            let flip = antiperiodic_t && mu == 3 && (nb.bwd_wrap >> mu) & 1 == 1;
            let psi = fetch(nbr);
            let u = link(nbr, mu);
            let h0 = psi.s[0] + psi.s[p0].scale_c(phi0);
            let h1 = psi.s[1] + psi.s[p1].scale_c(phi1);
            let mut t = [u.dagger_mul_vec(&h0), u.dagger_mul_vec(&h1)];
            if flip {
                t[0] = -t[0];
                t[1] = -t[1];
            }
            r.s[0] += t[0];
            r.s[1] += t[1];
            r.s[2] += t[p2].scale_c(phi2);
            r.s[3] += t[p3].scale_c(phi3);
        }
    }
    r
}

/// One site-row of the blocked hop. The eight links of site `x` are
/// fetched once into locals and every RHS column reuses them — that is the
/// link-traffic amortization of the batched path. Each column is then
/// evaluated by the very same [`hop_site`], so column `j` of the output is
/// bit-identical to a single-RHS application of that column.
///
/// `fetch(site, j)` returns column `j` of the neighbor spinor; `out` is the
/// `nrhs`-long interleaved row at site `x`.
#[inline]
pub fn hop_site_block<R: Real>(
    nb: &Neighbors,
    x: usize,
    antiperiodic_t: bool,
    fetch: &impl Fn(usize, usize) -> Spinor<R>,
    link: &impl Fn(usize, usize) -> Su3<R>,
    out: &mut [Spinor<R>],
) {
    let fwd: [Su3<R>; ND] = std::array::from_fn(|mu| link(x, mu));
    let bwd: [Su3<R>; ND] = std::array::from_fn(|mu| link(nb.bwd[mu] as usize, mu));
    // `hop_site` asks for `link(x, mu)` on forward hops and
    // `link(nb.bwd[mu], mu)` on backward ones; when a backward neighbor
    // coincides with `x` (extent-1 direction) the forward cache is the same
    // link, so the site test is exact.
    let cached = |site: usize, mu: usize| if site == x { fwd[mu] } else { bwd[mu] };
    for (j, o) in out.iter_mut().enumerate() {
        *o = hop_site(nb, x, antiperiodic_t, &|e| fetch(e, j), &cached);
    }
}

/// Pointer wrapper that lets disjoint parallel tasks write through a shared
/// raw pointer. Soundness rests on the call sites writing non-overlapping
/// element sets; see the `SAFETY` comments there.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer. Going through a method (rather than field access)
    /// makes closures capture the whole `Sync` wrapper instead of the bare
    /// pointer under edition-2021 disjoint field capture.
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the wrapped pointer is only dereferenced for writes to provably
// disjoint elements (each (slice, site) pair is written by exactly one rayon
// task), so sharing it across threads is sound.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: see the `Send` impl above — tasks never write the same element.
unsafe impl<T> Sync for SendPtr<T> {}

/// Hopping-term kernel bound to a lattice and a gauge field.
pub struct HoppingKernel<'a, R: Real, G: GaugeLinks<R>> {
    lattice: &'a Lattice,
    gauge: &'a G,
    antiperiodic_t: bool,
    _marker: std::marker::PhantomData<R>,
}

impl<'a, R: Real, G: GaugeLinks<R>> HoppingKernel<'a, R, G> {
    /// Bind the kernel. `antiperiodic_t` selects fermionic temporal boundary
    /// conditions (the physical choice).
    pub fn new(lattice: &'a Lattice, gauge: &'a G, antiperiodic_t: bool) -> Self {
        assert_eq!(gauge.volume(), lattice.volume(), "gauge/lattice mismatch");
        Self {
            lattice,
            gauge,
            antiperiodic_t,
            _marker: std::marker::PhantomData,
        }
    }

    /// The lattice this kernel runs on.
    pub fn lattice(&self) -> &Lattice {
        self.lattice
    }

    /// The bound gauge-link storage.
    pub fn gauge(&self) -> &G {
        self.gauge
    }

    /// Whether temporal antiperiodic boundary conditions are applied.
    pub fn antiperiodic_t(&self) -> bool {
        self.antiperiodic_t
    }

    /// Storage/reconstruction label of the bound gauge field (autotune and
    /// bench reporting axis).
    pub fn recon_name(&self) -> &'static str {
        self.gauge.recon_name()
    }

    /// One site of `H ψ`. `fetch` maps a lexicographic neighbor index to the
    /// neighbor's spinor (identity for full-volume vectors, checkerboard
    /// lookup for parity-restricted ones).
    #[inline]
    fn site_hop(&self, x: usize, fetch: &impl Fn(usize) -> Spinor<R>) -> Spinor<R> {
        let nb = self.lattice.neighbors(x);
        hop_site(nb, x, self.antiperiodic_t, fetch, &|site, mu| {
            self.gauge.link(site, mu)
        })
    }

    /// `out = H inp` on the full lattice; vectors are lexicographic,
    /// `volume` spinors long. `grain` is the autotuned parallel chunk size.
    pub fn apply_full(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], grain: usize) {
        let v = self.lattice.volume();
        assert_eq!(out.len(), v);
        assert_eq!(inp.len(), v);
        let fetch = |i: usize| inp[i];
        rayon::for_each_chunk_mut(out, grain, |base, chunk| {
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = self.site_hop(base + k, &fetch);
            }
        });
    }

    /// `out = H_{po,pi} inp`: checkerboarded hop from parity `pi = !po` onto
    /// parity `po`. Both vectors are half-volume, checkerboard-indexed.
    pub fn apply_parity(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        out_parity: Parity,
        grain: usize,
    ) {
        let hv = self.lattice.half_volume();
        assert_eq!(out.len(), hv);
        assert_eq!(inp.len(), hv);
        let sites = self.lattice.sites_with_parity(out_parity);
        let fetch = |lex: usize| inp[self.lattice.cb_index(lex)];
        rayon::for_each_chunk_mut(out, grain, |base, chunk| {
            for (k, o) in chunk.iter_mut().enumerate() {
                let lex = sites[base + k] as usize;
                *o = self.site_hop(lex, &fetch);
            }
        });
    }

    /// Fused multi-slice hop on the full lattice: the sixteen stencil links
    /// of every 4D site are fetched once and reused across all `l5` s-slices
    /// — the 5th-dimension fusion that stops the Möbius operator from
    /// re-streaming the gauge field per slice. Slice `s`'s hop value is
    /// computed by the very same [`hop_site`] as [`Self::apply_full`] (the
    /// cached-link closure reproduces the per-call link fetches bit for
    /// bit), and `finish(s, x, h)` maps it to the value stored at
    /// `out[s·V + x]`. With `l5 = 1` this doubles as a fused 4D hop whose
    /// diagonal/algebra pass is folded into the single output write.
    pub fn apply_full_fused_5d<F>(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        l5: usize,
        grain: usize,
        finish: &F,
    ) where
        F: Fn(usize, usize, Spinor<R>) -> Spinor<R> + Sync,
    {
        let v = self.lattice.volume();
        assert_eq!(out.len(), v * l5);
        assert_eq!(inp.len(), v * l5);
        // `move` captures the whole `SendPtr` wrapper (edition-2021 disjoint
        // field capture would otherwise borrow the raw pointer, which is not
        // `Sync`).
        let optr = SendPtr(out.as_mut_ptr());
        let avx2 = avx2_detected();
        rayon::for_each_chunk(v, grain, move |range| {
            if avx2 {
                // SAFETY: `avx2_detected` returned true, so the AVX2-compiled
                // twin is safe to call on this CPU.
                #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
                unsafe {
                    self.full_fused_range_avx2(&optr, inp, range, l5, finish)
                };
            } else {
                self.full_fused_range(&optr, inp, range, l5, finish);
            }
        });
    }

    /// Chunk body of [`Self::apply_full_fused_5d`]: sites `range`, all `l5`
    /// slices, links cached across the s-extent.
    #[inline(always)]
    fn full_fused_range<F>(
        &self,
        optr: &SendPtr<Spinor<R>>,
        inp: &[Spinor<R>],
        range: std::ops::Range<usize>,
        l5: usize,
        finish: &F,
    ) where
        F: Fn(usize, usize, Spinor<R>) -> Spinor<R> + Sync,
    {
        let v = self.lattice.volume();
        for x in range {
            let nb = self.lattice.neighbors(x);
            let fwd: [Su3<R>; ND] = std::array::from_fn(|mu| self.gauge.link(x, mu));
            let bwd: [Su3<R>; ND] =
                std::array::from_fn(|mu| self.gauge.link(nb.bwd[mu] as usize, mu));
            let cached = |site: usize, mu: usize| if site == x { fwd[mu] } else { bwd[mu] };
            for s in 0..l5 {
                let slice = &inp[s * v..(s + 1) * v];
                let h = hop_site(nb, x, self.antiperiodic_t, &|e| slice[e], &cached);
                // SAFETY: element `s·v + x` is written exactly once — `x`
                // ranges over disjoint chunks across tasks and `s` is the
                // task-local loop — so no two tasks alias any element,
                // and the index stays in bounds (`x < v`, `s < l5`).
                unsafe { *optr.get().add(s * v + x) = finish(s, x, h) };
            }
        }
    }

    /// AVX2-compiled twin of [`Self::full_fused_range`]. The body is the
    /// same `#[inline(always)]` code, recompiled with 256-bit vectors
    /// enabled; only plain IEEE add/sub/mul are emitted (rustc does not
    /// contract to FMA), so the results are bit-identical to the portable
    /// compilation.
    #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    fn full_fused_range_avx2<F>(
        &self,
        optr: &SendPtr<Spinor<R>>,
        inp: &[Spinor<R>],
        range: std::ops::Range<usize>,
        l5: usize,
        finish: &F,
    ) where
        F: Fn(usize, usize, Spinor<R>) -> Spinor<R> + Sync,
    {
        self.full_fused_range(optr, inp, range, l5, finish);
    }

    /// Checkerboarded counterpart of [`Self::apply_full_fused_5d`]: hops from
    /// parity `!out_parity` onto `out_parity`, slices are `half_volume` long,
    /// and `finish(s, cb, h)` maps the slice-`s` hop at checkerboard site
    /// `cb` to the value stored at `out[s·hv + cb]`.
    pub fn apply_parity_fused_5d<F>(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        out_parity: Parity,
        l5: usize,
        grain: usize,
        finish: &F,
    ) where
        F: Fn(usize, usize, Spinor<R>) -> Spinor<R> + Sync,
    {
        let hv = self.lattice.half_volume();
        assert_eq!(out.len(), hv * l5);
        assert_eq!(inp.len(), hv * l5);
        let sites = self.lattice.sites_with_parity(out_parity);
        // `move` captures the whole `SendPtr` wrapper, as above.
        let optr = SendPtr(out.as_mut_ptr());
        let avx2 = avx2_detected();
        rayon::for_each_chunk(hv, grain, move |range| {
            if avx2 {
                // SAFETY: `avx2_detected` returned true, so the AVX2-compiled
                // twin is safe to call on this CPU.
                #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
                unsafe {
                    self.parity_fused_range_avx2(&optr, inp, sites, range, l5, finish)
                };
            } else {
                self.parity_fused_range(&optr, inp, sites, range, l5, finish);
            }
        });
    }

    /// Chunk body of [`Self::apply_parity_fused_5d`]: checkerboard sites
    /// `range`, all `l5` slices, links cached across the s-extent.
    #[inline(always)]
    fn parity_fused_range<F>(
        &self,
        optr: &SendPtr<Spinor<R>>,
        inp: &[Spinor<R>],
        sites: &[u32],
        range: std::ops::Range<usize>,
        l5: usize,
        finish: &F,
    ) where
        F: Fn(usize, usize, Spinor<R>) -> Spinor<R> + Sync,
    {
        let hv = self.lattice.half_volume();
        for cb in range {
            let lex = sites[cb] as usize;
            let nb = self.lattice.neighbors(lex);
            let fwd: [Su3<R>; ND] = std::array::from_fn(|mu| self.gauge.link(lex, mu));
            let bwd: [Su3<R>; ND] =
                std::array::from_fn(|mu| self.gauge.link(nb.bwd[mu] as usize, mu));
            let cached = |site: usize, mu: usize| if site == lex { fwd[mu] } else { bwd[mu] };
            for s in 0..l5 {
                let slice = &inp[s * hv..(s + 1) * hv];
                let fetch = |e: usize| slice[self.lattice.cb_index(e)];
                let h = hop_site(nb, lex, self.antiperiodic_t, &fetch, &cached);
                // SAFETY: element `s·hv + cb` is written exactly once —
                // `cb` ranges over disjoint chunks across tasks and `s`
                // is the task-local loop — so no two tasks alias any
                // element, and the index stays in bounds.
                unsafe { *optr.get().add(s * hv + cb) = finish(s, cb, h) };
            }
        }
    }

    /// AVX2-compiled twin of [`Self::parity_fused_range`]; see
    /// [`Self::full_fused_range_avx2`] for the bit-identity argument.
    #[cfg(all(feature = "arch-simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    fn parity_fused_range_avx2<F>(
        &self,
        optr: &SendPtr<Spinor<R>>,
        inp: &[Spinor<R>],
        sites: &[u32],
        range: std::ops::Range<usize>,
        l5: usize,
        finish: &F,
    ) where
        F: Fn(usize, usize, Spinor<R>) -> Spinor<R> + Sync,
    {
        self.parity_fused_range(optr, inp, sites, range, l5, finish);
    }

    /// `out = H inp` on the full lattice for an interleaved block of `nrhs`
    /// right-hand-sides (slices are `volume * nrhs` spinors, RHS-innermost).
    /// `grain` counts sites as in [`Self::apply_full`]; chunks are aligned
    /// to whole site-rows so every column reproduces `apply_full` exactly.
    pub fn apply_full_block(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        nrhs: usize,
        grain: usize,
    ) {
        let v = self.lattice.volume();
        assert!(nrhs > 0, "a block needs at least one column");
        assert_eq!(out.len(), v * nrhs);
        assert_eq!(inp.len(), v * nrhs);
        let fetch = |i: usize, j: usize| inp[i * nrhs + j];
        rayon::for_each_chunk_mut(out, grain.max(1) * nrhs, |base, chunk| {
            for (k, row) in chunk.chunks_mut(nrhs).enumerate() {
                let x = base / nrhs + k;
                let nb = self.lattice.neighbors(x);
                hop_site_block(
                    nb,
                    x,
                    self.antiperiodic_t,
                    &fetch,
                    &|site, mu| self.gauge.link(site, mu),
                    row,
                );
            }
        });
    }

    /// Blocked checkerboarded hop onto parity `out_parity`; both slices are
    /// `half_volume * nrhs`, RHS-innermost.
    pub fn apply_parity_block(
        &self,
        out: &mut [Spinor<R>],
        inp: &[Spinor<R>],
        out_parity: Parity,
        nrhs: usize,
        grain: usize,
    ) {
        let hv = self.lattice.half_volume();
        assert!(nrhs > 0, "a block needs at least one column");
        assert_eq!(out.len(), hv * nrhs);
        assert_eq!(inp.len(), hv * nrhs);
        let sites = self.lattice.sites_with_parity(out_parity);
        let fetch = |lex: usize, j: usize| inp[self.lattice.cb_index(lex) * nrhs + j];
        rayon::for_each_chunk_mut(out, grain.max(1) * nrhs, |base, chunk| {
            for (k, row) in chunk.chunks_mut(nrhs).enumerate() {
                let lex = sites[base / nrhs + k] as usize;
                let nb = self.lattice.neighbors(lex);
                hop_site_block(
                    nb,
                    lex,
                    self.antiperiodic_t,
                    &fetch,
                    &|site, mu| self.gauge.link(site, mu),
                    row,
                );
            }
        });
    }

    /// Reference implementation using dense γ-matrices and full 4-spin link
    /// multiplication. Used only by tests to validate the half-spinor path.
    pub fn apply_full_reference(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let v = self.lattice.volume();
        assert_eq!(out.len(), v);
        assert_eq!(inp.len(), v);
        for x in 0..v {
            let nb = self.lattice.neighbors(x);
            let mut r = Spinor::zero();
            for mu in 0..ND {
                let gdense = crate::gamma::gamma_dense(mu).cast::<R>();
                // Forward.
                let nbr = nb.fwd[mu] as usize;
                let mut psi = inp[nbr];
                if self.antiperiodic_t && mu == 3 && (nb.fwd_wrap >> mu) & 1 == 1 {
                    psi = -psi;
                }
                let u = self.gauge.link(x, mu);
                let upsi = Spinor {
                    s: [
                        u.mul_vec(&psi.s[0]),
                        u.mul_vec(&psi.s[1]),
                        u.mul_vec(&psi.s[2]),
                        u.mul_vec(&psi.s[3]),
                    ],
                };
                r += upsi - upsi.apply_spin_matrix(&gdense);
                // Backward.
                let nbr = nb.bwd[mu] as usize;
                let mut psi = inp[nbr];
                if self.antiperiodic_t && mu == 3 && (nb.bwd_wrap >> mu) & 1 == 1 {
                    psi = -psi;
                }
                let u = self.gauge.link(nbr, mu);
                let upsi = Spinor {
                    s: [
                        u.dagger_mul_vec(&psi.s[0]),
                        u.dagger_mul_vec(&psi.s[1]),
                        u.dagger_mul_vec(&psi.s[2]),
                        u.dagger_mul_vec(&psi.s[3]),
                    ],
                };
                r += upsi + upsi.apply_spin_matrix(&gdense);
            }
            out[x] = r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FermionField, GaugeField};

    fn setup(dims: [usize; 4], seed: u64) -> (Lattice, GaugeField<f64>, FermionField<f64>) {
        let lat = Lattice::new(dims);
        let gauge = GaugeField::hot(&lat, seed);
        let psi = FermionField::gaussian(lat.volume(), seed + 1);
        (lat, gauge, psi)
    }

    #[test]
    fn half_spinor_path_matches_dense_reference() {
        let (lat, gauge, psi) = setup([4, 4, 4, 4], 9);
        for apbc in [false, true] {
            let hop = HoppingKernel::new(&lat, &gauge, apbc);
            let mut fast = vec![Spinor::zero(); lat.volume()];
            let mut slow = vec![Spinor::zero(); lat.volume()];
            hop.apply_full(&mut fast, &psi.data, 64);
            hop.apply_full_reference(&mut slow, &psi.data);
            let diff = crate::blas::sub(&fast, &slow);
            let rel = crate::blas::norm_sqr(&diff) / crate::blas::norm_sqr(&slow);
            assert!(rel < 1e-24, "apbc={apbc} relative error {rel}");
        }
    }

    #[test]
    fn grain_size_does_not_change_result() {
        let (lat, gauge, psi) = setup([4, 4, 2, 6], 11);
        let hop = HoppingKernel::new(&lat, &gauge, true);
        let mut a = vec![Spinor::zero(); lat.volume()];
        let mut b = vec![Spinor::zero(); lat.volume()];
        hop.apply_full(&mut a, &psi.data, 1);
        hop.apply_full(&mut b, &psi.data, 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn parity_kernels_tile_the_full_application() {
        let (lat, gauge, psi) = setup([4, 4, 4, 4], 13);
        let hop = HoppingKernel::new(&lat, &gauge, true);

        let mut full = vec![Spinor::zero(); lat.volume()];
        hop.apply_full(&mut full, &psi.data, 128);

        // Scatter input into checkerboards.
        let hv = lat.half_volume();
        let mut even_in = vec![Spinor::zero(); hv];
        let mut odd_in = vec![Spinor::zero(); hv];
        for x in 0..lat.volume() {
            match lat.parity(x) {
                Parity::Even => even_in[lat.cb_index(x)] = psi.data[x],
                Parity::Odd => odd_in[lat.cb_index(x)] = psi.data[x],
            }
        }
        let mut even_out = vec![Spinor::zero(); hv];
        let mut odd_out = vec![Spinor::zero(); hv];
        hop.apply_parity(&mut even_out, &odd_in, Parity::Even, 64);
        hop.apply_parity(&mut odd_out, &even_in, Parity::Odd, 64);

        for x in 0..lat.volume() {
            let cb = lat.cb_index(x);
            let got = match lat.parity(x) {
                Parity::Even => even_out[cb],
                Parity::Odd => odd_out[cb],
            };
            assert!(
                (got - full[x]).norm_sqr() < 1e-24,
                "site {x} parity tiling mismatch"
            );
        }
    }

    #[test]
    fn blocked_hop_is_bit_identical_per_column() {
        let (lat, gauge, _) = setup([4, 4, 2, 6], 17);
        let v = lat.volume();
        let hop = HoppingKernel::new(&lat, &gauge, true);
        for nrhs in [1usize, 3, 4] {
            let cols: Vec<Vec<Spinor<f64>>> = (0..nrhs)
                .map(|j| FermionField::gaussian(v, 100 + j as u64).data)
                .collect();
            let block = crate::block::BlockSpinor::from_columns(&cols);
            let mut out = crate::block::BlockSpinor::zeros(v, nrhs);
            hop.apply_full_block(out.data_mut(), block.data(), nrhs, 64);
            for (j, c) in cols.iter().enumerate() {
                let mut single = vec![Spinor::zero(); v];
                hop.apply_full(&mut single, c, 64);
                assert_eq!(out.col(j), single, "column {j} of {nrhs}");
            }
        }
    }

    #[test]
    fn blocked_parity_hop_is_bit_identical_per_column() {
        let (lat, gauge, _) = setup([4, 4, 4, 4], 23);
        let hv = lat.half_volume();
        let hop = HoppingKernel::new(&lat, &gauge, true);
        let nrhs = 3usize;
        let cols: Vec<Vec<Spinor<f64>>> = (0..nrhs)
            .map(|j| FermionField::gaussian(hv, 200 + j as u64).data)
            .collect();
        let block = crate::block::BlockSpinor::from_columns(&cols);
        for parity in [Parity::Even, Parity::Odd] {
            let mut out = crate::block::BlockSpinor::zeros(hv, nrhs);
            hop.apply_parity_block(out.data_mut(), block.data(), parity, nrhs, 64);
            for (j, c) in cols.iter().enumerate() {
                let mut single = vec![Spinor::zero(); hv];
                hop.apply_parity(&mut single, c, parity, 64);
                assert_eq!(out.col(j), single, "parity {parity:?} column {j}");
            }
        }
    }

    #[test]
    fn hopping_on_cold_gauge_is_translation_stencil() {
        // With U = 1 and periodic BCs, H applied to a constant spinor gives
        // Σμ (1−γμ)ψ + (1+γμ)ψ = 8ψ.
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::cold(&lat);
        let hop = HoppingKernel::new(&lat, &gauge, false);
        let mut psi = FermionField::zeros(lat.volume());
        let constant = {
            let mut s: Spinor<f64> = Spinor::zero();
            for sp in 0..4 {
                for c in 0..3 {
                    s.s[sp].c[c] =
                        crate::complex::Complex::from_f64(0.3 * (sp as f64) + 0.1, c as f64);
                }
            }
            s
        };
        psi.data.iter_mut().for_each(|s| *s = constant);
        let mut out = vec![Spinor::zero(); lat.volume()];
        hop.apply_full(&mut out, &psi.data, 64);
        for x in 0..lat.volume() {
            let expect = constant.scale(8.0);
            assert!((out[x] - expect).norm_sqr() < 1e-20);
        }
    }
}
