//! Analytical machine and performance models for the CORAL systems.
//!
//! The paper's scaling results (Figs. 3–7) were measured on Titan, Ray,
//! Sierra, and Summit. None of those machines is available here, so this
//! crate models them: Table II's specifications ([`specs`]), the domain
//! decomposition and halo traffic of the radius-one stencil ([`decomp`]),
//! the communication-policy choices the paper autotunes over
//! ([`commpolicy`]), and an analytical per-iteration solver model
//! ([`perfmodel`]) calibrated against the paper's measured anchor points
//! (139/516/975 GB/s effective per-GPU bandwidth at peak efficiency on
//! Titan/Ray/Sierra; ~1.5 PFLOPS Summit strong-scaling saturation).
//!
//! The model reproduces *shapes* — who wins, by what factor, where the
//! knees fall — not testbed-exact numbers, per the reproduction ground
//! rules in `DESIGN.md`.

#![allow(clippy::needless_range_loop)]

pub mod commpolicy;
pub mod decomp;
pub mod memory;
pub mod perfmodel;
pub mod specs;

pub use commpolicy::{CommGranularity, CommPolicy, CommTransport};
pub use decomp::{Decomposition, HaloTraffic};
pub use memory::{min_gpus_for_memory, solve_footprint, MemoryFootprint};
pub use perfmodel::{PerfPoint, SolverPerfModel};
pub use specs::{all_machines, ray, sierra, summit, titan, MachineSpec};
