//! METAQ: shell-level backfilling between the batch scheduler and the user's
//! job scripts.
//!
//! METAQ keeps a queue of task scripts and starts the next one whenever
//! resources free up — recovering the idle time naive bundling wastes
//! ("effectively providing an across-the-board 25% speed-up"). Being
//! hardware-agnostic it cannot keep allocations close together, so as jobs
//! of different sizes complete "the available nodes became fragmented,
//! impacting performance"; and each task costs a separate `mpirun`
//! invocation, which taxes the service nodes.
//!
//! Because each task is its own `mpirun`, METAQ's fault blast radius is a
//! single task: a node crash kills only the tasks whose allocation touched
//! that node, and each is individually requeued with backoff. That places it
//! between naive bundling (whole-wave blast radius) and `mpi_jm`
//! (block-isolated) in the `repro faults` sweep.

use crate::cluster::Cluster;
use crate::fault::{
    AttemptFate, FaultConfig, FaultInjector, FaultStats, RecoveryState, RetryPolicy,
};
use crate::instrument::SchedObs;
use crate::report::{SimReport, TaskRecord};
use crate::task::{TaskKind, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Multiplicative slowdown of a task whose allocation is not contiguous.
pub const FRAGMENTATION_PENALTY: f64 = 0.95;

/// Serialized `mpirun` launch cost on the service node, seconds per task.
pub const MPIRUN_LAUNCH_SECONDS: f64 = 1.0;

/// Total-order wrapper for event times.
#[derive(PartialEq)]
struct Ord64(f64);
impl Eq for Ord64 {}
impl PartialOrd for Ord64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ord64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A DES event. `TaskEnd` carries the task's launch epoch so ends belonging
/// to an attempt that was already killed by a crash are tombstoned.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    TaskEnd {
        id: usize,
        epoch: u64,
    },
    NodeCrash {
        node: usize,
    },
    /// Backoff gate expiry: the task may be queued again.
    TaskReady {
        id: usize,
    },
}

/// An in-flight attempt.
struct RunInfo {
    alloc: Vec<usize>,
    start: f64,
    speed: f64,
    attempt: usize,
    epoch: u64,
    /// The scheduled `TaskEnd` is a transient death, not a completion.
    fails: bool,
}

/// The METAQ backfilling scheduler.
pub struct MetaqScheduler;

impl MetaqScheduler {
    /// Run `workload` on `cluster` on a pristine machine (no mid-run
    /// faults) with event-driven backfilling.
    pub fn run(cluster: &mut Cluster, workload: &Workload) -> SimReport {
        Self::run_with_faults(
            cluster,
            workload,
            &FaultConfig::default(),
            &RetryPolicy::default(),
        )
    }

    /// Run `workload` on `cluster` under the given mid-run fault model.
    ///
    /// Recovery policy: a crashed node kills only the tasks allocated on it;
    /// each victim (and each transient failure) is requeued with capped
    /// exponential backoff until its retry budget runs out. Nodes crossing
    /// the blacklist threshold of attributed transient faults are
    /// quarantined.
    pub fn run_with_faults(
        cluster: &mut Cluster,
        workload: &Workload,
        faults: &FaultConfig,
        policy: &RetryPolicy,
    ) -> SimReport {
        let n = workload.len();
        let n_nodes = cluster.nodes.len();
        let sobs = SchedObs::new("metaq");
        let injector = FaultInjector::new(*faults, n_nodes);
        let mut recovery = RecoveryState::new(n, n_nodes);
        let mut stats = FaultStats {
            nic_degraded_nodes: (0..n_nodes).filter(|&i| injector.nic_degraded(i)).count(),
            ..FaultStats::default()
        };

        let mut dep_count: Vec<usize> = workload.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in &workload.tasks {
            for &d in &t.deps {
                dependents[d].push(t.id);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| dep_count[i] == 0).collect();
        let mut records: Vec<Option<TaskRecord>> = vec![None; n];
        let mut wasted_records: Vec<TaskRecord> = Vec::new();
        let mut running: Vec<Option<RunInfo>> = (0..n).map(|_| None).collect();
        let mut epoch: Vec<u64> = vec![0; n];
        let mut events: BinaryHeap<Reverse<(Ord64, Event)>> = BinaryHeap::new();
        for node in 0..n_nodes {
            let ct = injector.crash_time(node);
            if ct.is_finite() {
                events.push(Reverse((Ord64(ct), Event::NodeCrash { node })));
            }
        }
        let mut time = 0.0f64;
        let mut busy_node_seconds = 0.0;
        let mut completed_flops = 0.0;
        let mut done = vec![false; n];
        let mut settled = 0usize; // done + permanently failed
                                  // Service-node launcher is serialized: next mpirun may start then.
        let mut launcher_free_at = 0.0f64;

        // Permanently fail `id` and abandon its transitive dependents.
        fn cascade_fail(
            id: usize,
            time: f64,
            sobs: &SchedObs,
            recovery: &mut RecoveryState,
            dependents: &[Vec<usize>],
            stats: &mut FaultStats,
            settled: &mut usize,
        ) {
            let mut stack = vec![id];
            while let Some(i) = stack.pop() {
                for &dep in &dependents[i] {
                    if !recovery.failed[dep] {
                        recovery.failed[dep] = true;
                        stats.abandoned_tasks += 1;
                        sobs.task_abandoned(time, dep);
                        *settled += 1;
                        stack.push(dep);
                    }
                }
            }
        }

        while settled < n {
            // Start everything that fits right now, FIFO over ready tasks.
            let mut started_any = true;
            while started_any {
                started_any = false;
                let mut next_ready = Vec::new();
                for &id in &ready {
                    if recovery.failed[id] {
                        continue; // abandoned while queued
                    }
                    let t = &workload.tasks[id];
                    let start_attempt = match t.kind {
                        TaskKind::PropagatorSolve { nodes } => cluster.find_free_nodes(nodes, true),
                        TaskKind::Contraction => cluster.find_free_nodes(1, true),
                        TaskKind::Io => Some(Vec::new()),
                    };
                    match start_attempt {
                        Some(alloc) => {
                            // Pay the serialized mpirun cost.
                            let launch_at = time.max(launcher_free_at);
                            launcher_free_at = launch_at + MPIRUN_LAUNCH_SECONDS;
                            let start = launch_at + MPIRUN_LAUNCH_SECONDS;
                            cluster.occupy(&alloc);
                            let attempt = recovery.start_attempt(id, &mut stats);
                            let mut speed = if alloc.is_empty() {
                                1.0
                            } else {
                                cluster.group_speed(&alloc) * injector.nic_speed(&alloc)
                            };
                            if !alloc.is_empty() && !Cluster::is_contiguous(&alloc) {
                                speed *= FRAGMENTATION_PENALTY;
                            }
                            let fate = injector.attempt_fate(id, attempt);
                            if let AttemptFate::Straggler { slowdown } = fate {
                                speed *= slowdown;
                                stats.stragglers += 1;
                            }
                            let dur = t.base_seconds / speed;
                            let (end, fails) = match fate {
                                AttemptFate::TransientFailure { at_fraction } => {
                                    (start + dur * at_fraction, true)
                                }
                                _ => (start + dur, false),
                            };
                            epoch[id] += 1;
                            sobs.task_start(start, id, attempt, alloc.len());
                            running[id] = Some(RunInfo {
                                alloc,
                                start,
                                speed,
                                attempt,
                                epoch: epoch[id],
                                fails,
                            });
                            events.push(Reverse((
                                Ord64(end),
                                Event::TaskEnd {
                                    id,
                                    epoch: epoch[id],
                                },
                            )));
                            started_any = true;
                        }
                        None => next_ready.push(id),
                    }
                }
                ready = next_ready;
            }
            sobs.queue_depth(ready.len());
            sobs.nodes_busy(running.iter().flatten().map(|ri| ri.alloc.len()).sum());

            // Nothing running and no events left: the stranded ready tasks
            // can never fit on what remains of the machine.
            let any_running = running.iter().any(|r| r.is_some());
            if !any_running && events.is_empty() {
                if !ready.is_empty() && faults.enabled() {
                    for id in ready.drain(..) {
                        if !recovery.failed[id] {
                            recovery.failed[id] = true;
                            stats.abandoned_tasks += 1;
                            sobs.task_abandoned(time, id);
                            settled += 1;
                            cascade_fail(
                                id,
                                time,
                                &sobs,
                                &mut recovery,
                                &dependents,
                                &mut stats,
                                &mut settled,
                            );
                        }
                    }
                    continue;
                }
                assert!(
                    ready.is_empty(),
                    "tasks pending but nothing running: deadlock"
                );
                break; // only dep-waiting tasks remain; cascade settled them
            }

            // Advance to the next event.
            let Some(Reverse((Ord64(t_ev), ev))) = events.pop() else {
                break;
            };
            time = time.max(t_ev);
            match ev {
                Event::TaskEnd { id, epoch: ep } => {
                    // Epoch mismatch (or an empty slot) marks the stale
                    // tombstone of a killed attempt: leave it untouched.
                    let Some(ri) = running[id].take_if(|ri| ri.epoch == ep) else {
                        continue;
                    };
                    cluster.release(&ri.alloc);
                    let t = &workload.tasks[id];
                    if ri.fails {
                        // Transient failure partway through the attempt.
                        stats.transient_failures += 1;
                        sobs.task_killed(time, id, ri.attempt, "transient");
                        stats.wasted_node_seconds +=
                            (time - ri.start).max(0.0) * ri.alloc.len() as f64;
                        wasted_records.push(TaskRecord {
                            id,
                            start: ri.start,
                            end: time,
                            nodes: ri.alloc.clone(),
                            speed: ri.speed,
                            attempts: ri.attempt,
                        });
                        if let Some(&node) = ri.alloc.first() {
                            if recovery.attribute_node_fault(node, policy)
                                && !cluster.nodes[node].failed
                            {
                                cluster.mark_crashed(node);
                                stats.blacklisted_nodes += 1;
                                sobs.blacklist(time, node);
                            }
                        }
                        if recovery.requeue_or_fail(id, time, policy, &mut stats) {
                            sobs.requeue(time, id, recovery.ready_at[id]);
                            events.push(Reverse((
                                Ord64(recovery.ready_at[id]),
                                Event::TaskReady { id },
                            )));
                        } else {
                            settled += 1;
                            sobs.task_failed(time, id);
                            cascade_fail(
                                id,
                                time,
                                &sobs,
                                &mut recovery,
                                &dependents,
                                &mut stats,
                                &mut settled,
                            );
                        }
                    } else {
                        if matches!(t.kind, TaskKind::PropagatorSolve { .. }) {
                            busy_node_seconds += (time - ri.start) * ri.alloc.len() as f64;
                        }
                        completed_flops += t.flops;
                        records[id] = Some(TaskRecord {
                            id,
                            start: ri.start,
                            end: time,
                            nodes: ri.alloc,
                            speed: ri.speed,
                            attempts: ri.attempt,
                        });
                        done[id] = true;
                        settled += 1;
                        sobs.task_end(time, id, ri.attempt);
                        for &dep in &dependents[id] {
                            dep_count[dep] -= 1;
                            if dep_count[dep] == 0 && !recovery.failed[dep] {
                                ready.push(dep);
                            }
                        }
                    }
                }
                Event::NodeCrash { node } => {
                    if cluster.nodes[node].failed {
                        continue; // dead at startup or already blacklisted
                    }
                    stats.node_crashes += 1;
                    sobs.node_crash(time, node);
                    // Kill every attempt whose allocation touches the node.
                    for id in 0..n {
                        let Some(ri) = running[id].take_if(|ri| ri.alloc.contains(&node)) else {
                            continue;
                        };
                        cluster.release(&ri.alloc);
                        sobs.task_killed(time, id, ri.attempt, "node_crash");
                        stats.wasted_node_seconds +=
                            (time - ri.start).max(0.0) * ri.alloc.len() as f64;
                        wasted_records.push(TaskRecord {
                            id,
                            start: ri.start,
                            end: time,
                            nodes: ri.alloc,
                            speed: ri.speed,
                            attempts: ri.attempt,
                        });
                        if recovery.requeue_or_fail(id, time, policy, &mut stats) {
                            sobs.requeue(time, id, recovery.ready_at[id]);
                            events.push(Reverse((
                                Ord64(recovery.ready_at[id]),
                                Event::TaskReady { id },
                            )));
                        } else {
                            settled += 1;
                            sobs.task_failed(time, id);
                            cascade_fail(
                                id,
                                time,
                                &sobs,
                                &mut recovery,
                                &dependents,
                                &mut stats,
                                &mut settled,
                            );
                        }
                    }
                    cluster.mark_crashed(node);
                }
                Event::TaskReady { id } => {
                    if !done[id] && !recovery.failed[id] && running[id].is_none() {
                        ready.push(id);
                    }
                }
            }
        }

        let completed_tasks = done.iter().filter(|&&d| d).count();
        let failed_tasks = recovery.failed.iter().filter(|&&f| f).count();
        let healthy = cluster.healthy_nodes() as f64;
        let report = SimReport {
            makespan: time,
            startup: 0.0,
            busy_node_seconds,
            total_node_seconds: healthy * time,
            records: records.into_iter().flatten().collect(),
            total_flops: workload.total_flops(),
            completed_flops,
            completed_tasks,
            failed_tasks,
            task_attempts: recovery.attempts,
            wasted_records,
            faults: stats,
        };
        sobs.finish(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::naive::NaiveBundler;
    use coral_machine::sierra;

    fn cluster(nodes: usize, jitter: f64, seed: u64) -> Cluster {
        Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes,
                jitter_sigma: jitter,
                startup_failure_prob: 0.0,
                seed,
            },
        )
    }

    #[test]
    fn backfilling_recovers_naive_bundling_waste() {
        // The paper's headline: METAQ gave "an across-the-board 25% speed-up"
        // over naive bundling on heterogeneous workloads.
        let w = Workload::heterogeneous_solves(16 * 8, 4, 1000.0, 0.35, 1e15, 7);
        let naive = NaiveBundler::run(&mut cluster(64, 0.06, 3), &w);
        let metaq = MetaqScheduler::run(&mut cluster(64, 0.06, 3), &w);
        let speedup = naive.makespan / metaq.makespan;
        assert!(
            (1.10..1.45).contains(&speedup),
            "METAQ speedup over naive should be ~1.25, got {speedup}"
        );
        assert!(metaq.utilization() > naive.utilization());
    }

    #[test]
    fn fragmentation_slows_some_tasks() {
        // Mixed task sizes fragment the free set; some allocations go
        // non-contiguous and run at the penalty speed.
        let mut tasks = Workload::heterogeneous_solves(40, 3, 500.0, 0.5, 1e15, 11);
        let extra = Workload::heterogeneous_solves(20, 5, 700.0, 0.5, 1e15, 13);
        let base = tasks.tasks.len();
        for (i, mut t) in extra.tasks.into_iter().enumerate() {
            t.id = base + i;
            tasks.tasks.push(t);
        }
        let r = MetaqScheduler::run(&mut cluster(32, 0.0, 5), &tasks);
        let fragmented = r
            .records
            .iter()
            .filter(|rec| !rec.nodes.is_empty() && !Cluster::is_contiguous(&rec.nodes))
            .count();
        assert!(fragmented > 0, "expected some fragmented allocations");
    }

    #[test]
    fn launch_cost_serializes_on_service_node() {
        // 8 zero-length-ish tasks cost 8 serialized mpirun invocations.
        let w = Workload::uniform_solves(8, 1, 0.001, 1.0);
        let r = MetaqScheduler::run(&mut cluster(8, 0.0, 7), &w);
        assert!(
            r.makespan >= 8.0 * MPIRUN_LAUNCH_SECONDS,
            "serialized launches must bound the makespan: {}",
            r.makespan
        );
    }

    #[test]
    fn dependencies_are_honored() {
        let w = Workload::figure2_workflow(1, 3, 2, 50.0, 1e14);
        let r = MetaqScheduler::run(&mut cluster(8, 0.0, 9), &w);
        for t in &w.tasks {
            for &d in &t.deps {
                assert!(r.records[d].end <= r.records[t.id].start + 1e-9);
            }
        }
    }

    #[test]
    fn node_crash_kills_only_colocated_tasks() {
        // 4 single-node tasks; a crash mid-run kills at most the tasks on
        // the crashed node — the others finish undisturbed on first attempt.
        let w = Workload::uniform_solves(4, 1, 5_000.0, 1e15);
        let faults = FaultConfig {
            node_mtbf_seconds: 20_000.0,
            seed: 5,
            ..FaultConfig::default()
        };
        let r = MetaqScheduler::run_with_faults(
            &mut cluster(4, 0.0, 7),
            &w,
            &faults,
            &RetryPolicy::default(),
        );
        assert!(r.faults.node_crashes >= 1, "{:?}", r.faults);
        let first_try = r.records.iter().filter(|rec| rec.attempts == 1).count();
        assert!(
            first_try >= 4usize.saturating_sub(r.faults.node_crashes + r.faults.requeues),
            "crash blast radius must be per-node, not whole-queue"
        );
        assert_eq!(r.completed_tasks + r.failed_tasks, 4);
    }

    #[test]
    fn des_invariants_hold_under_faults() {
        // No oversubscription, causality, and task-count conservation with
        // crashes + transient failures + stragglers all enabled.
        let w = Workload::heterogeneous_solves(48, 2, 400.0, 0.4, 1e15, 17);
        let faults = FaultConfig {
            node_mtbf_seconds: 30_000.0,
            transient_fail_prob: 0.15,
            straggler_prob: 0.1,
            seed: 23,
            ..FaultConfig::default()
        };
        let r = MetaqScheduler::run_with_faults(
            &mut cluster(16, 0.05, 9),
            &w,
            &faults,
            &RetryPolicy::default(),
        );
        assert_eq!(r.completed_tasks + r.failed_tasks, 48);
        // Each completed task appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for rec in &r.records {
            assert!(seen.insert(rec.id));
            assert!(rec.end >= rec.start);
        }
        // No two records (successful or wasted) overlap on a node.
        let mut intervals: Vec<(usize, f64, f64)> = Vec::new();
        for rec in r.records.iter().chain(&r.wasted_records) {
            for &node in &rec.nodes {
                intervals.push((node, rec.start, rec.end));
            }
        }
        intervals.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite"));
        for w2 in intervals.windows(2) {
            if w2[0].0 == w2[1].0 {
                assert!(
                    w2[0].2 <= w2[1].1 + 1e-9,
                    "node {} oversubscribed: [{}, {}] overlaps [{}, {}]",
                    w2[0].0,
                    w2[0].1,
                    w2[0].2,
                    w2[1].1,
                    w2[1].2
                );
            }
        }
    }
}
