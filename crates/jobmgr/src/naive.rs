//! Naive bundling: collect a wave of tasks, launch them simultaneously, and
//! wait for the whole wave to finish before starting the next.
//!
//! This is the baseline the paper measured at 20–25% idle: "naively bundling
//! tasks — simply collecting and simultaneously launching HPC steps, and
//! waiting for their completion — often caused a 20 to 25% idling
//! inefficiency", because nodes differ in performance and task durations
//! vary, so every wave ends at the pace of its slowest member.

use crate::cluster::Cluster;
use crate::report::{SimReport, TaskRecord};
use crate::task::{TaskKind, Workload};

/// The naive wave-at-a-time bundler.
pub struct NaiveBundler;

impl NaiveBundler {
    /// Run `workload` on `cluster`, returning the schedule report.
    ///
    /// Dependencies are honored across waves: a task joins a wave only when
    /// all of its dependencies completed in earlier waves.
    pub fn run(cluster: &mut Cluster, workload: &Workload) -> SimReport {
        let n = workload.len();
        let mut done = vec![false; n];
        let mut records: Vec<Option<TaskRecord>> = vec![None; n];
        let mut time = 0.0f64;
        let mut busy_node_seconds = 0.0;

        while done.iter().any(|d| !d) {
            // Collect the wave: ready tasks that fit in the (fully free)
            // machine simultaneously.
            let mut wave: Vec<(usize, Vec<usize>, f64)> = Vec::new();
            let mut progressed = false;
            for t in &workload.tasks {
                if done[t.id] || !t.deps.iter().all(|&d| done[d]) {
                    continue;
                }
                match t.kind {
                    TaskKind::PropagatorSolve { nodes } => {
                        if let Some(alloc) = cluster.find_free_nodes(nodes, true) {
                            cluster.occupy(&alloc);
                            let speed = cluster.group_speed(&alloc);
                            wave.push((t.id, alloc, speed));
                            progressed = true;
                        }
                    }
                    TaskKind::Contraction => {
                        // Naive bundling gives contractions their own whole
                        // node; GPUs on it idle.
                        if let Some(alloc) = cluster.find_free_nodes(1, true) {
                            cluster.occupy(&alloc);
                            let speed = cluster.group_speed(&alloc);
                            wave.push((t.id, alloc, speed));
                            progressed = true;
                        }
                    }
                    TaskKind::Io => {
                        // I/O runs on service nodes, consuming only time.
                        wave.push((t.id, Vec::new(), 1.0));
                        progressed = true;
                    }
                }
            }
            assert!(
                progressed,
                "deadlock: no ready task fits (workload larger than machine?)"
            );

            // The wave ends when its slowest task does.
            let mut wave_end = time;
            for (id, alloc, speed) in &wave {
                let t = &workload.tasks[*id];
                let dur = t.base_seconds / speed;
                let end = time + dur;
                wave_end = wave_end.max(end);
                if matches!(t.kind, TaskKind::PropagatorSolve { .. }) {
                    busy_node_seconds += dur * alloc.len() as f64;
                }
                records[*id] = Some(TaskRecord {
                    id: *id,
                    start: time,
                    end,
                    nodes: alloc.clone(),
                    speed: *speed,
                });
                done[*id] = true;
            }
            for (_, alloc, _) in &wave {
                cluster.release(alloc);
            }
            time = wave_end;
        }

        let healthy = cluster.healthy_nodes() as f64;
        SimReport {
            makespan: time,
            startup: 0.0,
            busy_node_seconds,
            total_node_seconds: healthy * time,
            records: records.into_iter().map(|r| r.expect("all done")).collect(),
            total_flops: workload.total_flops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use coral_machine::sierra;

    #[test]
    fn uniform_tasks_on_uniform_nodes_have_no_waste() {
        let mut c = Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes: 16,
                jitter_sigma: 0.0,
                failure_prob: 0.0,
                seed: 1,
            },
        );
        // 8 tasks of 4 nodes on 16 nodes: two perfect waves.
        let w = Workload::uniform_solves(8, 4, 100.0, 1e15);
        let r = NaiveBundler::run(&mut c, &w);
        assert!((r.makespan - 200.0).abs() < 1e-9);
        assert!((r.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_tasks_idle_20_to_25_percent() {
        // The paper's observation: heterogeneous durations + node jitter
        // under wave-bundling waste ~20-25%.
        let mut c = Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes: 64,
                jitter_sigma: 0.06,
                failure_prob: 0.0,
                seed: 3,
            },
        );
        let w = Workload::heterogeneous_solves(16 * 8, 4, 1000.0, 0.35, 1e15, 7);
        let r = NaiveBundler::run(&mut c, &w);
        let waste = 1.0 - r.utilization();
        assert!(
            (0.12..0.35).contains(&waste),
            "naive bundling should waste ~20-25%, got {waste}"
        );
    }

    #[test]
    fn dependencies_are_honored() {
        let mut c = Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes: 8,
                jitter_sigma: 0.0,
                failure_prob: 0.0,
                seed: 5,
            },
        );
        let w = Workload::figure2_workflow(1, 2, 4, 100.0, 1e15);
        let r = NaiveBundler::run(&mut c, &w);
        for t in &w.tasks {
            let rec = &r.records[t.id];
            for &d in &t.deps {
                assert!(
                    r.records[d].end <= rec.start + 1e-9,
                    "task {} started before dep {d} finished",
                    t.id
                );
            }
        }
    }
}
