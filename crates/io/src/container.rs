//! The chunked container format.
//!
//! Layout:
//! ```text
//! magic   8 bytes  "LQIO\x01\0\0\n"
//! u32 LE  header JSON length
//! bytes   header JSON (name, dtype, shape, chunk_bytes, metadata)
//! repeat per chunk:
//!   u64 LE  payload length
//!   bytes   payload
//!   u32 LE  CRC-32C(payload)
//! ```

use crate::crc32c::crc32c;
use crate::IoError;
use obs::{Json, Registry};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

/// File magic.
pub const MAGIC: [u8; 8] = *b"LQIO\x01\0\0\n";

/// Copy the first `N` bytes of a slice into an array. Callers guarantee
/// `b.len() >= N` (via `chunks_exact` or an explicit bounds check), which
/// keeps the decode paths free of `unwrap`/`expect` panic sites.
fn le_array<const N: usize>(b: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    a.copy_from_slice(&b[..N]);
    a
}

/// Default chunk payload size.
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// Container header, stored as JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct Header {
    /// Dataset name (e.g. `"gauge"`, `"propagator_column"`).
    pub name: String,
    /// Element type: `"f64"` or `"f32"`.
    pub dtype: String,
    /// Logical shape (e.g. `[x, y, z, t, 4, 18]` for a gauge field).
    pub shape: Vec<usize>,
    /// Number of payload chunks that follow.
    pub n_chunks: usize,
    /// Free-form metadata.
    pub metadata: BTreeMap<String, String>,
}

impl Header {
    /// Bytes per element for the known dtypes.
    pub fn element_size(&self) -> Option<usize> {
        match self.dtype.as_str() {
            "f64" => Some(8),
            "f32" => Some(4),
            _ => None,
        }
    }

    /// Payload size in bytes implied by shape × dtype (`None` for unknown
    /// dtypes).
    pub fn expected_payload_bytes(&self) -> Option<usize> {
        self.element_size()
            .map(|e| e * self.shape.iter().product::<usize>())
    }

    /// Encode as the on-disk header JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("dtype", Json::from(self.dtype.as_str())),
            (
                "shape",
                Json::Arr(self.shape.iter().map(|&d| Json::from(d)).collect()),
            ),
            ("n_chunks", Json::from(self.n_chunks)),
            ("metadata", Json::from(&self.metadata)),
        ])
    }

    /// Decode from header JSON, validating every field's type.
    pub fn from_json(j: &Json) -> Result<Header, IoError> {
        let bad = |what: &str| IoError::Format(format!("header: {what}"));
        let usize_field =
            |v: &Json, what: &str| v.as_u64().map(|n| n as usize).ok_or_else(|| bad(what));
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing name"))?;
        let dtype = j
            .get("dtype")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing dtype"))?;
        let shape = j
            .get("shape")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing shape"))?
            .iter()
            .map(|v| usize_field(v, "bad shape entry"))
            .collect::<Result<Vec<usize>, IoError>>()?;
        let n_chunks = usize_field(
            j.get("n_chunks").ok_or_else(|| bad("missing n_chunks"))?,
            "bad n_chunks",
        )?;
        let mut metadata = BTreeMap::new();
        for (k, v) in j
            .get("metadata")
            .and_then(Json::as_obj)
            .ok_or_else(|| bad("missing metadata"))?
        {
            metadata.insert(
                k.clone(),
                v.as_str()
                    .ok_or_else(|| bad("non-string metadata value"))?
                    .to_string(),
            );
        }
        Ok(Header {
            name: name.to_string(),
            dtype: dtype.to_string(),
            shape,
            n_chunks,
            metadata,
        })
    }
}

/// A parsed container: header plus the raw little-endian payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Container {
    /// Header.
    pub header: Header,
    /// Concatenated payload bytes.
    pub payload: Vec<u8>,
}

impl Container {
    /// Total element count implied by the shape.
    pub fn element_count(&self) -> usize {
        self.header.shape.iter().product()
    }

    /// Decode the payload as little-endian `f64`s.
    pub fn to_f64(&self) -> Result<Vec<f64>, IoError> {
        if self.header.dtype != "f64" {
            return Err(IoError::ShapeMismatch(format!(
                "expected dtype f64, file has {}",
                self.header.dtype
            )));
        }
        if self.payload.len() != self.element_count() * 8 {
            return Err(IoError::Format("payload length != shape".into()));
        }
        Ok(self
            .payload
            .par_chunks_exact(8)
            .map(|b| f64::from_le_bytes(le_array(b)))
            .collect())
    }

    /// Decode the payload as little-endian `f32`s.
    pub fn to_f32(&self) -> Result<Vec<f32>, IoError> {
        if self.header.dtype != "f32" {
            return Err(IoError::ShapeMismatch(format!(
                "expected dtype f32, file has {}",
                self.header.dtype
            )));
        }
        if self.payload.len() != self.element_count() * 4 {
            return Err(IoError::Format("payload length != shape".into()));
        }
        Ok(self
            .payload
            .par_chunks_exact(4)
            .map(|b| f32::from_le_bytes(le_array(b)))
            .collect())
    }

    /// Build a container from `f64` values.
    pub fn from_f64(
        name: &str,
        shape: Vec<usize>,
        values: &[f64],
        metadata: BTreeMap<String, String>,
    ) -> Self {
        assert_eq!(values.len(), shape.iter().product::<usize>());
        let payload: Vec<u8> = values
            .par_iter()
            .flat_map_iter(|v| v.to_le_bytes())
            .collect();
        Self {
            header: Header {
                name: name.into(),
                dtype: "f64".into(),
                shape,
                n_chunks: 0, // fixed at write time
                metadata,
            },
            payload,
        }
    }

    /// Build a container from `f32` values.
    pub fn from_f32(
        name: &str,
        shape: Vec<usize>,
        values: &[f32],
        metadata: BTreeMap<String, String>,
    ) -> Self {
        assert_eq!(values.len(), shape.iter().product::<usize>());
        let payload: Vec<u8> = values
            .par_iter()
            .flat_map_iter(|v| v.to_le_bytes())
            .collect();
        Self {
            header: Header {
                name: name.into(),
                dtype: "f32".into(),
                shape,
                n_chunks: 0,
                metadata,
            },
            payload,
        }
    }
}

/// Write a container to `path`, chunking the payload and checksumming each
/// chunk (checksums computed in parallel).
pub fn write_container(path: &Path, container: &Container) -> Result<(), IoError> {
    let chunks: Vec<&[u8]> = container.payload.chunks(DEFAULT_CHUNK_BYTES).collect();
    let crcs: Vec<u32> = chunks.par_iter().map(|c| crc32c(c)).collect();

    let mut header = container.header.clone();
    header.n_chunks = chunks.len();
    let header_json = header.to_json().to_string().into_bytes();

    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(&MAGIC)?;
    file.write_all(&(header_json.len() as u32).to_le_bytes())?;
    file.write_all(&header_json)?;
    for (chunk, crc) in chunks.iter().zip(&crcs) {
        file.write_all(&(chunk.len() as u64).to_le_bytes())?;
        file.write_all(chunk)?;
        file.write_all(&crc.to_le_bytes())?;
    }
    file.flush()?;
    let reg = Registry::current();
    reg.counter("io.containers_written").inc();
    reg.counter("io.bytes_written")
        .add((12 + header_json.len() + container.payload.len() + chunks.len() * 12) as u64);
    Ok(())
}

/// Read only the header of a container (no payload, no checksum work) —
/// what a workflow manager uses to inventory files cheaply.
pub fn read_header(path: &Path) -> Result<Header, IoError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let mut len4 = [0u8; 4];
    file.read_exact(&mut len4)?;
    let hlen = u32::from_le_bytes(len4) as usize;
    let mut hbytes = vec![0u8; hlen];
    file.read_exact(&mut hbytes)?;
    let text =
        std::str::from_utf8(&hbytes).map_err(|_| IoError::Format("header: not utf-8".into()))?;
    let json = Json::parse(text).map_err(|e| IoError::Format(format!("header: {e}")))?;
    Header::from_json(&json)
}

/// Parse the header from the front of `bytes`; returns the header and the
/// offset where the first chunk record begins.
fn parse_header_bytes(bytes: &[u8]) -> Result<(Header, usize), IoError> {
    if bytes.len() < 12 {
        return Err(IoError::Format("truncated before header".into()));
    }
    if bytes[..8] != MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let hlen = u32::from_le_bytes(le_array(&bytes[8..12])) as usize;
    let hend = 12usize
        .checked_add(hlen)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| IoError::Format("truncated header".into()))?;
    let text = std::str::from_utf8(&bytes[12..hend])
        .map_err(|_| IoError::Format("header: not utf-8".into()))?;
    let json = Json::parse(text).map_err(|e| IoError::Format(format!("header: {e}")))?;
    Ok((Header::from_json(&json)?, hend))
}

/// Per-chunk record slices carved out of a raw container image. For a chunk
/// whose length field runs past the end of the buffer (truncation, or a
/// corrupted length), carving stops and the remaining chunks are absent.
fn carve_chunks<'a>(bytes: &'a [u8], header: &Header, start: usize) -> Vec<(&'a [u8], u32)> {
    let mut out = Vec::with_capacity(header.n_chunks);
    let mut off = start;
    for _ in 0..header.n_chunks {
        let Some(len_end) = off.checked_add(8).filter(|&e| e <= bytes.len()) else {
            break;
        };
        let clen = u64::from_le_bytes(le_array(&bytes[off..len_end])) as usize;
        let Some(crc_end) = len_end
            .checked_add(clen)
            .and_then(|p| p.checked_add(4))
            .filter(|&e| e <= bytes.len())
        else {
            break;
        };
        let payload = &bytes[len_end..len_end + clen];
        let crc = u32::from_le_bytes(le_array(&bytes[len_end + clen..crc_end]));
        out.push((payload, crc));
        off = crc_end;
    }
    out
}

/// Parse and verify a container from an in-memory image (the strict path:
/// any missing or corrupt chunk is an error).
pub fn parse_container(bytes: &[u8]) -> Result<Container, IoError> {
    let (header, start) = parse_header_bytes(bytes)?;
    let chunks = carve_chunks(bytes, &header, start);
    if chunks.len() != header.n_chunks {
        return Err(IoError::Format(format!(
            "truncated: {} of {} chunks present",
            chunks.len(),
            header.n_chunks
        )));
    }

    // Verify all checksums in parallel.
    let bad = chunks
        .par_iter()
        .enumerate()
        .find_map_first(|(i, (c, crc))| if crc32c(c) != *crc { Some(i) } else { None });
    if let Some(chunk) = bad {
        Registry::current().counter("io.checksum_failures").inc();
        return Err(IoError::ChecksumMismatch { chunk });
    }

    let total = chunks.iter().map(|(c, _)| c.len()).sum();
    let mut payload = Vec::with_capacity(total);
    for (c, _) in &chunks {
        payload.extend_from_slice(c);
    }
    let reg = Registry::current();
    reg.counter("io.containers_read").inc();
    reg.counter("io.bytes_read").add(bytes.len() as u64);
    Ok(Container { header, payload })
}

/// Read and verify a container from `path`.
pub fn read_container(path: &Path) -> Result<Container, IoError> {
    parse_container(&std::fs::read(path)?)
}

/// Is this error worth re-reading the file for? Checksum mismatches and I/O
/// errors can be transient (a flaky read path, a file still landing from a
/// burst buffer); structural format errors are deterministic.
fn is_retryable(err: &IoError) -> bool {
    matches!(err, IoError::ChecksumMismatch { .. } | IoError::Io(_))
}

/// Read a container with up to `max_retries` additional attempts when the
/// read fails with a retryable error (checksum mismatch or I/O error).
///
/// Returns the container and the number of attempts consumed (1 = clean
/// first read). Persistent corruption still surfaces as `Err` after the
/// retry budget — callers can then fall back to [`salvage_container`].
pub fn read_container_with_retry(
    path: &Path,
    max_retries: usize,
) -> Result<(Container, usize), IoError> {
    read_container_retrying(max_retries, || std::fs::read(path).map_err(IoError::from))
}

/// Retry core of [`read_container_with_retry`], generic over the byte
/// source so tests (and remote transports) can inject transient faults.
pub fn read_container_retrying(
    max_retries: usize,
    mut fetch: impl FnMut() -> Result<Vec<u8>, IoError>,
) -> Result<(Container, usize), IoError> {
    let mut attempt = 0;
    loop {
        attempt += 1;
        let result = fetch().and_then(|bytes| parse_container(&bytes));
        match result {
            Ok(c) => return Ok((c, attempt)),
            Err(e) if is_retryable(&e) && attempt <= max_retries => {
                Registry::current().counter("io.crc_retries").inc();
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A partially recovered container: corrupt or missing chunks are zero-filled
/// in `payload` and recorded as lost byte ranges.
#[derive(Clone, Debug)]
pub struct SalvagedContainer {
    /// Header (must parse intact for salvage to be possible at all).
    pub header: Header,
    /// Payload with lost regions zero-filled.
    pub payload: Vec<u8>,
    /// Half-open byte ranges `[start, end)` of `payload` that did not
    /// survive (checksum mismatch or truncation). Empty means the file was
    /// fully intact.
    pub lost_ranges: Vec<(usize, usize)>,
    /// Chunks whose checksum failed (truncated chunks are not listed here —
    /// they show up only in `lost_ranges`).
    pub corrupt_chunks: Vec<usize>,
}

impl SalvagedContainer {
    /// Whether every chunk survived.
    pub fn is_complete(&self) -> bool {
        self.lost_ranges.is_empty()
    }

    /// Total bytes lost.
    pub fn lost_bytes(&self) -> usize {
        self.lost_ranges.iter().map(|(a, b)| b - a).sum()
    }

    /// Convert to a [`Container`] — `Ok` only if nothing was lost.
    pub fn into_container(self) -> Result<Container, IoError> {
        if !self.lost_ranges.is_empty() {
            return Err(IoError::ChecksumMismatch {
                chunk: self.corrupt_chunks.first().copied().unwrap_or(0),
            });
        }
        Ok(Container {
            header: self.header,
            payload: self.payload,
        })
    }
}

/// Salvage as much of a container as possible from an in-memory image.
///
/// The header must be intact (otherwise nothing is interpretable and this
/// returns `Err`). Each chunk is then verified independently: chunks with a
/// bad CRC are zero-filled, and a truncated tail (or a corrupted chunk
/// length that runs past the end of the file) loses everything from that
/// point on. The payload is padded with zeros to the size implied by the
/// header's shape and dtype so downstream decoding still works.
pub fn salvage_container_bytes(bytes: &[u8]) -> Result<SalvagedContainer, IoError> {
    let (header, start) = parse_header_bytes(bytes)?;
    let chunks = carve_chunks(bytes, &header, start);

    let crc_ok: Vec<bool> = chunks
        .par_iter()
        .map(|(c, crc)| crc32c(c) == *crc)
        .collect();

    let mut payload = Vec::new();
    let mut lost_ranges: Vec<(usize, usize)> = Vec::new();
    let mut corrupt_chunks = Vec::new();
    for (i, ((chunk, _), ok)) in chunks.iter().zip(&crc_ok).enumerate() {
        let at = payload.len();
        if *ok {
            payload.extend_from_slice(chunk);
        } else {
            corrupt_chunks.push(i);
            lost_ranges.push((at, at + chunk.len()));
            payload.resize(at + chunk.len(), 0);
        }
    }

    // Truncated tail: pad out to the size the header promises.
    if let Some(expected) = header.expected_payload_bytes() {
        if payload.len() < expected {
            lost_ranges.push((payload.len(), expected));
            payload.resize(expected, 0);
        }
    }

    // Merge adjacent lost ranges so callers see contiguous holes.
    lost_ranges.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(lost_ranges.len());
    for (a, b) in lost_ranges {
        match merged.last_mut() {
            Some((_, e)) if *e >= a => *e = (*e).max(b),
            _ => merged.push((a, b)),
        }
    }

    let reg = Registry::current();
    reg.counter("io.salvage.calls").inc();
    reg.counter("io.salvage.corrupt_chunks")
        .add(corrupt_chunks.len() as u64);
    reg.counter("io.salvage.lost_bytes")
        .add(merged.iter().map(|(a, b)| (b - a) as u64).sum());
    Ok(SalvagedContainer {
        header,
        payload,
        lost_ranges: merged,
        corrupt_chunks,
    })
}

/// Salvage as much of the container at `path` as possible — see
/// [`salvage_container_bytes`].
pub fn salvage_container(path: &Path) -> Result<SalvagedContainer, IoError> {
    salvage_container_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lattice_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn f64_round_trip() {
        let vals: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let c = Container::from_f64("test", vec![100, 100], &vals, BTreeMap::new());
        let path = tmp("roundtrip_f64.lqio");
        write_container(&path, &c).unwrap();
        let back = read_container(&path).unwrap();
        assert_eq!(back.to_f64().unwrap(), vals);
        assert_eq!(back.header.shape, vec![100, 100]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_round_trip_with_metadata() {
        let vals: Vec<f32> = (0..513).map(|i| i as f32 * 0.5).collect();
        let mut md = BTreeMap::new();
        md.insert("beta".into(), "5.7".into());
        md.insert("config".into(), "42".into());
        let c = Container::from_f32("cfg", vec![513], &vals, md.clone());
        let path = tmp("roundtrip_f32.lqio");
        write_container(&path, &c).unwrap();
        let back = read_container(&path).unwrap();
        assert_eq!(back.to_f32().unwrap(), vals);
        assert_eq!(back.header.metadata, md);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let vals: Vec<f64> = (0..300_000).map(|i| i as f64).collect();
        let c = Container::from_f64("big", vec![300_000], &vals, BTreeMap::new());
        let path = tmp("corrupt.lqio");
        write_container(&path, &c).unwrap();
        // Flip one byte in the middle of the payload region.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match read_container(&path) {
            Err(IoError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_only_read_skips_payload() {
        let vals: Vec<f64> = (0..50_000).map(|i| i as f64).collect();
        let mut md = BTreeMap::new();
        md.insert("config".into(), "7".into());
        let c = Container::from_f64("inventory", vec![50_000], &vals, md);
        let path = tmp("header_only.lqio");
        write_container(&path, &c).unwrap();
        let h = read_header(&path).unwrap();
        assert_eq!(h.name, "inventory");
        assert_eq!(h.shape, vec![50_000]);
        assert_eq!(h.metadata.get("config").map(String::as_str), Some("7"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("badmagic.lqio");
        std::fs::write(&path, b"NOTAFILE plus junk").unwrap();
        assert!(matches!(read_container(&path), Err(IoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dtype_mismatch_is_rejected() {
        let vals: Vec<f64> = vec![1.0, 2.0];
        let c = Container::from_f64("x", vec![2], &vals, BTreeMap::new());
        let path = tmp("dtype.lqio");
        write_container(&path, &c).unwrap();
        let back = read_container(&path).unwrap();
        assert!(back.to_f32().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retry_recovers_from_a_transient_bit_flip() {
        let vals: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let c = Container::from_f64("flaky", vec![4096], &vals, BTreeMap::new());
        let path = tmp("retry.lqio");
        write_container(&path, &c).unwrap();
        let good = std::fs::read(&path).unwrap();

        // First fetch sees a flipped bit; subsequent fetches are clean —
        // models a transient read-path fault rather than media corruption.
        let mut calls = 0;
        let (back, attempts) = read_container_retrying(3, || {
            calls += 1;
            let mut b = good.clone();
            if calls == 1 {
                let mid = b.len() / 2;
                b[mid] ^= 0x01;
            }
            Ok(b)
        })
        .unwrap();
        assert_eq!(attempts, 2);
        assert_eq!(back.to_f64().unwrap(), vals);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_error() {
        let vals: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let c = Container::from_f64("dead", vec![4096], &vals, BTreeMap::new());
        let path = tmp("retry_dead.lqio");
        write_container(&path, &c).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        // Corruption is on the media: every re-read sees it.
        match read_container_with_retry(&path, 2) {
            Err(IoError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_recovers_intact_chunks_and_reports_the_hole() {
        let n = (DEFAULT_CHUNK_BYTES * 3) / 8;
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let c = Container::from_f64("salvage", vec![n], &vals, BTreeMap::new());
        let path = tmp("salvage.lqio");
        write_container(&path, &c).unwrap();

        // Corrupt a byte inside the second chunk's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let header_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let chunk1_payload = 12 + header_len + 8 + DEFAULT_CHUNK_BYTES + 4 + 8 + 100;
        bytes[chunk1_payload] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let s = salvage_container(&path).unwrap();
        assert!(!s.is_complete());
        assert_eq!(s.corrupt_chunks, vec![1]);
        assert_eq!(
            s.lost_ranges,
            vec![(DEFAULT_CHUNK_BYTES, 2 * DEFAULT_CHUNK_BYTES)]
        );
        assert_eq!(s.payload.len(), n * 8);

        // Chunks 0 and 2 decode to the original values; the hole is zeros.
        let per_chunk = DEFAULT_CHUNK_BYTES / 8;
        let decoded: Vec<f64> = s
            .payload
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
            .collect();
        assert_eq!(decoded[..per_chunk], vals[..per_chunk]);
        assert_eq!(decoded[2 * per_chunk..], vals[2 * per_chunk..]);
        assert!(decoded[per_chunk..2 * per_chunk].iter().all(|&v| v == 0.0));

        // Strict conversion refuses the incomplete data.
        assert!(s.into_container().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_pads_a_truncated_file() {
        let n = (DEFAULT_CHUNK_BYTES * 2) / 8;
        let vals: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let c = Container::from_f64("trunc", vec![n], &vals, BTreeMap::new());
        let path = tmp("trunc.lqio");
        write_container(&path, &c).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file in the middle of the second chunk.
        let cut = bytes.len() - DEFAULT_CHUNK_BYTES / 2;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        // The strict reader refuses truncated files…
        assert!(read_container(&path).is_err());
        // …while salvage keeps the first chunk and pads the tail.
        let s = salvage_container(&path).unwrap();
        assert_eq!(s.payload.len(), n * 8);
        assert_eq!(s.lost_ranges, vec![(DEFAULT_CHUNK_BYTES, n * 8)]);
        let first: Vec<f64> = s.payload[..DEFAULT_CHUNK_BYTES]
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
            .collect();
        assert_eq!(first, vals[..DEFAULT_CHUNK_BYTES / 8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_of_a_clean_file_is_complete() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let c = Container::from_f64("clean", vec![1000], &vals, BTreeMap::new());
        let path = tmp("salvage_clean.lqio");
        write_container(&path, &c).unwrap();
        let s = salvage_container(&path).unwrap();
        assert!(s.is_complete());
        assert_eq!(s.lost_bytes(), 0);
        let back = s.into_container().unwrap();
        assert_eq!(back.to_f64().unwrap(), vals);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_at_every_structural_boundary_returns_err() {
        let n = (DEFAULT_CHUNK_BYTES * 3 / 2) / 8;
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let c = Container::from_f64("cut", vec![n], &vals, BTreeMap::new());
        let path = tmp("cut.lqio");
        write_container(&path, &c).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;

        // Cuts landing mid-magic, mid-header-length, mid-header-JSON,
        // mid-chunk-length, mid-payload, and mid-CRC must all surface as a
        // structured error — never a panic.
        let chunk0 = 12 + header_len;
        for cut in [
            4,                                    // inside the magic
            10,                                   // inside the header length field
            12 + header_len / 2,                  // inside the header JSON
            chunk0 + 4,                           // inside the first chunk's length
            chunk0 + 8 + 100,                     // inside the first payload
            chunk0 + 8 + DEFAULT_CHUNK_BYTES + 2, // inside the first CRC
            bytes.len() - 2,                      // inside the final CRC
        ] {
            let err = parse_container(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail, got {err:?}");
        }
        // …and an untruncated image still parses.
        assert_eq!(parse_container(&bytes).unwrap().to_f64().unwrap(), vals);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_chunk_files_work() {
        // 3.5 chunks worth of data.
        let n = (DEFAULT_CHUNK_BYTES * 7 / 2) / 8;
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let c = Container::from_f64("multi", vec![n], &vals, BTreeMap::new());
        let path = tmp("multichunk.lqio");
        write_container(&path, &c).unwrap();
        let back = read_container(&path).unwrap();
        assert_eq!(back.header.n_chunks, 4);
        assert_eq!(back.to_f64().unwrap(), vals);
        std::fs::remove_file(&path).ok();
    }
}
