//! The Feynman–Hellmann (FH) propagator method — the paper's physics
//! algorithm (Bouchard, Chang, Kurth, Orginos, Walker-Loud, PRD 96 014504).
//!
//! Traditional calculations of the axial coupling build three-point functions
//! at a few fixed source–sink separations and fit the large-time region,
//! where the signal-to-noise ratio has decayed exponentially. The FH method
//! instead solves one extra ("sequential") Dirac equation per quark line,
//!
//! `D ψ_FH = Γ_A S`,
//!
//! with the axial current `Γ_A = γ3 γ5` inserted *summed over all spacetime*.
//! Substituting `ψ_FH` for one quark line at a time in the nucleon
//! contraction yields a correlator whose logarithmic time-derivative
//! plateaus at `gA` — giving every source–sink separation for the cost of a
//! single traditional separation, which is exactly why the paper's Fig. 1
//! reaches a more precise answer with an order of magnitude fewer samples.

use crate::complex::C64;
use crate::contract::proton_correlator_general;
use crate::field::FermionField;
use crate::gamma::{gamma3_gamma5, SpinMatrix};
use crate::lattice::Lattice;
use crate::prop::{Propagator, PropagatorSolver};
use crate::solver::SolveStats;

/// Feynman–Hellmann machinery bound to a propagator solver.
pub struct FeynmanHellmann<'s, 'a> {
    solver: &'s PropagatorSolver<'a>,
    insertion: SpinMatrix<f64>,
}

impl<'s, 'a> FeynmanHellmann<'s, 'a> {
    /// FH setup for the z-polarized axial current `A3 = q̄ γ3 γ5 q`.
    pub fn axial(solver: &'s PropagatorSolver<'a>) -> Self {
        Self {
            solver,
            insertion: gamma3_gamma5(),
        }
    }

    /// FH setup for an arbitrary current spin structure.
    pub fn with_insertion(solver: &'s PropagatorSolver<'a>, insertion: SpinMatrix<f64>) -> Self {
        Self { solver, insertion }
    }

    /// The current's spin structure.
    pub fn insertion(&self) -> &SpinMatrix<f64> {
        &self.insertion
    }

    /// The FH propagator: `D ψ_FH = Γ_A S` with the insertion summed over
    /// all spacetime (one extra inversion per column — the whole trick).
    pub fn fh_propagator(&self, base: &Propagator) -> (Propagator, Vec<SolveStats>) {
        self.solver.sequential_propagator(base, &self.insertion)
    }

    /// Sequential propagator with the current inserted on a single time
    /// slice only — the building block of the *traditional* three-point
    /// method, requiring one inversion set per insertion time.
    pub fn fixed_time_propagator(
        &self,
        base: &Propagator,
        t_insert: usize,
    ) -> (Propagator, Vec<SolveStats>) {
        let lat = self.solver.lattice();
        let mut columns = Vec::with_capacity(12);
        let mut stats = Vec::with_capacity(12);
        for col in &base.columns {
            let src = FermionField {
                data: (0..lat.volume())
                    .map(|x| {
                        if lat.time_of(x) == t_insert {
                            col.data[x].apply_spin_matrix(&self.insertion)
                        } else {
                            crate::spinor::Spinor::zero()
                        }
                    })
                    .collect(),
            };
            let (q, s) = self.solver.solve(&src);
            assert!(s.converged, "fixed-time sequential solve failed: {s:?}");
            columns.push(q);
            stats.push(s);
        }
        (
            Propagator {
                columns,
                source_site: base.source_site,
                source_time: base.source_time,
            },
            stats,
        )
    }
}

/// The FH-substituted nucleon correlator for the isovector axial current
/// `A3 = ū γ3γ5 u − d̄ γ3γ5 d`: the current is inserted on each up-quark
/// line in turn (two lines) minus the down-quark line.
pub fn fh_nucleon_correlator(
    lattice: &Lattice,
    prop_u: &Propagator,
    prop_d: &Propagator,
    fh_u: &Propagator,
    fh_d: &Propagator,
    projector: &SpinMatrix<f64>,
) -> Vec<C64> {
    let c_u1 = proton_correlator_general(lattice, fh_u, prop_u, prop_d, projector);
    let c_u2 = proton_correlator_general(lattice, prop_u, fh_u, prop_d, projector);
    let c_d = proton_correlator_general(lattice, prop_u, prop_u, fh_d, projector);
    (0..lattice.nt())
        .map(|t| c_u1[t] + c_u2[t] - c_d[t])
        .collect()
}

/// The effective coupling `g_eff(t) = R(t+1) − R(t)` with
/// `R(t) = C_FH(t) / C_2pt(t)`.
///
/// For a matrix element `g` with the FH insertion summed over all time,
/// `R(t) → const + g·t` in the ground-state region, so the finite difference
/// plateaus at `g` — this is the quantity plotted in the paper's Fig. 1.
pub fn effective_ga(c2pt: &[f64], cfh: &[f64]) -> Vec<f64> {
    assert_eq!(c2pt.len(), cfh.len());
    let r: Vec<f64> = c2pt
        .iter()
        .zip(cfh)
        .map(|(&c2, &cf)| if c2 != 0.0 { cf / c2 } else { f64::NAN })
        .collect();
    (0..r.len().saturating_sub(1))
        .map(|t| r[t + 1] - r[t])
        .collect()
}

/// The traditional three-point ratio
/// `R_trad(t_sep, τ) = C_3pt(t_sep, τ) / C_2pt(t_sep)`, which plateaus at the
/// matrix element for `0 ≪ τ ≪ t_sep`. `c3pt[t]` must be the substituted
/// correlator built from a fixed-`τ` sequential propagator.
pub fn traditional_ratio(c2pt: &[f64], c3pt: &[f64], t_sep: usize) -> f64 {
    assert!(t_sep < c2pt.len());
    if c2pt[t_sep] != 0.0 {
        c3pt[t_sep] / c2pt[t_sep]
    } else {
        f64::NAN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;
    use crate::field::GaugeField;
    use crate::gamma::polarized_projector;
    use crate::prop::SolverKind;

    fn quenched_setup() -> (Lattice, GaugeField<f64>) {
        let lat = Lattice::new([4, 4, 4, 8]);
        let mut ens = crate::gauge::QuenchedEnsemble::cold_start(
            &lat,
            crate::gauge::HeatbathParams { beta: 6.0, n_or: 1 },
            13,
        );
        for _ in 0..5 {
            ens.update();
        }
        (lat.clone(), ens.current().clone())
    }

    #[test]
    fn fixed_time_insertions_sum_to_full_fh_propagator() {
        // Linearity of the Dirac inverse: Σ_τ D⁻¹(Γ S δ_{t,τ}) = D⁻¹(Γ S).
        let (lat, gauge) = quenched_setup();
        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonBicgstab { mass: 0.5 });
        let (base, _) = solver.point_propagator(0);
        let fh = FeynmanHellmann::axial(&solver);

        let (full, _) = fh.fh_propagator(&base);
        let mut summed = vec![crate::spinor::Spinor::zero(); lat.volume()];
        for t in 0..lat.nt() {
            let (part, _) = fh.fixed_time_propagator(&base, t);
            blas::axpy(1.0, &part.columns[5].data, &mut summed);
        }
        let diff = blas::sub(&summed, &full.columns[5].data);
        let rel = blas::norm_sqr(&diff) / blas::norm_sqr(&full.columns[5].data);
        assert!(rel < 1e-10, "linearity violated: rel {rel}");
    }

    #[test]
    fn effective_ga_extracts_linear_slope() {
        // If C_FH(t) = (a + g·t)·C2(t) exactly, g_eff must equal g at all t.
        let c2: Vec<f64> = (0..12).map(|t| 5.0 * (-0.4 * t as f64).exp()).collect();
        let g = 1.271;
        let cfh: Vec<f64> = c2
            .iter()
            .enumerate()
            .map(|(t, &c)| (0.3 + g * t as f64) * c)
            .collect();
        let geff = effective_ga(&c2, &cfh);
        for v in &geff {
            assert!((v - g).abs() < 1e-12, "g_eff {v} != {g}");
        }
    }

    #[test]
    fn fh_nucleon_correlator_runs_on_real_pipeline() {
        let (lat, gauge) = quenched_setup();
        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonBicgstab { mass: 0.5 });
        let (prop, _) = solver.point_propagator(0);
        let fh = FeynmanHellmann::axial(&solver);
        let (fh_prop, _) = fh.fh_propagator(&prop);

        let proj = polarized_projector();
        let c2 = crate::contract::proton_correlator(&lat, &prop, &prop, &proj);
        let cfh = fh_nucleon_correlator(&lat, &prop, &prop, &fh_prop, &fh_prop, &proj);

        assert_eq!(cfh.len(), lat.nt());
        let c2r: Vec<f64> = c2.iter().map(|c| c.re).collect();
        let cfhr: Vec<f64> = cfh.iter().map(|c| c.re).collect();
        let geff = effective_ga(&c2r, &cfhr);
        // Single quenched config at heavy mass: no physical value expected,
        // but the pipeline must produce finite numbers in the interior.
        for t in 0..4 {
            assert!(geff[t].is_finite(), "g_eff({t}) not finite");
        }
    }

    #[test]
    fn traditional_ratio_matches_definition() {
        let c2 = vec![8.0, 4.0, 2.0, 1.0];
        let c3 = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(traditional_ratio(&c2, &c3, 2), 1.5);
    }
}
