//! Fault-injection sweep: how the three schedulers degrade when nodes crash
//! mid-run.
//!
//! The paper's production runs lose nodes constantly ("a handful of nodes
//! fail every day" at Sierra scale); METAQ and `mpi_jm` exist in large part
//! because a naive bundled job forfeits the *whole* allocation's remaining
//! work when one node dies, while a work-queue only forfeits the tasks that
//! were touching the dead node. This experiment sweeps the per-node MTBF
//! and compares completed-work fraction, wasted work, and wall-clock for
//! naive bundling vs METAQ vs `mpi_jm` under an identical, deterministic
//! fault schedule (same seed → same crash times for every scheduler).

use crate::output::{print_table, ExperimentOutput};
use coral_machine::sierra;
use mpi_jm::{
    Cluster, ClusterConfig, FaultConfig, FaultStats, MetaqScheduler, MpiJmConfig, MpiJmScheduler,
    NaiveBundler, RetryPolicy, SimReport, Workload,
};
use obs::Json;
use std::io::Write;

/// Per-node mean-time-between-failures values swept, in seconds. `inf`
/// (encoded as 0 = faults disabled) is the pristine baseline; 10 000 s on a
/// 64-node cluster is a crash somewhere every ~156 s — a deliberately brutal
/// endpoint where a naive bundle essentially never gets a crash-free wave
/// (P ≈ e^-6.4 per ~1000 s wave).
const MTBF_SWEEP: [f64; 6] = [0.0, 160_000.0, 80_000.0, 40_000.0, 20_000.0, 10_000.0];

/// Transient (non-fatal) task failure probability held fixed across the
/// sweep so the MTBF axis isolates the *crash* response.
const TRANSIENT_PROB: f64 = 0.02;

/// One scheduler's response at one failure rate.
pub(crate) struct SweepPoint {
    pub(crate) mtbf: f64,
    pub(crate) scheduler: &'static str,
    pub(crate) report: SimReport,
}

/// Run one scheduler at one MTBF under the sweep's fixed workload, cluster,
/// and deterministic fault schedule. Shared with the metrics experiment so
/// its golden `metrics.json` exercises exactly the sweep's fault paths.
pub(crate) fn run_point(mtbf: f64, scheduler: &'static str) -> SweepPoint {
    let workload = Workload::heterogeneous_solves(16 * 4, 4, 1000.0, 0.35, 1e15, 7);
    let config = ClusterConfig {
        nodes: 64,
        jitter_sigma: 0.06,
        startup_failure_prob: 0.0,
        seed: 3,
    };
    let faults = FaultConfig {
        node_mtbf_seconds: mtbf,
        transient_fail_prob: if mtbf > 0.0 { TRANSIENT_PROB } else { 0.0 },
        seed: 0x5EED,
        ..FaultConfig::default()
    };
    let policy = RetryPolicy::default();
    let report = match scheduler {
        "naive" => NaiveBundler::run_with_faults(
            &mut Cluster::new(sierra(), &config),
            &workload,
            &faults,
            &policy,
        ),
        "metaq" => MetaqScheduler::run_with_faults(
            &mut Cluster::new(sierra(), &config),
            &workload,
            &faults,
            &policy,
        ),
        "mpi_jm" => MpiJmScheduler::new(MpiJmConfig {
            lump_nodes: 32,
            block_nodes: 4,
            ..MpiJmConfig::default()
        })
        .run_with_faults(
            &mut Cluster::new(sierra(), &config),
            &workload,
            &faults,
            &policy,
        ),
        other => unreachable!("unknown scheduler {other}"),
    };
    SweepPoint {
        mtbf,
        scheduler,
        report,
    }
}

/// Every [`FaultStats`] counter as ordered JSON.
pub(crate) fn fault_stats_json(f: &FaultStats) -> Json {
    Json::obj(vec![
        ("node_crashes", Json::from(f.node_crashes)),
        ("transient_failures", Json::from(f.transient_failures)),
        ("stragglers", Json::from(f.stragglers)),
        ("nic_degraded_nodes", Json::from(f.nic_degraded_nodes)),
        ("retries", Json::from(f.retries)),
        ("requeues", Json::from(f.requeues)),
        ("permanent_failures", Json::from(f.permanent_failures)),
        ("abandoned_tasks", Json::from(f.abandoned_tasks)),
        ("blacklisted_nodes", Json::from(f.blacklisted_nodes)),
        ("wasted_node_seconds", Json::from(f.wasted_node_seconds)),
    ])
}

/// Run the MTBF sweep; returns (naive, mpi_jm) completed-work fractions at
/// the highest failure rate for the acceptance check.
pub fn run_faults(out: &ExperimentOutput) -> (f64, f64) {
    let schedulers = ["naive", "metaq", "mpi_jm"];
    let mut points: Vec<SweepPoint> = Vec::new();
    for &mtbf in &MTBF_SWEEP {
        for s in schedulers {
            points.push(run_point(mtbf, s));
        }
    }

    // Console table.
    let mut rows = Vec::new();
    for p in &points {
        let r = &p.report;
        rows.push(vec![
            if p.mtbf > 0.0 {
                format!("{:.0}", p.mtbf)
            } else {
                "inf".into()
            },
            p.scheduler.to_string(),
            format!("{:.0}", r.makespan),
            format!("{:.1}%", 100.0 * r.completed_work_fraction()),
            format!("{:.1}%", 100.0 * r.wasted_work_fraction()),
            r.faults.node_crashes.to_string(),
            r.faults.retries.to_string(),
            format!("{}", r.failed_tasks + r.faults.abandoned_tasks),
        ]);
    }
    print_table(
        "Fault sweep — 64 heterogeneous 4-node solves, 64 Sierra nodes, per-node MTBF",
        &[
            "MTBF (s)",
            "scheduler",
            "makespan (s)",
            "completed",
            "wasted",
            "crashes",
            "retries",
            "lost tasks",
        ],
        &rows,
    );
    println!(
        "\nblast radius: a naive bundle forfeits the whole wave per crash; \
         METAQ/mpi_jm forfeit only the tasks touching the dead node"
    );

    // CSV: one row per (mtbf, scheduler) point.
    let csv_rows: Vec<Vec<f64>> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let r = &p.report;
            vec![
                p.mtbf,
                (i % schedulers.len()) as f64,
                r.makespan,
                r.completed_work_fraction(),
                r.wasted_work_fraction(),
                r.faults.node_crashes as f64,
                r.faults.retries as f64,
                r.faults.permanent_failures as f64,
                r.faults.abandoned_tasks as f64,
                r.faults.wasted_node_seconds,
            ]
        })
        .collect();
    out.csv(
        "faults.csv",
        "mtbf_s,scheduler,makespan_s,completed_fraction,wasted_fraction,\
         node_crashes,retries,permanent_failures,abandoned_tasks,wasted_node_s",
        &csv_rows,
    )
    .expect("csv");

    // JSON: full fault counters per point, machine-readable.
    let json_points: Vec<Json> = points
        .iter()
        .map(|p| {
            let r = &p.report;
            Json::obj(vec![
                (
                    "mtbf_seconds",
                    if p.mtbf > 0.0 {
                        Json::from(p.mtbf)
                    } else {
                        Json::Null
                    },
                ),
                ("scheduler", Json::from(p.scheduler)),
                ("makespan_seconds", Json::from(r.makespan)),
                (
                    "completed_work_fraction",
                    Json::from(r.completed_work_fraction()),
                ),
                ("wasted_work_fraction", Json::from(r.wasted_work_fraction())),
                ("completed_tasks", Json::from(r.completed_tasks)),
                ("failed_tasks", Json::from(r.failed_tasks)),
                ("faults", fault_stats_json(&r.faults)),
            ])
        })
        .collect();
    let json = Json::obj(vec![
        ("experiment", Json::from("faults")),
        (
            "workload",
            Json::from("64 heterogeneous 4-node solves (~1000 s each)"),
        ),
        ("cluster", Json::from("64 Sierra nodes")),
        ("transient_fail_prob", Json::from(TRANSIENT_PROB)),
        ("points", Json::Arr(json_points)),
    ])
    .to_string_pretty();
    std::fs::write(out.path("faults.json"), &json).expect("write json");

    // Markdown report.
    let mut md = String::new();
    md.push_str("# Fault-injection sweep\n\n");
    md.push_str(
        "64 heterogeneous 4-node solves on 64 Sierra nodes; deterministic \
         per-node crash schedule (exponential MTBF), 2% transient task \
         failure rate, retry budget 4 with capped exponential backoff.\n\n",
    );
    md.push_str(
        "| MTBF (s) | scheduler | makespan (s) | completed | wasted | crashes | retries |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for p in &points {
        let r = &p.report;
        md.push_str(&format!(
            "| {} | {} | {:.0} | {:.1}% | {:.1}% | {} | {} |\n",
            if p.mtbf > 0.0 {
                format!("{:.0}", p.mtbf)
            } else {
                "∞".into()
            },
            p.scheduler,
            r.makespan,
            100.0 * r.completed_work_fraction(),
            100.0 * r.wasted_work_fraction(),
            r.faults.node_crashes,
            r.faults.retries,
        ));
    }
    let naive_last = points
        .iter()
        .rfind(|p| p.scheduler == "naive")
        .expect("naive point");
    let mpijm_last = points
        .iter()
        .rfind(|p| p.scheduler == "mpi_jm")
        .expect("mpi_jm point");
    md.push_str(&format!(
        "\nAt the harshest failure rate (MTBF {:.0} s) `mpi_jm` completes \
         {:.1}% of the submitted work vs {:.1}% for naive bundling — the \
         work-queue's per-job blast radius vs the bundle's whole-wave one.\n",
        naive_last.mtbf,
        100.0 * mpijm_last.report.completed_work_fraction(),
        100.0 * naive_last.report.completed_work_fraction(),
    ));
    let mut f = std::io::BufWriter::new(
        std::fs::File::create(out.path("faults.md")).expect("create faults.md"),
    );
    f.write_all(md.as_bytes()).expect("write faults.md");

    (
        naive_last.report.completed_work_fraction(),
        mpijm_last.report.completed_work_fraction(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpijm_retains_at_least_twice_naive_completed_work_at_peak_failure_rate() {
        let out = ExperimentOutput::new(std::env::temp_dir().join("faults_test")).unwrap();
        let (naive_frac, mpijm_frac) = run_faults(&out);
        assert!(
            mpijm_frac >= 2.0 * naive_frac,
            "mpi_jm must retain >=2x naive's completed work under heavy \
             faults: mpi_jm {mpijm_frac:.3} vs naive {naive_frac:.3}"
        );
        assert!(out.path("faults.csv").exists());
        assert!(out.path("faults.json").exists());
        assert!(out.path("faults.md").exists());
    }

    #[test]
    fn pristine_baseline_matches_fault_free_run() {
        // MTBF 0 disables injection entirely: the sweep's baseline must be
        // identical to the plain scheduler entry points.
        let p = run_point(0.0, "metaq");
        assert_eq!(p.report.faults.node_crashes, 0);
        assert_eq!(p.report.faults.retries, 0);
        assert!((p.report.completed_work_fraction() - 1.0).abs() < 1e-12);
        assert!(p.report.wasted_records.is_empty());
    }
}
