//! `repro serve` — drive the solve-service gateway with deterministic
//! Zipf-distributed synthetic traffic and publish the service-side
//! statistics: latency quantiles, cache hit rate, batch occupancy, queue
//! depth, and fault-recovery counts.
//!
//! Everything in `serve.json` / `serve.md` is derived from *virtual time*
//! and bit-stable solver iteration counts — never from the wall clock —
//! so the committed artifacts are bit-identical on any machine at any
//! `RAYON_NUM_THREADS`. Wall-clock throughput is printed to the console
//! only, through the injected [`Clock`].
//!
//! The run enforces the service's own guarantees as it goes:
//!
//! - every audited cache hit is re-solved cold and compared bit-for-bit
//!   (the gateway aborts on mismatch);
//! - every audited batch has a column re-solved through the unbatched
//!   `cg` and compared bit-for-bit;
//! - the fault-injection layer runs *under* the service: the sharded
//!   share of traffic solves through `cg_ft` with a mild wire-fault
//!   profile live, and the recovered-solve count must come out positive;
//! - the Zipf head must make the content-addressed cache earn a hit rate
//!   of at least one half.

use crate::output::ExperimentOutput;
use lqcd_core::comms::{splitmix64, CommFaultProfile};
use obs::{Clock, Json, Registry, WallClock};
use solve_service::{
    generate, Backend, BackendConfig, CacheStats, Gateway, GatewayConfig, ResultCache, ServeReport,
    TrafficConfig,
};

/// Options for the serve subcommand.
#[derive(Default)]
pub struct ServeOpts {
    /// Scale the stream down for CI smoke runs.
    pub quick: bool,
}

/// The wire-fault intensity injected under the sharded share of traffic:
/// the `mild` setting of the chaos sweep — every fault class active, all
/// healable by the NACK/retransmit layer.
fn mild_faults() -> CommFaultProfile {
    CommFaultProfile {
        corrupt_prob: 0.03,
        drop_prob: 0.03,
        duplicate_prob: 0.025,
        reorder_prob: 0.025,
        delay_prob: 0.05,
        seed: splitmix64(20180806),
        ..CommFaultProfile::default()
    }
}

struct ServeSetup {
    traffic: TrafficConfig,
    gateway: GatewayConfig,
    backend: BackendConfig,
    cache_capacity: usize,
}

fn setup(quick: bool) -> ServeSetup {
    let traffic = TrafficConfig {
        n_requests: if quick { 4096 } else { 1_000_000 },
        n_tenants: 4,
        n_configs: 4,
        n_seeds: 16,
        masses: vec![0.2, 0.08],
        zipf_exponent: 1.1,
        mean_interarrival: if quick { 8 } else { 2 },
        sharded_per_mille: 4,
        seed: 20180806,
    };
    let gateway = GatewayConfig {
        queue_capacity: 64,
        n_servers: 2,
        max_nrhs: 8,
        n_tenants: traffic.n_tenants,
        drr_quantum: 1.0,
        hit_cost: 1,
        batch_base_cost: 16,
        cost_per_iteration: 4,
        cost_per_column: 2,
        audit_every: if quick { 64 } else { 997 },
    };
    let backend = BackendConfig {
        dims: [4, 4, 2, 4],
        n_configs: traffic.n_configs,
        l5: 4,
        max_iter: 4000,
        fault_profile: Some(mild_faults()),
    };
    ServeSetup {
        traffic,
        gateway,
        backend,
        // Below the distinct-key count, so the LRU tail spills to disk and
        // some of it is revived (exercising the CRC + key-metadata gate).
        cache_capacity: 64,
    }
}

/// Run the service and write `serve.json` + `serve.md`. Inject a
/// [`ManualClock`](obs::ManualClock) for bit-stable console output in
/// tests; the artifacts never contain wall time either way.
pub fn run_serve_with_clock(
    out: &ExperimentOutput,
    opts: &ServeOpts,
    clock: &dyn Clock,
) -> std::io::Result<()> {
    let s = setup(opts.quick);
    println!(
        "repro serve: {} requests, {} configs x {} seeds x {} masses, cache {} entries",
        s.traffic.n_requests,
        s.traffic.n_configs,
        s.traffic.n_seeds,
        s.traffic.masses.len(),
        s.cache_capacity,
    );

    // Spill directory: fresh per run so revived entries are exactly the
    // ones this run evicted (a warm spill dir would change the goldens).
    let spill = std::env::temp_dir().join(format!("serve-spill-{}", std::process::id()));
    std::fs::create_dir_all(&spill)?;

    let backend = Backend::new(s.backend.clone()).map_err(std::io::Error::from)?;
    let cache = ResultCache::new(s.cache_capacity, Some(spill.clone()));
    let requests = generate(&s.traffic);

    let reg = Registry::new();
    let t0 = clock.now();
    let report = {
        let _guard = reg.install_scoped();
        Gateway::new(&backend, &cache, s.gateway.clone())
            .run(&requests)
            .map_err(std::io::Error::from)?
    };
    let wall = clock.now() - t0;
    let cache_stats = cache.stats();
    std::fs::remove_dir_all(&spill).ok();

    // The acceptance gates: the run is wrong, not just slow, if any fails.
    assert!(
        report.hit_rate() >= 0.5,
        "Zipf traffic must hit at least half the time, got {:.3}",
        report.hit_rate()
    );
    assert!(
        report.recovered > 0,
        "the fault-injected sharded share must recover at least one solve"
    );
    assert_eq!(report.unconverged, 0, "every solve must converge");
    assert!(report.audits_passed > 0, "audits must actually run");
    assert_eq!(
        report.submitted,
        report.served + report.rejected,
        "every request is served or rejected"
    );

    let latency = reg
        .try_histogram("serve.latency_ticks")
        .map(|h| h.snapshot());
    let occupancy = reg
        .try_histogram("serve.batch_occupancy")
        .map(|h| h.snapshot());
    let depth = reg.try_histogram("serve.queue_depth").map(|h| h.snapshot());

    let doc = render_json(&s, &report, &cache_stats, &latency, &occupancy, &depth);
    std::fs::write(out.path("serve.json"), &doc)?;
    let md = render_markdown(&s, &report, &cache_stats);
    std::fs::write(out.path("serve.md"), &md)?;

    println!(
        "  served {} / rejected {} of {} (hit rate {:.1}%, {} solves, {} recovered)",
        report.served,
        report.rejected,
        report.submitted,
        100.0 * report.hit_rate(),
        report.solved_keys,
        report.recovered,
    );
    println!(
        "  latency p50 {} p99 {} ticks; mean batch occupancy {:.2}; {:.2}s wall",
        report.latency_p50,
        report.latency_p99,
        mean_occupancy(&report),
        wall,
    );
    Ok(())
}

/// Run with the wall clock (the CLI path).
pub fn run_serve(out: &ExperimentOutput, opts: &ServeOpts) -> std::io::Result<()> {
    run_serve_with_clock(out, opts, &WallClock::new())
}

fn mean_occupancy(report: &ServeReport) -> f64 {
    if report.batches == 0 {
        return 0.0;
    }
    report.batched_columns as f64 / report.batches as f64
}

fn histogram_json(snap: &Option<obs::HistogramSnapshot>) -> Json {
    match snap {
        None => Json::Null,
        Some(s) => Json::obj(vec![
            (
                "bounds",
                Json::Arr(s.bounds.iter().map(|&b| Json::Num(b)).collect()),
            ),
            (
                "buckets",
                Json::Arr(s.buckets.iter().map(|&c| Json::Num(c as f64)).collect()),
            ),
            ("count", Json::Num(s.count as f64)),
            ("sum", Json::Num(s.sum)),
            ("min", Json::Num(if s.count == 0 { 0.0 } else { s.min })),
            ("max", Json::Num(if s.count == 0 { 0.0 } else { s.max })),
        ]),
    }
}

fn render_json(
    s: &ServeSetup,
    report: &ServeReport,
    cache: &CacheStats,
    latency: &Option<obs::HistogramSnapshot>,
    occupancy: &Option<obs::HistogramSnapshot>,
    depth: &Option<obs::HistogramSnapshot>,
) -> String {
    let tenants: Vec<Json> = report
        .per_tenant_served
        .iter()
        .zip(report.per_tenant_rejected.iter())
        .enumerate()
        .map(|(t, (&served, &rejected))| {
            Json::obj(vec![
                ("tenant", Json::Num(t as f64)),
                ("served", Json::Num(served as f64)),
                ("rejected", Json::Num(rejected as f64)),
            ])
        })
        .collect();
    let mut doc = Json::obj(vec![
        ("schema", Json::Str("serve-v1".to_string())),
        (
            "config",
            Json::obj(vec![
                ("n_requests", Json::Num(s.traffic.n_requests as f64)),
                ("n_tenants", Json::Num(s.traffic.n_tenants as f64)),
                ("n_configs", Json::Num(s.traffic.n_configs as f64)),
                ("n_seeds", Json::Num(s.traffic.n_seeds as f64)),
                (
                    "masses",
                    Json::Arr(s.traffic.masses.iter().map(|&m| Json::Num(m)).collect()),
                ),
                ("zipf_exponent", Json::Num(s.traffic.zipf_exponent)),
                (
                    "sharded_per_mille",
                    Json::Num(s.traffic.sharded_per_mille as f64),
                ),
                ("cache_capacity", Json::Num(s.cache_capacity as f64)),
                ("queue_capacity", Json::Num(s.gateway.queue_capacity as f64)),
                ("n_servers", Json::Num(s.gateway.n_servers as f64)),
                ("max_nrhs", Json::Num(s.gateway.max_nrhs as f64)),
                ("audit_every", Json::Num(s.gateway.audit_every as f64)),
            ]),
        ),
        (
            "results",
            Json::obj(vec![
                ("submitted", Json::Num(report.submitted as f64)),
                ("served", Json::Num(report.served as f64)),
                ("rejected", Json::Num(report.rejected as f64)),
                ("hits", Json::Num(report.hits as f64)),
                ("spill_hits", Json::Num(report.spill_hits as f64)),
                ("coalesced", Json::Num(report.coalesced as f64)),
                ("hit_rate", Json::Num(report.hit_rate())),
                ("solved_keys", Json::Num(report.solved_keys as f64)),
                ("batches", Json::Num(report.batches as f64)),
                ("batched_columns", Json::Num(report.batched_columns as f64)),
                ("mean_batch_occupancy", Json::Num(mean_occupancy(report))),
                ("sharded_solves", Json::Num(report.sharded_solves as f64)),
                ("recovered", Json::Num(report.recovered as f64)),
                ("unconverged", Json::Num(report.unconverged as f64)),
                ("audits_passed", Json::Num(report.audits_passed as f64)),
                ("latency_p50_ticks", Json::Num(report.latency_p50)),
                ("latency_p99_ticks", Json::Num(report.latency_p99)),
                ("max_queue_depth", Json::Num(report.max_queue_depth as f64)),
                (
                    "virtual_makespan",
                    Json::Num(report.virtual_makespan as f64),
                ),
                ("per_tenant", Json::Arr(tenants)),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                ("evictions", Json::Num(cache.evictions as f64)),
                ("spills", Json::Num(cache.spills as f64)),
                ("spill_hits", Json::Num(cache.spill_hits as f64)),
                ("spill_rejects", Json::Num(cache.spill_rejects as f64)),
            ]),
        ),
        (
            "histograms",
            Json::obj(vec![
                ("latency_ticks", histogram_json(latency)),
                ("batch_occupancy", histogram_json(occupancy)),
                ("queue_depth", histogram_json(depth)),
            ]),
        ),
    ]);
    doc.sort_keys();
    let mut out = doc.to_string_pretty();
    out.push('\n');
    out
}

fn render_markdown(s: &ServeSetup, report: &ServeReport, cache: &CacheStats) -> String {
    let mut md = String::new();
    md.push_str("# Solve service under Zipf load\n\n");
    md.push_str(&format!(
        "{} requests from {} tenants against {} configurations × {} sources × {} masses \
         (Zipf s={}), cache capacity {} entries, {} virtual servers, batches up to {} RHS.\n\n",
        s.traffic.n_requests,
        s.traffic.n_tenants,
        s.traffic.n_configs,
        s.traffic.n_seeds,
        s.traffic.masses.len(),
        s.traffic.zipf_exponent,
        s.cache_capacity,
        s.gateway.n_servers,
        s.gateway.max_nrhs,
    ));
    md.push_str("| metric | value |\n|---|---|\n");
    let mut row = |k: &str, v: String| {
        md.push_str(&format!("| {k} | {v} |\n"));
    };
    row(
        "served / submitted",
        format!("{} / {}", report.served, report.submitted),
    );
    row(
        "rejected (admission control)",
        format!("{}", report.rejected),
    );
    row(
        "hit rate (memory + spill + coalesced)",
        format!("{:.3}", report.hit_rate()),
    );
    row(
        "hits / spill hits / coalesced",
        format!(
            "{} / {} / {}",
            report.hits, report.spill_hits, report.coalesced
        ),
    );
    row("unique systems solved", format!("{}", report.solved_keys));
    row(
        "batches (mean occupancy)",
        format!("{} ({:.2} RHS)", report.batches, mean_occupancy(report)),
    );
    row(
        "sharded solves (fault-injected)",
        format!("{}", report.sharded_solves),
    );
    row("recovered solves", format!("{}", report.recovered));
    row(
        "latency p50 / p99 (virtual ticks)",
        format!("{} / {}", report.latency_p50, report.latency_p99),
    );
    row("max queue depth", format!("{}", report.max_queue_depth));
    row(
        "cache evictions / spills / spill rejects",
        format!(
            "{} / {} / {}",
            cache.evictions, cache.spills, cache.spill_rejects
        ),
    );
    row(
        "bit-identity audits passed",
        format!("{}", report.audits_passed),
    );
    md.push_str(
        "\nEvery audited cache hit was re-solved cold and compared bit-for-bit; every audited \
         batch had a column re-solved through the unbatched CG likewise. The sharded share of \
         traffic ran over the fault-injected transport (mild profile) and still converged to \
         bit-identical residuals; `recovered` counts solves that needed retransmits or \
         checkpoint restarts to get there.\n",
    );
    md
}

/// `--check-schema FILE`: structural comparison of a committed
/// `serve.json` against this build's output (values may differ freely;
/// keys and shapes may not).
pub fn check_schema(out: &ExperimentOutput, file: &str) {
    let committed = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("repro serve --check-schema: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let committed = Json::parse(&committed).expect("parse committed serve JSON");
    let fresh_path = out.path("serve.json");
    let fresh = std::fs::read_to_string(&fresh_path).unwrap_or_else(|e| {
        eprintln!(
            "repro serve --check-schema: cannot read {}: {e} (run `repro serve` first)",
            fresh_path.display()
        );
        std::process::exit(1);
    });
    let fresh = Json::parse(&fresh).expect("parse fresh serve JSON");
    let diff = super::kernels::schema_diff(&committed, &fresh);
    if diff.is_empty() {
        println!("schema check OK: {file} matches the current serve schema");
    } else {
        eprintln!("schema mismatch between {file} and this build:");
        for d in &diff {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::ManualClock;

    #[test]
    fn quick_serve_is_bit_stable_and_passes_its_gates() {
        let dir = std::env::temp_dir().join(format!("serve-golden-{}", std::process::id()));
        let out = ExperimentOutput::new(&dir).expect("results dir");
        let clock = ManualClock::new(0.0);
        run_serve_with_clock(&out, &ServeOpts { quick: true }, clock.as_ref()).expect("serve run");
        let first = std::fs::read_to_string(out.path("serve.json")).expect("serve.json");
        assert!(first.contains("\"schema\": \"serve-v1\""));
        // A second run must reproduce the artifact byte-for-byte.
        run_serve_with_clock(&out, &ServeOpts { quick: true }, clock.as_ref()).expect("second run");
        let second = std::fs::read_to_string(out.path("serve.json")).expect("serve.json");
        assert_eq!(first, second, "serve.json must be deterministic");
        let md = std::fs::read_to_string(out.path("serve.md")).expect("serve.md");
        assert!(md.contains("hit rate"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
