//! Lanczos eigensolver for the Hermitian normal operator, and low-mode
//! deflation of CG.
//!
//! Light-quark solves are dominated by the lowest eigenmodes of `D†D`;
//! projecting them out ("deflation") removes the worst of the condition
//! number. Production DWF campaigns deflate with hundreds of Lanczos
//! vectors; this implementation is the same machinery at demonstration
//! scale: shift-invert Lanczos (each Krylov step a CG solve of `A`) with
//! full reorthogonalization, a tridiagonal Rayleigh–Ritz, and a final
//! block rotation against `A` itself.

use super::{CgParams, SolveStats};
use crate::blas;
use crate::complex::C64;
use crate::dirac::LinearOp;
use crate::field::FermionField;
use crate::spinor::Spinor;
use obs::Json;

/// A converged eigenpair of the operator.
#[derive(Clone)]
pub struct EigenPair {
    /// Eigenvalue (real: the operator is Hermitian).
    pub value: f64,
    /// Unit-norm eigenvector.
    pub vector: Vec<Spinor<f64>>,
}

/// Parameters of the restarted shift-invert Lanczos run.
#[derive(Clone, Copy, Debug)]
pub struct LanczosParams {
    /// Number of lowest eigenpairs requested.
    pub n_eig: usize,
    /// Krylov subspace dimension per pass.
    pub krylov_dim: usize,
    /// Seed of the Gaussian start vector.
    pub seed: u64,
    /// Extra passes allowed when the residual bound is unmet; each restart
    /// re-seeds the Krylov sequence from the current Ritz vectors. `0`
    /// reproduces the single-pass [`lanczos_lowest`] exactly.
    pub max_restarts: usize,
    /// Acceptance bound on `‖A v − λ v‖ / max(λ, 1)` over all pairs.
    pub resid_tol: f64,
}

impl LanczosParams {
    /// Single-pass parameters (no restarts), as [`lanczos_lowest`] uses.
    pub fn new(n_eig: usize, krylov_dim: usize, seed: u64) -> Self {
        Self {
            n_eig,
            krylov_dim,
            seed,
            max_restarts: 0,
            resid_tol: 1e-4,
        }
    }

    /// Enable restarts with an explicit residual bound.
    pub fn with_restarts(mut self, max_restarts: usize, resid_tol: f64) -> Self {
        self.max_restarts = max_restarts;
        self.resid_tol = resid_tol;
        self
    }
}

/// Jacobi eigenvalue iteration for a small real symmetric matrix; returns
/// (eigenvalues ascending, row-major eigenvector matrix `v[k][i]`).
fn symmetric_eigen(mut a: Vec<Vec<f64>>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Sort ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[i][i].total_cmp(&a[j][j]));
    let values: Vec<f64> = order.iter().map(|&i| a[i][i]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..n).map(|row| v[row][col]).collect())
        .collect();
    (values, vectors)
}

/// Compute the `n_eig` lowest eigenpairs of the Hermitian positive-definite
/// operator by **shift-invert Lanczos**: the Krylov sequence is built with
/// `A⁻¹` (each application a CG solve), where the lowest modes of `A` are
/// *exterior* and converge fast regardless of how clustered they are in `A`
/// itself — the standard trick production eigensolvers use for Dirac
/// low-mode deflation.
pub fn lanczos_lowest<A: LinearOp<f64> + ?Sized>(
    op: &A,
    n_eig: usize,
    krylov_dim: usize,
    seed: u64,
) -> Vec<EigenPair> {
    lanczos(op, &LanczosParams::new(n_eig, krylov_dim, seed))
}

/// Restarted shift-invert Lanczos with observability: runs single passes
/// ([`lanczos_lowest`]'s algorithm) until every returned pair satisfies the
/// residual bound `‖A v − λ v‖ ≤ resid_tol · max(λ, 1)` or the restart
/// budget is spent. Each restart re-seeds the Krylov sequence from the sum
/// of the current Ritz vectors (rich in exactly the low modes that have not
/// yet converged). Progress is published to the ambient [`obs::Registry`]:
/// `solver.eig.runs` / `solver.eig.lanczos_iters` / `solver.eig.restarts`
/// counters plus `solver.eig.restart` / `solver.eig.done` events.
pub fn lanczos<A: LinearOp<f64> + ?Sized>(op: &A, params: &LanczosParams) -> Vec<EigenPair> {
    let reg = obs::Registry::current();
    reg.counter("solver.eig.runs").inc();
    let mut start: Option<Vec<Spinor<f64>>> = None;
    let mut restarts = 0usize;
    loop {
        let pairs = lanczos_pass(
            op,
            params.n_eig,
            params.krylov_dim,
            params.seed,
            start.take(),
        );
        let worst = worst_relative_residual(op, &pairs);
        if worst <= params.resid_tol || restarts >= params.max_restarts {
            reg.event(
                "solver.eig.done",
                vec![
                    ("modes", Json::from(pairs.len() as u64)),
                    ("restarts", Json::from(restarts as u64)),
                    ("worst_resid", Json::from(worst)),
                ],
            );
            return pairs;
        }
        restarts += 1;
        reg.counter("solver.eig.restarts").inc();
        reg.event(
            "solver.eig.restart",
            vec![
                ("attempt", Json::from(restarts as u64)),
                ("worst_resid", Json::from(worst)),
            ],
        );
        // Re-seed from the span of the current approximate low modes.
        let mut s = vec![Spinor::zero(); op.vec_len()];
        for p in &pairs {
            blas::axpy(1.0, &p.vector, &mut s);
        }
        let nrm = blas::norm_sqr(&s).sqrt();
        start = if nrm.is_finite() && nrm > 1e-14 {
            blas::scal(1.0 / nrm, &mut s);
            Some(s)
        } else {
            None
        };
    }
}

/// Largest relative eigen-equation residual over `pairs`
/// (`‖A v − λ v‖ / max(λ, 1)`); infinite when any residual is non-finite.
fn worst_relative_residual<A: LinearOp<f64> + ?Sized>(op: &A, pairs: &[EigenPair]) -> f64 {
    let n = op.vec_len();
    let mut worst = 0.0f64;
    for p in pairs {
        let mut av = vec![Spinor::zero(); n];
        op.apply(&mut av, &p.vector);
        blas::axpy(-p.value, &p.vector, &mut av);
        let res = blas::norm_sqr(&av).sqrt() / p.value.abs().max(1.0);
        if !res.is_finite() {
            return f64::INFINITY;
        }
        worst = worst.max(res);
    }
    worst
}

/// One shift-invert Lanczos pass; `start` overrides the Gaussian seed
/// vector (used by restarts).
fn lanczos_pass<A: LinearOp<f64> + ?Sized>(
    op: &A,
    n_eig: usize,
    krylov_dim: usize,
    seed: u64,
    start: Option<Vec<Spinor<f64>>>,
) -> Vec<EigenPair> {
    let n = op.vec_len();
    assert!(n_eig >= 1 && krylov_dim > n_eig);
    let m = krylov_dim.min(n * 12);
    let inner = CgParams {
        tol: 1e-10,
        max_iter: 50_000,
    };
    // One A⁻¹ application.
    let apply_inv = |out: &mut Vec<Spinor<f64>>, inp: &[Spinor<f64>]| {
        blas::zero(out);
        super::cg(op, out, inp, inner);
    };

    // Lanczos on A⁻¹ with full reorthogonalization.
    let mut basis: Vec<Vec<Spinor<f64>>> = Vec::with_capacity(m);
    let mut alpha = Vec::with_capacity(m);
    let mut beta = Vec::with_capacity(m);

    let mut q = match start {
        Some(s) => s,
        None => FermionField::<f64>::gaussian(n, seed).data,
    };
    let norm = blas::norm_sqr(&q).sqrt();
    blas::scal(1.0 / norm, &mut q);
    basis.push(q);

    let mut steps = 0u64;
    let mut w = vec![Spinor::zero(); n];
    for j in 0..m {
        steps += 1;
        apply_inv(&mut w, &basis[j]);
        let a_j = blas::dot(&basis[j], &w).re;
        alpha.push(a_j);
        blas::axpy(-a_j, &basis[j], &mut w);
        if j > 0 {
            let b_prev: f64 = beta[j - 1];
            blas::axpy(-b_prev, &basis[j - 1], &mut w);
        }
        // Full reorthogonalization (twice for stability).
        for _ in 0..2 {
            for b in &basis {
                let c = blas::dot(b, &w);
                blas::caxpy(-c, b, &mut w);
            }
        }
        let b_j = blas::norm_sqr(&w).sqrt();
        if j + 1 == m || b_j < 1e-14 {
            break;
        }
        beta.push(b_j);
        let mut next = w.clone();
        blas::scal(1.0 / b_j, &mut next);
        basis.push(next);
    }
    obs::Registry::current()
        .counter("solver.eig.lanczos_iters")
        .add(steps);

    // Tridiagonal Rayleigh–Ritz on A⁻¹: its *largest* Ritz values are the
    // lowest modes of A.
    let k = basis.len();
    let mut t = vec![vec![0.0; k]; k];
    for i in 0..k {
        t[i][i] = alpha[i];
        if i + 1 < k {
            t[i][i + 1] = beta[i];
            t[i + 1][i] = beta[i];
        }
    }
    let (values, vectors) = symmetric_eigen(t);

    // Take the top `n_eig` Ritz pairs of A⁻¹ (end of the ascending list).
    let ritz: Vec<Vec<Spinor<f64>>> = (0..n_eig.min(k))
        .map(|e| {
            let idx = k - 1 - e;
            let mut vec = vec![Spinor::zero(); n];
            for (j, b) in basis.iter().enumerate() {
                blas::axpy(vectors[idx][j], b, &mut vec);
            }
            let nrm = blas::norm_sqr(&vec).sqrt();
            blas::scal(1.0 / nrm, &mut vec);
            vec
        })
        .collect();
    let _ = values;

    // Rotate within the block against A itself and report A-eigenvalues.
    block_rayleigh_ritz(op, ritz)
}

/// Diagonalize the operator restricted to the span of `block` and return
/// the rotated eigenpairs (ascending). Uses the real 2k×2k embedding of the
/// complex Hermitian block matrix.
fn block_rayleigh_ritz<A: LinearOp<f64> + ?Sized>(
    op: &A,
    block: Vec<Vec<Spinor<f64>>>,
) -> Vec<EigenPair> {
    let k = block.len();
    let n = op.vec_len();
    // A v_j for every block vector.
    let avs: Vec<Vec<Spinor<f64>>> = block
        .iter()
        .map(|v| {
            let mut av = vec![Spinor::zero(); n];
            op.apply(&mut av, v);
            av
        })
        .collect();
    // Complex Hermitian H_ij = ⟨v_i, A v_j⟩, embedded as [[Re, −Im],[Im, Re]].
    let mut h = vec![vec![0.0; 2 * k]; 2 * k];
    for i in 0..k {
        for j in 0..k {
            let c: C64 = blas::dot(&block[i], &avs[j]);
            h[i][j] = c.re;
            h[i][j + k] = -c.im;
            h[i + k][j] = c.im;
            h[i + k][j + k] = c.re;
        }
    }
    let (values, vectors) = symmetric_eigen(h);
    // Eigenvalues come doubled; take one representative of each pair.
    let mut out: Vec<EigenPair> = Vec::with_capacity(k);
    let mut used = 0usize;
    let mut idx = 0usize;
    while used < k && idx < 2 * k {
        let value = values[idx];
        // Skip the duplicate partner (next index with ~equal eigenvalue is
        // consumed implicitly by taking every other entry).
        let coeffs: Vec<C64> = (0..k)
            .map(|j| C64::new(vectors[idx][j], vectors[idx][j + k]))
            .collect();
        let mut vector = vec![Spinor::zero(); n];
        for (j, v) in block.iter().enumerate() {
            blas::caxpy(coeffs[j], v, &mut vector);
        }
        let nrm = blas::norm_sqr(&vector).sqrt();
        if nrm > 1e-10 {
            blas::scal(1.0 / nrm, &mut vector);
            // Keep only vectors orthogonal to those already taken (the
            // duplicate embedding partner is i·v, which is parallel in the
            // complex sense: |⟨out, v⟩| ≈ 1).
            let dup = out
                .iter()
                .any(|p| blas::dot(&p.vector, &vector).abs() > 0.5);
            if !dup {
                out.push(EigenPair { value, vector });
                used += 1;
            }
        }
        idx += 1;
    }
    out.sort_by(|a, b| a.value.total_cmp(&b.value));
    out
}

/// CG with low-mode deflation used as the initial guess:
/// `x₀ = Σ ⟨v_k, b⟩ / λ_k · v_k`, then plain CG from `x₀`.
///
/// Robust to imperfect modes (unlike strict complement-space deflation): an
/// approximate low-mode guess still removes most of the slow components,
/// and CG corrects the rest.
pub fn deflated_cg<A: LinearOp<f64> + ?Sized>(
    op: &A,
    modes: &[EigenPair],
    x: &mut [Spinor<f64>],
    b: &[Spinor<f64>],
    params: CgParams,
) -> SolveStats {
    let n = op.vec_len();
    assert_eq!(x.len(), n);
    assert_eq!(b.len(), n);

    // Deflation initial guess.
    super::deflate::guess_from(modes, x, b);
    super::cg(op, x, b, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::{NormalOp, WilsonDirac};
    use crate::field::GaugeField;
    use crate::lattice::Lattice;
    use crate::solver::cg;

    fn setup() -> (Lattice, GaugeField<f64>) {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 51);
        (lat, gauge)
    }

    #[test]
    fn jacobi_diagonalizes_a_known_matrix() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (vals, vecs) = symmetric_eigen(a);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
        // Eigenvector of λ=1 is (1,-1)/√2 up to sign.
        assert!((vecs[0][0].abs() - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
        assert!((vecs[0][0] + vecs[0][1]).abs() < 1e-12);
    }

    #[test]
    fn lanczos_pairs_satisfy_the_eigen_equation() {
        let (lat, gauge) = setup();
        let d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let a = NormalOp::new(&d);
        let pairs = lanczos_lowest(&a, 4, 90, 3);
        assert_eq!(pairs.len(), 4);
        for (k, p) in pairs.iter().enumerate() {
            assert!(p.value > 0.0, "D†D is positive definite");
            let mut av = vec![Spinor::zero(); lat.volume()];
            a.apply(&mut av, &p.vector);
            blas::axpy(-p.value, &p.vector, &mut av);
            let res = blas::norm_sqr(&av).sqrt();
            assert!(res < 1e-4 * p.value.max(1.0), "pair {k}: residual {res}");
        }
        // Ascending order.
        assert!(pairs.windows(2).all(|w| w[0].value <= w[1].value + 1e-12));
    }

    #[test]
    fn lanczos_vectors_are_orthonormal() {
        let (lat, gauge) = setup();
        let d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let a = NormalOp::new(&d);
        let pairs = lanczos_lowest(&a, 3, 50, 5);
        for i in 0..3 {
            for j in 0..3 {
                let dot = blas::dot(&pairs[i].vector, &pairs[j].vector);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (dot.re - expect).abs() < 1e-8 && dot.im.abs() < 1e-8,
                    "⟨v{i}, v{j}⟩ = {dot:?}"
                );
            }
        }
    }

    #[test]
    fn deflation_reduces_cg_iterations() {
        let (lat, gauge) = setup();
        // Light mass: poorly conditioned normal operator.
        let d = WilsonDirac::new(&lat, &gauge, 0.02, true);
        let a = NormalOp::new(&d);
        let b = FermionField::<f64>::gaussian(lat.volume(), 7).data;
        let params = CgParams {
            tol: 1e-8,
            max_iter: 20_000,
        };

        let mut x_plain = vec![Spinor::zero(); lat.volume()];
        let s_plain = cg(&a, &mut x_plain, &b, params);
        assert!(s_plain.converged);

        let modes = lanczos_lowest(&a, 8, 80, 9);
        let mut x_defl = vec![Spinor::zero(); lat.volume()];
        let s_defl = deflated_cg(&a, &modes, &mut x_defl, &b, params);
        assert!(s_defl.converged, "{s_defl:?}");
        assert!(
            s_defl.iterations < s_plain.iterations,
            "deflation must help: {} vs {}",
            s_defl.iterations,
            s_plain.iterations
        );

        // Same solution.
        let diff = blas::sub(&x_plain, &x_defl);
        let rel = blas::norm_sqr(&diff) / blas::norm_sqr(&x_plain);
        assert!(rel < 1e-12, "solutions differ: {rel}");
    }
}
