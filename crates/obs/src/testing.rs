//! Metric-assertion helpers for tests. The macros take a [`Registry`]
//! (tests usually create a fresh one and `install_scoped` it around the
//! code under test), read a named metric, and panic with a diagnostic
//! that includes the metric name and both values.
//!
//! ```
//! use obs::{assert_counter, assert_event_count, Registry};
//! let r = Registry::new();
//! r.counter("solver.cg.solves").inc();
//! r.event_at(0.0, "converged", vec![]);
//! assert_counter!(r, "solver.cg.solves", 1);
//! assert_event_count!(r, "converged", 1);
//! ```

use crate::metrics::Histogram;
use crate::registry::Registry;

/// Assert an integer counter's exact value.
#[macro_export]
macro_rules! assert_counter {
    ($registry:expr, $name:expr, $expected:expr) => {{
        let actual = $registry.counter($name).get();
        let expected: u64 = $expected;
        assert_eq!(
            actual, expected,
            "counter `{}`: got {}, expected {}",
            $name, actual, expected
        );
    }};
}

/// Assert a float counter's value to within an absolute tolerance
/// (omit the tolerance for exact bit equality — counters that only ever
/// accumulate the same deterministic sequence are bit-stable).
#[macro_export]
macro_rules! assert_float_counter {
    ($registry:expr, $name:expr, $expected:expr) => {{
        let actual = $registry.float_counter($name).get();
        let expected: f64 = $expected;
        assert!(
            actual == expected,
            "float counter `{}`: got {}, expected exactly {}",
            $name,
            actual,
            expected
        );
    }};
    ($registry:expr, $name:expr, $expected:expr, $tol:expr) => {{
        let actual = $registry.float_counter($name).get();
        let expected: f64 = $expected;
        assert!(
            (actual - expected).abs() <= $tol,
            "float counter `{}`: got {}, expected {} ± {}",
            $name,
            actual,
            expected,
            $tol
        );
    }};
}

/// Assert a gauge's value to within an absolute tolerance.
#[macro_export]
macro_rules! assert_gauge {
    ($registry:expr, $name:expr, $expected:expr, $tol:expr) => {{
        let actual = $registry.gauge($name).get();
        let expected: f64 = $expected;
        assert!(
            (actual - expected).abs() <= $tol,
            "gauge `{}`: got {}, expected {} ± {}",
            $name,
            actual,
            expected,
            $tol
        );
    }};
}

/// Assert a histogram quantile lies within a range:
/// `assert_hist_quantile!(reg, "solve.seconds", 0.5, 0.1..=2.0)`.
#[macro_export]
macro_rules! assert_hist_quantile {
    ($registry:expr, $name:expr, $q:expr, $range:expr) => {{
        let value = $crate::testing::existing_histogram(&$registry, $name)
            .unwrap_or_else(|| panic!("histogram `{}` was never recorded", $name))
            .quantile($q);
        let range: ::std::ops::RangeInclusive<f64> = $range;
        assert!(
            range.contains(&value),
            "histogram `{}` q{}: got {}, expected in [{}, {}]",
            $name,
            $q,
            value,
            range.start(),
            range.end()
        );
    }};
}

/// Assert the number of events of a kind in the registry's event log.
#[macro_export]
macro_rules! assert_event_count {
    ($registry:expr, $name:expr, $expected:expr) => {{
        let actual = $registry.events().count_kind($name);
        let expected: u64 = $expected;
        assert_eq!(
            actual, expected,
            "event kind `{}`: got {}, expected {}",
            $name, actual, expected
        );
    }};
}

/// Fetch a histogram only if it already exists (never creates one) —
/// used by `assert_hist_quantile!` so asserting on a typo'd name fails
/// loudly instead of checking a fresh empty histogram.
pub fn existing_histogram(registry: &Registry, name: &str) -> Option<std::sync::Arc<Histogram>> {
    registry.try_histogram(name)
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn assertions_pass_on_matching_metrics() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.float_counter("f").add(0.5);
        r.gauge("g").set(7.0);
        r.histogram("h", &[1.0, 2.0, 4.0]).record(1.5);
        r.histogram("h", &[1.0, 2.0, 4.0]).record(3.0);
        r.event_at(1.0, "boom", vec![]);
        assert_counter!(r, "c", 3);
        assert_float_counter!(r, "f", 0.5);
        assert_float_counter!(r, "f", 0.51, 0.02);
        assert_gauge!(r, "g", 7.0, 0.0);
        assert_hist_quantile!(r, "h", 0.5, 1.0..=2.0);
        assert_event_count!(r, "boom", 1);
        assert_event_count!(r, "quiet", 0);
    }

    #[test]
    #[should_panic(expected = "counter `c`: got 1, expected 2")]
    fn counter_mismatch_names_the_metric() {
        let r = Registry::new();
        r.counter("c").inc();
        assert_counter!(r, "c", 2);
    }

    #[test]
    #[should_panic(expected = "histogram `missing` was never recorded")]
    fn quantile_on_unknown_histogram_panics() {
        let r = Registry::new();
        assert_hist_quantile!(r, "missing", 0.5, 0.0..=1.0);
    }
}
