//! The committed `results/metrics.json` golden must be byte-identical at
//! any pool width: the metrics experiment runs real solves and
//! contractions through the threaded kernels, so this test is the
//! end-to-end check that chunked reductions keep every exported number
//! bit-stable when the pool is 1 wide vs 8 wide.

use bench::experiments::metrics;
use bench::output::ExperimentOutput;

fn run_at_width(width: usize, dir: &std::path::Path) -> (String, String) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .expect("width handle")
        .install(|| {
            let out = ExperimentOutput::new(dir).expect("results dir");
            metrics::run_metrics(&out);
            (
                std::fs::read_to_string(dir.join("metrics.json")).expect("metrics.json"),
                std::fs::read_to_string(dir.join("metrics.csv")).expect("metrics.csv"),
            )
        })
}

#[test]
fn metrics_golden_is_byte_identical_across_pool_widths() {
    let base = std::env::temp_dir().join(format!("thread_det_{}", std::process::id()));
    let d1 = base.join("w1");
    let d8 = base.join("w8");
    let (json1, csv1) = run_at_width(1, &d1);
    let (json8, csv8) = run_at_width(8, &d8);
    assert_eq!(
        json1, json8,
        "metrics.json differs between pool widths 1 and 8"
    );
    assert_eq!(
        csv1, csv8,
        "metrics.csv differs between pool widths 1 and 8"
    );
    std::fs::remove_dir_all(&base).ok();
}
