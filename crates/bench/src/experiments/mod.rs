//! One module per reproduced experiment.

pub mod ablation;
pub mod chaos;
pub mod comms;
pub mod deflation;
pub mod faults;
pub mod fig1;
pub mod fig3;
pub mod fig5;
pub mod jobs;
pub mod kernels;
pub mod lint;
pub mod metrics;
pub mod pipeline;
pub mod serve;
pub mod tables;
pub mod verify;
