//! Analytical performance model of the red–black preconditioned
//! domain-wall CG solver on a modeled machine.
//!
//! The solver is bandwidth bound (arithmetic intensity 1.8–1.9), so the
//! per-iteration time is streaming bytes over the effective GPU bandwidth,
//! plus a halo exchange that overlaps with interior compute according to
//! the communication policy, plus global-reduction latency. Performance
//! reporting follows §VI of the paper: raw solver flops, effective
//! bandwidth via the arithmetic intensity, and percent of FP32 peak with
//! the 1.675× accounting scale.
//!
//! The model integrates with the [`autotune`] crate exactly as QUDA's
//! communication-policy tuning does: each policy is a candidate; the tuner
//! sweeps the deterministic cost model on first encounter and caches the
//! winner per (machine, lattice, GPU count).

use crate::commpolicy::CommPolicy;
use crate::decomp::Decomposition;
use crate::specs::MachineSpec;
use autotune::{ParamSpace, TimingHarness, Tunable, TuneKey, TuneParam, Tuner};
use serde::{Deserialize, Serialize};

/// Paper flop-accounting constants (duplicated from `lqcd_core::flops` to
/// keep this crate physics-independent).
const FLOPS_PER_SITE_PER_APPLY: f64 = 11_000.0;
const BLAS_FLOPS_PER_SITE: f64 = 75.0;
const ARITHMETIC_INTENSITY: f64 = 1.9;
const PEAK_ACCOUNTING_SCALE: f64 = 1.675;

/// One solver performance sample.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PerfPoint {
    /// GPUs used.
    pub n_gpus: usize,
    /// Raw sustained solver rate, TFLOP/s (aggregate).
    pub tflops: f64,
    /// Percent of aggregate FP32 peak (with the 1.675× accounting scale).
    pub pct_peak: f64,
    /// Effective bandwidth per GPU, GB/s (rate / AI / GPUs).
    pub bw_per_gpu_gbs: f64,
    /// Modeled wall time of one CG iteration, seconds.
    pub time_per_iter: f64,
}

/// The solver performance model for one (machine, lattice) pair.
#[derive(Clone, Debug)]
pub struct SolverPerfModel {
    /// Machine being modeled.
    pub machine: MachineSpec,
    /// Global 4D lattice extents.
    pub dims: [usize; 4],
    /// Fifth-dimension extent.
    pub l5: usize,
}

impl SolverPerfModel {
    /// Build a model.
    pub fn new(machine: MachineSpec, dims: [usize; 4], l5: usize) -> Self {
        Self { machine, dims, l5 }
    }

    /// Flops of one CG iteration over the whole (red–black half) problem.
    fn iteration_flops(&self) -> f64 {
        let sites_5d = self.dims.iter().product::<usize>() as f64 * self.l5 as f64 / 2.0;
        sites_5d * (2.0 * FLOPS_PER_SITE_PER_APPLY + BLAS_FLOPS_PER_SITE)
    }

    /// Model one CG iteration under an explicit policy. Returns `None` when
    /// `n_gpus` cannot decompose the lattice.
    pub fn iteration_time(&self, n_gpus: usize, policy: CommPolicy) -> Option<f64> {
        let d = Decomposition::best(self.dims, self.l5, n_gpus, self.machine.gpus_per_node)?;

        // Streaming compute time: bytes per GPU over effective bandwidth.
        let flops_per_gpu = self.iteration_flops() / n_gpus as f64;
        let bytes_per_gpu = flops_per_gpu / ARITHMETIC_INTENSITY;
        let bw = self.machine.effective_gpu_bw_gbs() * 1e9;
        let t_compute = bytes_per_gpu / bw;

        // Split into interior and halo compute by surface fraction.
        let sf = d.surface_fraction();
        let t_interior = t_compute * (1.0 - sf);
        let t_halo = t_compute * sf;

        // Two operator applications per CG iteration, each with an exchange.
        // Communication overlaps with interior *compute*; halo compute can
        // never overlap other compute on the same GPU. Fine-grained policies
        // additionally hide part of the halo compute inside the tail of the
        // exchange (per-dimension updates start as messages land).
        let t_exchange = 2.0 * policy.exchange_time(&self.machine, &d);
        let overlap = policy.overlap_fraction();
        let comm_window = t_interior.max(t_exchange);
        let hidden_halo = (t_halo * overlap).min((t_exchange - t_interior).max(0.0));
        let mut t = comm_window + (t_halo - hidden_halo) + policy.launch_overhead(d.halos.len());

        // Two double-precision global reductions per iteration.
        let n_nodes = (n_gpus as f64 / self.machine.gpus_per_node as f64).max(1.0);
        t += 2.0 * self.machine.net_latency_us * 1e-6 * n_nodes.log2().max(0.0);

        Some(t)
    }

    /// Performance under an explicit policy.
    pub fn performance_with_policy(&self, n_gpus: usize, policy: CommPolicy) -> Option<PerfPoint> {
        let t = self.iteration_time(n_gpus, policy)?;
        let flops = self.iteration_flops();
        let rate = flops / t;
        let peak = self.machine.fp32_tflops_per_gpu() * 1e12 * n_gpus as f64;
        Some(PerfPoint {
            n_gpus,
            tflops: rate / 1e12,
            pct_peak: 100.0 * rate * PEAK_ACCOUNTING_SCALE / peak,
            bw_per_gpu_gbs: rate / ARITHMETIC_INTENSITY / n_gpus as f64 / 1e9,
            time_per_iter: t,
        })
    }

    /// Best policy for this (machine, lattice, GPU count), resolved through
    /// the autotuner cache (swept on first encounter).
    pub fn tuned_policy(&self, tuner: &Tuner, n_gpus: usize) -> Option<CommPolicy> {
        Decomposition::best(self.dims, self.l5, n_gpus, self.machine.gpus_per_node)?;
        let mut tunable = PolicyTunable {
            model: self,
            n_gpus,
            policies: CommPolicy::available(&self.machine),
        };
        let param = tuner.tune(&mut tunable);
        Some(tunable.policies[param.policy])
    }

    /// Performance at the autotuned optimum policy — what the paper's curves
    /// report.
    pub fn performance(&self, tuner: &Tuner, n_gpus: usize) -> Option<PerfPoint> {
        let policy = self.tuned_policy(tuner, n_gpus)?;
        self.performance_with_policy(n_gpus, policy)
    }

    /// Sweep a strong-scaling curve over the given GPU counts, skipping
    /// counts that cannot decompose the lattice.
    pub fn strong_scaling(&self, tuner: &Tuner, gpu_counts: &[usize]) -> Vec<PerfPoint> {
        gpu_counts
            .iter()
            .filter_map(|&g| self.performance(tuner, g))
            .collect()
    }
}

/// Communication-policy tunable: the paper's extension of the QUDA autotuner.
struct PolicyTunable<'m> {
    model: &'m SolverPerfModel,
    n_gpus: usize,
    policies: Vec<CommPolicy>,
}

impl<'m> Tunable for PolicyTunable<'m> {
    fn key(&self) -> TuneKey {
        TuneKey::new(
            "comm_policy",
            format!(
                "{}x{}x{}x{}x{}",
                self.model.dims[0],
                self.model.dims[1],
                self.model.dims[2],
                self.model.dims[3],
                self.model.l5
            ),
            format!("machine={},gpus={}", self.model.machine.name, self.n_gpus),
        )
    }

    fn param_space(&self) -> ParamSpace {
        ParamSpace::policies(self.policies.len())
    }

    fn run(&mut self, _param: TuneParam) {
        // Modeled tunable: nothing to execute.
    }

    fn modeled_cost(&self, param: TuneParam) -> f64 {
        self.model
            .iteration_time(self.n_gpus, self.policies[param.policy])
            .expect("decomposition checked by caller")
    }

    fn harness(&self) -> TimingHarness {
        TimingHarness::Modeled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{ray, sierra, summit, titan};

    fn fig3_model(machine: MachineSpec) -> SolverPerfModel {
        SolverPerfModel::new(machine, [48, 48, 48, 64], 12)
    }

    #[test]
    fn low_gpu_count_hits_paper_peak_efficiencies() {
        // Paper: "sustained performance of 20% on the minimal number of
        // nodes" (Sierra). By construction the model's 1-GPU point gives
        // eff_bw × AI × 1.675 / peak.
        let tuner = Tuner::new();
        let p = fig3_model(sierra()).performance(&tuner, 1).expect("fits");
        assert!((19.0..23.0).contains(&p.pct_peak), "Sierra {}", p.pct_peak);
        assert!((900.0..1000.0).contains(&p.bw_per_gpu_gbs));
    }

    #[test]
    fn fig3_per_gpu_bandwidth_anchors() {
        let tuner = Tuner::new();
        for (m, bw_expect) in [(titan(), 139.0), (ray(), 516.0), (sierra(), 975.0)] {
            let p = fig3_model(m.clone()).performance(&tuner, 1).expect("fits");
            assert!(
                (p.bw_per_gpu_gbs - bw_expect).abs() < 0.05 * bw_expect,
                "{}: {} vs {}",
                m.name,
                p.bw_per_gpu_gbs,
                bw_expect
            );
        }
    }

    #[test]
    fn strong_scaling_efficiency_declines() {
        let tuner = Tuner::new();
        let model = fig3_model(sierra());
        let curve = model.strong_scaling(&tuner, &[4, 16, 64, 128]);
        assert_eq!(curve.len(), 4);
        // Aggregate TFLOPS grows...
        assert!(curve.windows(2).all(|w| w[1].tflops > w[0].tflops));
        // ...but percent of peak falls.
        assert!(curve.windows(2).all(|w| w[1].pct_peak < w[0].pct_peak));
    }

    #[test]
    fn machine_ordering_matches_fig3() {
        let tuner = Tuner::new();
        let at64 = |m: MachineSpec| fig3_model(m).performance(&tuner, 64).expect("fits").tflops;
        let t = at64(titan());
        let r = at64(ray());
        let s = at64(sierra());
        assert!(s > r && r > t, "Sierra {s} > Ray {r} > Titan {t}");
    }

    #[test]
    fn fig4_summit_saturates_near_paper_value() {
        // 96³×144 strong scales to ~1.5 PFLOPS with a knee past ~2000 GPUs.
        let tuner = Tuner::new();
        let model = SolverPerfModel::new(summit(), [96, 96, 96, 144], 20);
        let counts = [96usize, 384, 1536, 3072, 6144, 9216];
        let curve = model.strong_scaling(&tuner, &counts);
        let last = curve.last().expect("nonempty");
        assert!(
            (0.7..3.0).contains(&(last.tflops / 1000.0)),
            "saturation {} TFLOPS should be order 1.5 PFLOPS",
            last.tflops
        );
        // Efficiency at 9216 GPUs must be far below the low-count value.
        let first = &curve[0];
        assert!(
            last.pct_peak < 0.35 * first.pct_peak,
            "knee must collapse efficiency: {} -> {}",
            first.pct_peak,
            last.pct_peak
        );
    }

    #[test]
    fn tuned_policy_is_cached_and_beats_or_ties_all_candidates() {
        let tuner = Tuner::new();
        let model = fig3_model(sierra());
        let best = model.tuned_policy(&tuner, 32).expect("fits");
        let t_best = model.iteration_time(32, best).unwrap();
        for p in CommPolicy::available(&model.machine) {
            assert!(t_best <= model.iteration_time(32, p).unwrap() + 1e-15);
        }
        assert_eq!(tuner.stats().misses, 1);
        model.tuned_policy(&tuner, 32);
        assert_eq!(tuner.stats().hits, 1);
    }

    #[test]
    fn gdr_machine_prefers_gdr_when_comm_bound() {
        // At low GPU counts the exchange hides behind interior compute and
        // the tuner is free to pick the cheapest-latency policy; once the
        // solve is communication bound, GDR's bandwidth must win on Ray.
        let tuner = Tuner::new();
        let model = fig3_model(ray());
        let policy = model.tuned_policy(&tuner, 128).expect("fits");
        assert_eq!(
            policy.transport,
            crate::commpolicy::CommTransport::GdrDirect,
            "Ray supports GDR and should pick it once comm-bound"
        );
    }

    #[test]
    fn undecomposable_counts_yield_none() {
        let tuner = Tuner::new();
        let model = fig3_model(sierra());
        assert!(model.performance(&tuner, 7).is_none());
        assert!(model.performance(&tuner, 11).is_none());
    }
}
