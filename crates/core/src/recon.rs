//! Compressed SU(3) gauge storage with on-the-fly reconstruction.
//!
//! An SU(3) matrix has 18 reals but only 8 degrees of freedom; QUDA ships
//! gauge fields to the GPU in 12-real or 8-real form and reconstructs the
//! remaining entries in registers, trading flops for memory bandwidth — on
//! a bandwidth-bound stencil that is a direct speedup. This module mirrors
//! both formats behind the [`GaugeLinks`] trait, so every dslash kernel
//! (including the sharded halo-exchange path, which gathers links through
//! the same trait) runs on compressed storage unchanged.
//!
//! **12-real**: store the first two rows; unitarity gives the third row as
//! the conjugate cross product `c = (a × b)*` — the exact closure used by
//! [`Su3::reunitarize`], so reconstructing a reunitarized link is lossless
//! up to the rounding of the cross product itself.
//!
//! **8-real**: store row 1 minus the phase of its first entry, the first
//! entry of row 2, and two phases:
//! `[θ_a₁, θ_c₁, Re a₂, Im a₂, Re a₃, Im a₃, Re b₁, Im b₁]`
//! (naming rows `a, b, c`). Writing `n = |a₂|² + |a₃|²`, row-0 unit norm
//! gives `|a₁| = √(1−n)` so `a₁ = |a₁| e^{iθ_a₁}`, column-0 unit norm gives
//! `|c₁| = √(1−|a₁|²−|b₁|²)` so `c₁ = |c₁| e^{iθ_c₁}`, and the pair of
//! linear relations `a·b* = 0` (row orthogonality) and
//! `c₁* = a₂ b₃ − a₃ b₂` (det = 1 cross product) solves for
//!
//! ```text
//! b₂ = −(a₁* a₂ b₁ + a₃* c₁*) / n      b₃ = (a₂* c₁* − a₁* a₃ b₁) / n
//! ```
//!
//! with the rest of row `c` closed by the cross product. The solve divides
//! by `n`, so 8-real storage requires generic links (`n > 0`); exact-unit
//! links (cold gauge) are not representable, exactly as in QUDA.

use crate::complex::Complex;
use crate::field::{GaugeField, GaugeLinks};
use crate::real::Real;
use crate::su3::{Su3, NC};

/// Cross-product closure of the third row from the first two — the same
/// arithmetic as the final rows of [`Su3::reunitarize`].
#[inline(always)]
fn cross_row<R: Real>(a: &[Complex<R>; NC], b: &[Complex<R>; NC]) -> [Complex<R>; NC] {
    [
        (a[1] * b[2] - a[2] * b[1]).conj(),
        (a[2] * b[0] - a[0] * b[2]).conj(),
        (a[0] * b[1] - a[1] * b[0]).conj(),
    ]
}

/// Gauge field compressed to the first two rows (12 reals per link).
#[derive(Clone)]
pub struct Recon12Gauge<R> {
    volume: usize,
    /// `volume × 4` links × 12 reals, link-major.
    rows: Vec<R>,
}

/// Reals stored per link in 12-real form.
const R12: usize = 12;

impl<R: Real> Recon12Gauge<R> {
    /// Compress a full gauge field.
    pub fn from_gauge(gauge: &GaugeField<R>) -> Self {
        let volume = gauge.lattice().volume();
        let mut rows = Vec::with_capacity(volume * 4 * R12);
        for site in 0..volume {
            for mu in 0..4 {
                let u = GaugeLinks::link(gauge, site, mu);
                for row in 0..2 {
                    for j in 0..NC {
                        rows.push(u.m[row][j].re);
                        rows.push(u.m[row][j].im);
                    }
                }
            }
        }
        Self { volume, rows }
    }
}

impl<R: Real> GaugeLinks<R> for Recon12Gauge<R> {
    #[inline]
    fn link(&self, site: usize, mu: usize) -> Su3<R> {
        let base = (site * 4 + mu) * R12;
        let d = &self.rows[base..base + R12];
        let row = |r: usize| -> [Complex<R>; NC] {
            std::array::from_fn(|j| Complex::new(d[(r * NC + j) * 2], d[(r * NC + j) * 2 + 1]))
        };
        let a = row(0);
        let b = row(1);
        let c = cross_row(&a, &b);
        Su3 { m: [a, b, c] }
    }
    fn volume(&self) -> usize {
        self.volume
    }
    fn recon_name(&self) -> &'static str {
        "r12"
    }
}

/// Gauge field compressed to 8 reals per link (see module docs).
#[derive(Clone)]
pub struct Recon8Gauge<R> {
    volume: usize,
    /// `volume × 4` links × 8 reals, link-major.
    params: Vec<R>,
}

/// Reals stored per link in 8-real form.
const R8: usize = 8;

impl<R: Real> Recon8Gauge<R> {
    /// Compress a full gauge field.
    ///
    /// # Panics
    /// If any link has `|a₂|² + |a₃|² ≈ 0` (e.g. a cold/unit link), which
    /// the 8-real parametrization cannot represent.
    pub fn from_gauge(gauge: &GaugeField<R>) -> Self {
        let volume = gauge.lattice().volume();
        let mut params = Vec::with_capacity(volume * 4 * R8);
        for site in 0..volume {
            for mu in 0..4 {
                let u = GaugeLinks::link(gauge, site, mu);
                let a1 = u.m[0][0];
                let c1 = u.m[2][0];
                let n = u.m[0][1].norm_sqr() + u.m[0][2].norm_sqr();
                assert!(
                    n.to_f64() > 1e-30,
                    "8-real reconstruction needs generic links (|a2|^2+|a3|^2 > 0)"
                );
                params.push(a1.im.atan2(a1.re));
                params.push(c1.im.atan2(c1.re));
                params.push(u.m[0][1].re);
                params.push(u.m[0][1].im);
                params.push(u.m[0][2].re);
                params.push(u.m[0][2].im);
                params.push(u.m[1][0].re);
                params.push(u.m[1][0].im);
            }
        }
        Self { volume, params }
    }
}

impl<R: Real> GaugeLinks<R> for Recon8Gauge<R> {
    #[inline]
    fn link(&self, site: usize, mu: usize) -> Su3<R> {
        let base = (site * 4 + mu) * R8;
        let d = &self.params[base..base + R8];
        let (th_a1, th_c1) = (d[0], d[1]);
        let a2 = Complex::new(d[2], d[3]);
        let a3 = Complex::new(d[4], d[5]);
        let b1 = Complex::new(d[6], d[7]);

        let n = a2.norm_sqr() + a3.norm_sqr();
        let a1_abs = (R::ONE - n).max_zero().sqrt();
        let a1 = Complex::new(a1_abs * th_a1.cos(), a1_abs * th_a1.sin());
        let c1_abs = (R::ONE - a1_abs * a1_abs - b1.norm_sqr()).max_zero().sqrt();
        let c1 = Complex::new(c1_abs * th_c1.cos(), c1_abs * th_c1.sin());

        let inv_n = R::ONE / n;
        let b2 = -(a1.conj() * a2 * b1 + a3.conj() * c1.conj()).scale(inv_n);
        let b3 = (a2.conj() * c1.conj() - a1.conj() * a3 * b1).scale(inv_n);
        let c2 = (a3 * b1 - a1 * b3).conj();
        let c3 = (a1 * b2 - a2 * b1).conj();
        Su3 {
            m: [[a1, a2, a3], [b1, b2, b3], [c1, c2, c3]],
        }
    }
    fn volume(&self) -> usize {
        self.volume
    }
    fn recon_name(&self) -> &'static str {
        "r8"
    }
}

/// Clamp tiny negative round-off before a square root.
trait MaxZero {
    fn max_zero(self) -> Self;
}

impl<R: Real> MaxZero for R {
    #[inline(always)]
    fn max_zero(self) -> Self {
        if self < R::ZERO {
            R::ZERO
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;

    fn setup() -> (Lattice, GaugeField<f64>) {
        let lat = Lattice::new([4, 4, 2, 4]);
        (lat.clone(), GaugeField::hot(&lat, 31))
    }

    fn max_err<G: GaugeLinks<f64>>(gauge: &GaugeField<f64>, recon: &G) -> f64 {
        let mut worst = 0.0f64;
        for site in 0..gauge.lattice().volume() {
            for mu in 0..4 {
                let full = GaugeLinks::link(gauge, site, mu);
                let got = recon.link(site, mu);
                for i in 0..NC {
                    for j in 0..NC {
                        worst = worst.max((got.m[i][j] - full.m[i][j]).norm_sqr().sqrt());
                    }
                }
            }
        }
        worst
    }

    #[test]
    fn recon12_round_trips_to_rounding() {
        let (_, gauge) = setup();
        let r12 = Recon12Gauge::from_gauge(&gauge);
        let err = max_err(&gauge, &r12);
        assert!(err < 1e-13, "recon-12 error {err}");
        assert_eq!(r12.recon_name(), "r12");
    }

    #[test]
    fn recon8_round_trips_to_rounding() {
        let (_, gauge) = setup();
        let r8 = Recon8Gauge::from_gauge(&gauge);
        let err = max_err(&gauge, &r8);
        assert!(err < 1e-12, "recon-8 error {err}");
        assert_eq!(r8.recon_name(), "r8");
    }

    #[test]
    fn recon_links_stay_unitary() {
        let (_, gauge) = setup();
        let r12 = Recon12Gauge::from_gauge(&gauge);
        let r8 = Recon8Gauge::from_gauge(&gauge);
        for site in 0..gauge.lattice().volume() {
            for mu in 0..4 {
                let e12 = r12.link(site, mu).unitarity_error();
                let e8 = r8.link(site, mu).unitarity_error();
                assert!(e12 < 1e-13, "r12 unitarity {e12}");
                assert!(e8 < 1e-12, "r8 unitarity {e8}");
            }
        }
    }

    #[test]
    fn recon12_f32_is_tolerant() {
        let (_, gauge64) = setup();
        let gauge = gauge64.cast::<f32>();
        let r12 = Recon12Gauge::from_gauge(&gauge);
        let mut worst = 0.0f32;
        for site in 0..gauge.lattice().volume() {
            for mu in 0..4 {
                let full = GaugeLinks::link(&gauge, site, mu);
                let got = r12.link(site, mu);
                for i in 0..NC {
                    for j in 0..NC {
                        worst = worst.max((got.m[i][j] - full.m[i][j]).norm_sqr().sqrt());
                    }
                }
            }
        }
        assert!(worst < 1e-5, "recon-12 f32 error {worst}");
    }

    #[test]
    #[should_panic(expected = "generic links")]
    fn recon8_rejects_unit_links() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let cold = GaugeField::<f64>::cold(&lat);
        let _ = Recon8Gauge::from_gauge(&cold);
    }
}
