//! Statistical analysis for lattice correlators.
//!
//! The paper's Fig. 1 is an *analysis* result: effective axial couplings
//! with jackknife errors, a correlated fit that removes excited-state
//! contamination, and the comparison between the Feynman–Hellmann data
//! (precise at small `t`) and the traditional three-point ratios (drowning
//! in exponentially growing noise at large `t`). This crate supplies that
//! tool chain:
//!
//! - [`jackknife`]/[`bootstrap`] resampling of arbitrary statistics,
//! - integrated autocorrelation times ([`autocorr`]),
//! - correlated nonlinear least squares via our own Levenberg–Marquardt
//!   ([`fit`]),
//! - synthetic correlator ensembles with the paper's spectral content and
//!   the physical exponential signal-to-noise degradation ([`corrmodel`]).

#![allow(clippy::needless_range_loop)]

pub mod autocorr;
pub mod bootstrap;
pub mod corrmodel;
pub mod covariance;
pub mod fit;
pub mod jackknife;
pub mod linalg;
pub mod modelavg;

pub use autocorr::integrated_autocorrelation;
pub use bootstrap::bootstrap;
pub use corrmodel::{CorrelatorModel, SyntheticEnsemble, A09M310};
pub use covariance::{inverse_mean_covariance, sample_covariance, shrink};
pub use fit::{curve_fit, curve_fit_correlated, FitResult, FitSettings};
pub use jackknife::{jackknife, jackknife_vector, JackknifeEstimate};
pub use modelavg::{model_average, ModelAverage, WeightedFit};
