//! Naive bundling: collect a wave of tasks, launch them simultaneously, and
//! wait for the whole wave to finish before starting the next.
//!
//! This is the baseline the paper measured at 20–25% idle: "naively bundling
//! tasks — simply collecting and simultaneously launching HPC steps, and
//! waiting for their completion — often caused a 20 to 25% idling
//! inefficiency", because nodes differ in performance and task durations
//! vary, so every wave ends at the pace of its slowest member.
//!
//! Under mid-run faults the baseline is even worse than idle: the wave is
//! one bundled `mpirun`, so the first node crash or task failure inside it
//! kills *every* task still in flight (one sick node costs the whole job
//! step). Each kill burns one retry attempt for every unfinished wave
//! member, which is why naive bundling collapses in the `repro faults`
//! sweep while `mpi_jm` degrades gracefully.

use crate::cluster::Cluster;
use crate::fault::{
    AttemptFate, FaultConfig, FaultInjector, FaultStats, RecoveryState, RetryPolicy,
};
use crate::instrument::SchedObs;
use crate::report::{SimReport, TaskRecord};
use crate::task::{TaskKind, Workload};

/// The naive wave-at-a-time bundler.
pub struct NaiveBundler;

/// One wave member's launch plan.
struct WaveTask {
    id: usize,
    alloc: Vec<usize>,
    attempt: usize,
    start: f64,
    /// Completion time if nothing kills the wave first.
    planned_end: f64,
    /// Time the attempt dies of a transient failure, if fated to.
    fail_at: Option<f64>,
    speed: f64,
}

impl NaiveBundler {
    /// Run `workload` on `cluster` on a pristine machine (no mid-run
    /// faults), returning the schedule report.
    ///
    /// Dependencies are honored across waves: a task joins a wave only when
    /// all of its dependencies completed in earlier waves.
    pub fn run(cluster: &mut Cluster, workload: &Workload) -> SimReport {
        Self::run_with_faults(
            cluster,
            workload,
            &FaultConfig::default(),
            &RetryPolicy::default(),
        )
    }

    /// Run `workload` on `cluster` under the given mid-run fault model.
    ///
    /// Recovery policy: a killed wave requeues every unfinished member with
    /// capped exponential backoff; a member whose retry budget is exhausted
    /// is permanently failed. Nodes crossing the blacklist threshold of
    /// attributed transient faults are quarantined.
    pub fn run_with_faults(
        cluster: &mut Cluster,
        workload: &Workload,
        faults: &FaultConfig,
        policy: &RetryPolicy,
    ) -> SimReport {
        let n = workload.len();
        let n_nodes = cluster.nodes.len();
        let sobs = SchedObs::new("naive");
        let injector = FaultInjector::new(*faults, n_nodes);
        let mut recovery = RecoveryState::new(n, n_nodes);
        let mut stats = FaultStats {
            nic_degraded_nodes: (0..n_nodes).filter(|&i| injector.nic_degraded(i)).count(),
            ..FaultStats::default()
        };
        let mut crash_applied = vec![false; n_nodes];

        let mut done = vec![false; n];
        let mut records: Vec<Option<TaskRecord>> = vec![None; n];
        let mut wasted_records: Vec<TaskRecord> = Vec::new();
        let mut time = 0.0f64;
        let mut busy_node_seconds = 0.0;
        let mut completed_flops = 0.0;

        loop {
            // Retire nodes whose crash time has passed while idle.
            for node in 0..n_nodes {
                if !crash_applied[node] && injector.crash_time(node) <= time {
                    crash_applied[node] = true;
                    if !cluster.nodes[node].failed {
                        cluster.mark_crashed(node);
                        stats.node_crashes += 1;
                        sobs.node_crash(time, node);
                    }
                }
            }
            // Abandon tasks whose dependencies permanently failed.
            loop {
                let mut cascaded = false;
                for t in &workload.tasks {
                    if !done[t.id]
                        && !recovery.failed[t.id]
                        && t.deps.iter().any(|&d| recovery.failed[d])
                    {
                        recovery.failed[t.id] = true;
                        stats.abandoned_tasks += 1;
                        sobs.task_abandoned(time, t.id);
                        cascaded = true;
                    }
                }
                if !cascaded {
                    break;
                }
            }
            let pending: Vec<usize> = (0..n)
                .filter(|&i| !done[i] && !recovery.failed[i])
                .collect();
            sobs.queue_depth(pending.len());
            if pending.is_empty() {
                break;
            }
            // Honor backoff gates: if every dep-ready task is still backing
            // off, idle forward to the earliest gate.
            // Borrow `recovery` per call (not in a closure) so the wave loop
            // below can still take it mutably.
            let dep_ready = |i: usize| workload.tasks[i].deps.iter().all(|&d| done[d]);
            let ready_now =
                |i: usize, now: f64, ready_at: &[f64]| dep_ready(i) && ready_at[i] <= now;
            if !pending
                .iter()
                .any(|&i| ready_now(i, time, &recovery.ready_at))
            {
                let next_gate = pending
                    .iter()
                    .filter(|&&i| dep_ready(i))
                    .map(|&i| recovery.ready_at[i])
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    next_gate.is_finite(),
                    "deadlock: pending tasks but no runnable dependency chain"
                );
                time = next_gate;
                continue;
            }

            // Collect the wave: ready tasks that fit in the (fully free)
            // machine simultaneously.
            let mut wave: Vec<WaveTask> = Vec::new();
            for t in &workload.tasks {
                if done[t.id] || recovery.failed[t.id] || !ready_now(t.id, time, &recovery.ready_at)
                {
                    continue;
                }
                let alloc = match t.kind {
                    TaskKind::PropagatorSolve { nodes } => {
                        match cluster.find_free_nodes(nodes, true) {
                            Some(a) => a,
                            None => continue,
                        }
                    }
                    TaskKind::Contraction => {
                        // Naive bundling gives contractions their own whole
                        // node; GPUs on it idle.
                        match cluster.find_free_nodes(1, true) {
                            Some(a) => a,
                            None => continue,
                        }
                    }
                    // I/O runs on service nodes, consuming only time.
                    TaskKind::Io => Vec::new(),
                };
                cluster.occupy(&alloc);
                let attempt = recovery.start_attempt(t.id, &mut stats);
                let mut speed = if alloc.is_empty() {
                    1.0
                } else {
                    cluster.group_speed(&alloc) * injector.nic_speed(&alloc)
                };
                let fate = injector.attempt_fate(t.id, attempt);
                if let AttemptFate::Straggler { slowdown } = fate {
                    speed *= slowdown;
                    stats.stragglers += 1;
                }
                let dur = t.base_seconds / speed;
                let fail_at = match fate {
                    AttemptFate::TransientFailure { at_fraction } => Some(time + dur * at_fraction),
                    _ => None,
                };
                sobs.task_start(time, t.id, attempt, alloc.len());
                wave.push(WaveTask {
                    id: t.id,
                    alloc,
                    attempt,
                    start: time,
                    planned_end: time + dur,
                    fail_at,
                    speed,
                });
            }
            sobs.nodes_busy(wave.iter().map(|w| w.alloc.len()).sum());
            if wave.is_empty() {
                // The machine is fully free here, so a ready task that
                // does not fit now never will: either capacity shrank
                // below its footprint or the workload was oversized from
                // the start. Abandon those gracefully (tasks merely
                // backing off get another chance) instead of panicking
                // mid-campaign.
                for &i in &pending {
                    if ready_now(i, time, &recovery.ready_at) {
                        recovery.failed[i] = true;
                        stats.abandoned_tasks += 1;
                        sobs.task_abandoned(time, i);
                    }
                }
                continue;
            }

            // The wave is one bundled launch: the first failure event —
            // a transient task death or a crash of any participating node —
            // kills everything still in flight.
            let nominal_end = wave.iter().map(|w| w.planned_end).fold(time, f64::max);
            let mut kill: Option<(f64, Option<usize>)> = None; // (when, crashed node)
            for w in &wave {
                if let Some(f) = w.fail_at {
                    if kill.is_none_or(|(k, _)| f < k) {
                        kill = Some((f, None));
                    }
                }
                for &node in &w.alloc {
                    let ct = injector.crash_time(node);
                    if ct > time && ct <= nominal_end && kill.is_none_or(|(k, _)| ct < k) {
                        kill = Some((ct, Some(node)));
                    }
                }
            }

            let wave_end = kill.map_or(nominal_end, |(k, _)| k);
            for w in &wave {
                let t = &workload.tasks[w.id];
                if w.planned_end <= wave_end {
                    // Finished before the bundle died (output already on
                    // disk) — or the wave was never killed.
                    if matches!(t.kind, TaskKind::PropagatorSolve { .. }) {
                        busy_node_seconds += (w.planned_end - w.start) * w.alloc.len() as f64;
                    }
                    completed_flops += t.flops;
                    records[w.id] = Some(TaskRecord {
                        id: w.id,
                        start: w.start,
                        end: w.planned_end,
                        nodes: w.alloc.clone(),
                        speed: w.speed,
                        attempts: w.attempt,
                    });
                    done[w.id] = true;
                    sobs.task_end(w.planned_end, w.id, w.attempt);
                } else {
                    // Killed as part of the bundle.
                    stats.wasted_node_seconds += (wave_end - w.start) * w.alloc.len() as f64;
                    wasted_records.push(TaskRecord {
                        id: w.id,
                        start: w.start,
                        end: wave_end,
                        nodes: w.alloc.clone(),
                        speed: w.speed,
                        attempts: w.attempt,
                    });
                    if w.fail_at == Some(wave_end) {
                        stats.transient_failures += 1;
                        sobs.task_killed(wave_end, w.id, w.attempt, "transient");
                        if let Some(&node) = w.alloc.first() {
                            if recovery.attribute_node_fault(node, policy)
                                && !cluster.nodes[node].failed
                            {
                                cluster.mark_crashed(node);
                                stats.blacklisted_nodes += 1;
                                sobs.blacklist(wave_end, node);
                            }
                        }
                    } else {
                        sobs.task_killed(wave_end, w.id, w.attempt, "wave_kill");
                    }
                    if recovery.requeue_or_fail(w.id, wave_end, policy, &mut stats) {
                        sobs.requeue(wave_end, w.id, recovery.ready_at[w.id]);
                    } else {
                        sobs.task_failed(wave_end, w.id);
                    }
                }
            }
            for w in &wave {
                cluster.release(&w.alloc);
            }
            if let Some((k, Some(node))) = kill {
                // The crash culprit is retired permanently.
                if injector.crash_time(node) <= k && !crash_applied[node] {
                    crash_applied[node] = true;
                    if !cluster.nodes[node].failed {
                        cluster.mark_crashed(node);
                        stats.node_crashes += 1;
                        sobs.node_crash(k, node);
                    }
                }
            }
            time = wave_end;
        }

        let completed_tasks = done.iter().filter(|&&d| d).count();
        let failed_tasks = recovery.failed.iter().filter(|&&f| f).count();
        let healthy = cluster.healthy_nodes() as f64;
        let report = SimReport {
            makespan: time,
            startup: 0.0,
            busy_node_seconds,
            total_node_seconds: healthy * time,
            records: records.into_iter().flatten().collect(),
            total_flops: workload.total_flops(),
            completed_flops,
            completed_tasks,
            failed_tasks,
            task_attempts: recovery.attempts,
            wasted_records,
            faults: stats,
        };
        sobs.finish(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use coral_machine::sierra;

    #[test]
    fn uniform_tasks_on_uniform_nodes_have_no_waste() {
        let mut c = Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes: 16,
                jitter_sigma: 0.0,
                startup_failure_prob: 0.0,
                seed: 1,
            },
        );
        // 8 tasks of 4 nodes on 16 nodes: two perfect waves.
        let w = Workload::uniform_solves(8, 4, 100.0, 1e15);
        let r = NaiveBundler::run(&mut c, &w);
        assert!((r.makespan - 200.0).abs() < 1e-9);
        assert!((r.utilization() - 1.0).abs() < 1e-9);
        assert_eq!(r.completed_tasks, 8);
        assert_eq!(r.failed_tasks, 0);
        assert!((r.completed_work_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_tasks_idle_20_to_25_percent() {
        // The paper's observation: heterogeneous durations + node jitter
        // under wave-bundling waste ~20-25%.
        let mut c = Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes: 64,
                jitter_sigma: 0.06,
                startup_failure_prob: 0.0,
                seed: 3,
            },
        );
        let w = Workload::heterogeneous_solves(16 * 8, 4, 1000.0, 0.35, 1e15, 7);
        let r = NaiveBundler::run(&mut c, &w);
        let waste = 1.0 - r.utilization();
        assert!(
            (0.12..0.35).contains(&waste),
            "naive bundling should waste ~20-25%, got {waste}"
        );
    }

    #[test]
    fn dependencies_are_honored() {
        let mut c = Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes: 8,
                jitter_sigma: 0.0,
                startup_failure_prob: 0.0,
                seed: 5,
            },
        );
        let w = Workload::figure2_workflow(1, 2, 4, 100.0, 1e15);
        let r = NaiveBundler::run(&mut c, &w);
        for t in &w.tasks {
            let rec = &r.records[t.id];
            for &d in &t.deps {
                assert!(
                    r.records[d].end <= rec.start + 1e-9,
                    "task {} started before dep {d} finished",
                    t.id
                );
            }
        }
    }

    #[test]
    fn a_node_crash_kills_the_whole_wave() {
        // One crash inside the first wave must requeue every unfinished
        // member (the bundle is a single mpirun), then finish on retry.
        let mut c = Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes: 16,
                jitter_sigma: 0.0,
                startup_failure_prob: 0.0,
                seed: 1,
            },
        );
        let w = Workload::uniform_solves(4, 4, 1000.0, 1e15);
        // MTBF chosen so some node crashes inside the first ~1000 s.
        let faults = FaultConfig {
            node_mtbf_seconds: 10_000.0,
            seed: 3,
            ..FaultConfig::default()
        };
        let r = NaiveBundler::run_with_faults(&mut c, &w, &faults, &RetryPolicy::default());
        assert!(r.faults.node_crashes >= 1, "{:?}", r.faults);
        assert!(
            !r.wasted_records.is_empty(),
            "a mid-wave crash must kill in-flight collateral"
        );
        assert!(r.faults.wasted_node_seconds > 0.0);
        assert_eq!(
            r.completed_tasks + r.failed_tasks,
            4,
            "every task is accounted for"
        );
        // Retried tasks completed exactly once each.
        let mut seen = std::collections::HashSet::new();
        for rec in &r.records {
            assert!(seen.insert(rec.id), "task {} completed twice", rec.id);
        }
    }

    #[test]
    fn transient_failures_are_retried_within_budget() {
        let mut c = Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes: 8,
                jitter_sigma: 0.0,
                startup_failure_prob: 0.0,
                seed: 9,
            },
        );
        let w = Workload::uniform_solves(16, 4, 100.0, 1e15);
        let faults = FaultConfig {
            transient_fail_prob: 0.3,
            seed: 11,
            ..FaultConfig::default()
        };
        let policy = RetryPolicy::default();
        let r = NaiveBundler::run_with_faults(&mut c, &w, &faults, &policy);
        assert!(r.faults.transient_failures > 0, "{:?}", r.faults);
        for (i, &a) in r.task_attempts.iter().enumerate() {
            assert!(
                a <= policy.max_attempts,
                "task {i} burned {a} attempts > budget"
            );
        }
        assert_eq!(r.completed_tasks + r.failed_tasks, 16);
    }
}
