//! Plan and simulate a full-machine lattice campaign on Sierra, the way the
//! paper did: strong-scale a single solve to pick the group size, then
//! weak-scale thousands of bundled solves under `mpi_jm`, compare job
//! managers, and model the partitioned startup.
//!
//! ```sh
//! cargo run --release --example exascale_campaign
//! ```

use lqcd::autotune::Tuner;
use lqcd::jobmgr::{
    startup_model, weak_scaling_point, Cluster, ClusterConfig, MetaqScheduler, MpiFlavor,
    MpiJmConfig, MpiJmScheduler, NaiveBundler, Workload,
};
use lqcd::machine::{sierra, SolverPerfModel};

fn main() {
    let machine = sierra();
    let tuner = Tuner::new();
    let model = SolverPerfModel::new(machine.clone(), [48, 48, 48, 64], 12);

    // Step 1: strong-scaling test over a single propagator to find the
    // smallest group that still runs near peak efficiency (paper §VII:
    // "we first perform strong-scaling tests ... to determine the optimal
    // number of nodes to carve out using mpi_jm").
    println!("step 1 — strong scaling of one 48^3x64 solve on Sierra:");
    // Memory floor: the 5D fields of a 48^3x64x12 solve need at least four
    // nodes' worth of HBM ("we will in general need a minimum number of GPUs
    // for a given calculation due to memory overheads").
    let memory_floor_gpus = 16;
    let peak_pct = model.performance(&tuner, 1).expect("fits").pct_peak;
    let mut best_group = memory_floor_gpus;
    for gpus in [4usize, 8, 16, 32, 64, 128] {
        if let Some(p) = model.performance(&tuner, gpus) {
            println!(
                "  {gpus:4} GPUs: {:7.1} TFLOPS  {:5.1}% of peak  ({:.0} GB/s per GPU)",
                p.tflops, p.pct_peak, p.bw_per_gpu_gbs
            );
            if gpus >= memory_floor_gpus
                && p.pct_peak > 0.98 * peak_pct
                && gpus < best_group.max(memory_floor_gpus + 1)
            {
                best_group = gpus;
            }
        }
    }
    println!(
        "  -> group size: {best_group} GPUs ({} nodes), the paper's choice\n",
        best_group / machine.gpus_per_node
    );

    // Step 2: weak-scale bundles of 4-node solves across the machine under
    // the three deployment modes of Fig. 5.
    println!("step 2 — weak scaling of bundled 4-node solves:");
    for flavor in [
        MpiFlavor::SpectrumIndividual,
        MpiFlavor::OpenMpiJmBlocks,
        MpiFlavor::Mvapich2JmSingle,
    ] {
        print!("  {:>18}:", flavor.label());
        for groups in [32usize, 128, 512] {
            let p = weak_scaling_point(
                &machine,
                [48, 48, 48, 64],
                12,
                4,
                groups,
                3,
                flavor,
                groups as u64,
            )
            .expect("16-GPU groups decompose 48^3x64");
            print!("  {:5} GPUs -> {:6.2} PF", p.n_gpus, p.pflops);
        }
        println!();
    }

    // Step 3: job-manager shoot-out on a heterogeneous batch.
    println!("\nstep 3 — scheduler comparison (128 heterogeneous solves, 64 nodes):");
    let workload = Workload::heterogeneous_solves(128, 4, 1000.0, 0.35, 1e15, 7);
    let config = ClusterConfig {
        nodes: 64,
        jitter_sigma: 0.06,
        startup_failure_prob: 0.0,
        seed: 3,
    };
    let naive = NaiveBundler::run(&mut Cluster::new(machine.clone(), &config), &workload);
    let metaq = MetaqScheduler::run(&mut Cluster::new(machine.clone(), &config), &workload);
    let mpijm = MpiJmScheduler::new(MpiJmConfig {
        lump_nodes: 32,
        block_nodes: 4,
        ..MpiJmConfig::default()
    })
    .run(&mut Cluster::new(machine.clone(), &config), &workload);
    for (name, r) in [("naive", &naive), ("METAQ", &metaq), ("mpi_jm", &mpijm)] {
        println!(
            "  {name:>7}: makespan {:6.0} s, utilization {:4.1}%, speedup {:.2}x",
            r.makespan,
            100.0 * r.utilization(),
            naive.makespan / r.makespan
        );
    }

    // Step 4: the startup story at the paper's largest single submission.
    println!("\nstep 4 — partitioned startup at 4224 nodes (lumps of 128):");
    let s = startup_model(4224, 128, 4);
    println!(
        "  lumps connected after {:.0} s; nearly all nodes working after {:.0} s",
        s.connected_seconds(),
        s.total_seconds()
    );
    println!(
        "  (a monolithic mpirun would have taken ~{:.0} s)",
        s.monolithic_seconds
    );
}
