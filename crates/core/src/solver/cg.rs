//! Conjugate gradient and CG on the normal equations (CGNE).

use super::SolveStats;
use crate::blas;
use crate::dirac::{DiracOp, LinearOp};
use crate::real::Real;
use crate::spinor::Spinor;

/// Stopping criteria for CG-family solvers.
#[derive(Clone, Copy, Debug)]
pub struct CgParams {
    /// Relative residual target `‖r‖/‖b‖`.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
}

impl Default for CgParams {
    fn default() -> Self {
        Self {
            tol: 1e-10,
            max_iter: 10_000,
        }
    }
}

/// Standard CG for a Hermitian positive-definite operator `A`.
///
/// Solves `A x = b`, starting from the value already in `x` (zero it for a
/// fresh solve). BLAS-1 flop accounting uses the paper's convention of ~50
/// flops per site-iteration beyond the stencil.
pub fn cg<R: Real, A: LinearOp<R> + ?Sized>(
    op: &A,
    x: &mut [Spinor<R>],
    b: &[Spinor<R>],
    params: CgParams,
) -> SolveStats {
    let n = op.vec_len();
    assert_eq!(x.len(), n);
    assert_eq!(b.len(), n);
    let mut stats = SolveStats::new();

    let b_norm2 = blas::norm_sqr(b);
    if b_norm2 == 0.0 {
        blas::zero(x);
        stats.converged = true;
        stats.final_rel_residual = 0.0;
        super::record_solve("cg", &stats);
        return stats;
    }
    if !b_norm2.is_finite() {
        // Corrupted source (NaN/∞): iterating would only propagate garbage.
        stats.breakdown = true;
        super::record_solve("cg", &stats);
        return stats;
    }

    // r = b − A x.
    let mut r = vec![Spinor::zero(); n];
    op.apply(&mut r, x);
    stats.flops += op.flops_per_apply();
    for (ri, (bi, _)) in r.iter_mut().zip(b.iter().zip(x.iter())) {
        *ri = *bi - *ri;
    }

    let mut p = r.clone();
    let mut ap = vec![Spinor::zero(); n];
    let mut r2 = blas::norm_sqr(&r);
    let target = params.tol * params.tol * b_norm2;
    let blas_flops = 6.0 * 24.0 * n as f64; // three axpys + two reductions per iteration

    while stats.iterations < params.max_iter && r2 > target {
        if !r2.is_finite() {
            // Divergence: terminate with an error status instead of
            // spinning on NaN until `max_iter`.
            stats.breakdown = true;
            break;
        }
        op.apply(&mut ap, &p);
        stats.iterations += 1;
        stats.flops += op.flops_per_apply() + blas_flops;

        let pap = blas::dot(&p, &ap).re;
        if !pap.is_finite() || pap <= 0.0 {
            // Not positive definite (or total loss of precision) — bail out.
            stats.breakdown = true;
            break;
        }
        let alpha = r2 / pap;
        blas::axpy(alpha, &p, x);
        blas::axpy(-alpha, &ap, &mut r);
        let r2_new = blas::norm_sqr(&r);
        let beta = r2_new / r2;
        blas::xpby(&r, beta, &mut p);
        r2 = r2_new;
    }

    if !r2.is_finite() {
        stats.breakdown = true;
    }
    stats.final_rel_residual = if r2.is_finite() {
        (r2 / b_norm2).sqrt()
    } else {
        f64::INFINITY
    };
    stats.converged = r2.is_finite() && r2 <= target;
    super::record_solve("cg", &stats);
    stats
}

/// CG on the normal equations: solves `D x = b` by running [`cg`] on
/// `D†D x = D†b` — the paper's solver for the Möbius discretization.
pub fn cgne<R: Real, D: DiracOp<R>>(
    op: &D,
    x: &mut [Spinor<R>],
    b: &[Spinor<R>],
    params: CgParams,
) -> SolveStats {
    let n = op.vec_len();
    let mut rhs = vec![Spinor::zero(); n];
    op.apply_dagger(&mut rhs, b);

    let normal = crate::dirac::NormalOp::new(op);
    let mut stats = cg(&normal, x, &rhs, params);
    stats.flops += op.flops_per_apply();

    // Report the true residual of the original system.
    let mut dx = vec![Spinor::zero(); n];
    op.apply(&mut dx, x);
    let diff = blas::sub(b, &dx);
    let b2 = blas::norm_sqr(b);
    if b2 > 0.0 && b2.is_finite() {
        let true_r2 = blas::norm_sqr(&diff);
        if true_r2.is_finite() {
            stats.final_rel_residual = (true_r2 / b2).sqrt();
        } else {
            stats.final_rel_residual = f64::INFINITY;
            stats.converged = false;
            stats.breakdown = true;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirac::{MobiusDirac, MobiusParams, NormalOp, PrecMobius, PrecWilson, WilsonDirac};
    use crate::field::{FermionField, GaugeField};
    use crate::lattice::Lattice;

    #[test]
    fn cg_solves_wilson_normal_equations() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 61);
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let b = FermionField::<f64>::gaussian(lat.volume(), 11).data;
        let mut x = vec![Spinor::zero(); lat.volume()];
        let stats = cgne(&d, &mut x, &b, CgParams::default());
        assert!(stats.converged, "CGNE must converge: {stats:?}");
        assert!(stats.final_rel_residual < 1e-9);
        assert!(stats.flops > 0.0);
    }

    #[test]
    fn cg_respects_iteration_budget() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 67);
        let d = WilsonDirac::new(&lat, &gauge, 0.05, true);
        let b = FermionField::<f64>::gaussian(lat.volume(), 12).data;
        let mut x = vec![Spinor::zero(); lat.volume()];
        let stats = cgne(
            &d,
            &mut x,
            &b,
            CgParams {
                tol: 1e-14,
                max_iter: 3,
            },
        );
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 3);
    }

    #[test]
    fn nan_source_terminates_with_breakdown_not_max_iter() {
        // A corrupted propagator source (NaN) must stop the solve with an
        // error status immediately, not iterate to max_iter on garbage.
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 61);
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let mut b = FermionField::<f64>::gaussian(lat.volume(), 11).data;
        b[7].s[0].c[0].re = f64::NAN;
        let mut x = vec![Spinor::zero(); lat.volume()];
        let stats = cgne(&d, &mut x, &b, CgParams::default());
        assert!(stats.breakdown, "{stats:?}");
        assert!(!stats.converged);
        assert!(stats.iterations < 10, "must not spin on NaN: {stats:?}");
    }

    #[test]
    fn nan_initial_guess_terminates_with_breakdown() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 61);
        let d = WilsonDirac::new(&lat, &gauge, 0.3, true);
        let normal = NormalOp::new(&d);
        let b = FermionField::<f64>::gaussian(lat.volume(), 11).data;
        let mut x = vec![Spinor::zero(); lat.volume()];
        x[0].s[0].c[0].re = f64::INFINITY;
        let stats = cg(&normal, &mut x, &b, CgParams::default());
        assert!(stats.breakdown, "{stats:?}");
        assert!(!stats.converged);
        assert!(stats.iterations < 10);
    }

    #[test]
    fn cg_on_zero_rhs_returns_zero() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge = GaugeField::<f64>::cold(&lat);
        let d = WilsonDirac::new(&lat, &gauge, 0.5, true);
        let normal = NormalOp::new(&d);
        let b = vec![Spinor::zero(); lat.volume()];
        let mut x = FermionField::<f64>::gaussian(lat.volume(), 13).data;
        let stats = cg(&normal, &mut x, &b, CgParams::default());
        assert!(stats.converged);
        assert_eq!(crate::blas::norm_sqr(&x), 0.0);
    }

    #[test]
    fn cgne_solves_full_mobius() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 71);
        let params = MobiusParams::standard(4, 0.1);
        let d = MobiusDirac::new(&lat, &gauge, params);
        let b = FermionField::<f64>::gaussian(d.vec_len(), 14).data;
        let mut x = vec![Spinor::zero(); d.vec_len()];
        let stats = cgne(&d, &mut x, &b, CgParams::default());
        assert!(stats.converged, "{stats:?}");
        assert!(stats.final_rel_residual < 1e-9);
    }

    #[test]
    fn preconditioned_mobius_solve_matches_full_solve() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 73);
        let params = MobiusParams::standard(4, 0.1);
        let full = MobiusDirac::new(&lat, &gauge, params);
        let prec = PrecMobius::new(&lat, &gauge, params);

        let b = FermionField::<f64>::gaussian(full.vec_len(), 15).data;

        // Full solve.
        let mut x_full = vec![Spinor::zero(); full.vec_len()];
        let s1 = cgne(&full, &mut x_full, &b, CgParams::default());
        assert!(s1.converged);

        // Preconditioned solve.
        let (b_e, b_o) = prec.split(&b);
        let rhs = prec.prepare_source(&b_e, &b_o);
        let mut x_o = vec![Spinor::zero(); prec.vec_len()];
        let s2 = cgne(&prec, &mut x_o, &rhs, CgParams::default());
        assert!(s2.converged);
        let x_e = prec.reconstruct_even(&b_e, &x_o);
        let x_prec = prec.merge(&x_e, &x_o);

        let diff = crate::blas::sub(&x_full, &x_prec);
        let rel = crate::blas::norm_sqr(&diff) / crate::blas::norm_sqr(&x_full);
        assert!(rel < 1e-16, "prec and full solutions differ: rel {rel}");
    }

    #[test]
    fn preconditioning_reduces_iteration_count() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 79);
        let mass = 0.2;
        let full = WilsonDirac::new(&lat, &gauge, mass, true);
        let prec = PrecWilson::new(&lat, &gauge, mass, true);

        let b = FermionField::<f64>::gaussian(lat.volume(), 16).data;
        let mut x_full = vec![Spinor::zero(); lat.volume()];
        let s_full = cgne(&full, &mut x_full, &b, CgParams::default());

        let (b_e, b_o) = prec.split(&b);
        let rhs = prec.prepare_source(&b_e, &b_o);
        let mut x_o = vec![Spinor::zero(); lat.half_volume()];
        let s_prec = cgne(&prec, &mut x_o, &rhs, CgParams::default());

        assert!(s_full.converged && s_prec.converged);
        assert!(
            s_prec.iterations < s_full.iterations,
            "red-black should converge faster: {} vs {}",
            s_prec.iterations,
            s_full.iterations
        );
    }
}
