//! Halo-exchange communication policies and their timing model.
//!
//! Deploying a multi-process stencil on an MPI+GPU system offers several
//! ways to coordinate GPU compute with MPI communication (paper §V):
//! staging halos through CPU memory with GPU DMA engines, zero-copy
//! reads/writes against CPU memory, or GPU Direct RDMA straight to the NIC —
//! crossed with coarse-grained (one halo kernel after all communication,
//! less launch latency) versus fine-grained (per-dimension, better overlap)
//! scheduling. The optimum depends on message size, node density, GPU
//! generation, and machine support — "given this multi-dimensional parameter
//! space ... applying the autotuner to the stencil-communication policy is
//! very natural."
//!
//! Each policy here exposes a deterministic cost model; the autotuner sweeps
//! the available policies per (machine, decomposition) exactly as the
//! paper's communication-policy tuning does.

use crate::decomp::Decomposition;
use crate::specs::MachineSpec;
use serde::{Deserialize, Serialize};

/// How halo bytes reach the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommTransport {
    /// GPU DMA to CPU buffers, regular MPI from the CPU. Always available;
    /// costs CPU synchronization and shares the CPU link.
    StagedDma,
    /// Zero-copy loads/stores against CPU memory for sends/receives. Lower
    /// latency, lower achievable bandwidth.
    ZeroCopy,
    /// GPU Direct RDMA between GPU and NIC. Best transport, but unsupported
    /// on Sierra/Summit at the time of the paper's submission.
    GdrDirect,
}

/// Halo-update scheduling granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommGranularity {
    /// Wait for all dimensions, launch one fused halo kernel (less launch
    /// latency, worse overlap).
    Coarse,
    /// Per-dimension halo kernels as messages complete (more launches,
    /// better overlap).
    Fine,
}

/// A complete communication policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommPolicy {
    /// Wire transport.
    pub transport: CommTransport,
    /// Scheduling granularity.
    pub granularity: CommGranularity,
}

impl CommPolicy {
    /// Every policy, in a stable order (policy index = position).
    pub fn all() -> Vec<CommPolicy> {
        let mut v = Vec::new();
        for transport in [
            CommTransport::StagedDma,
            CommTransport::ZeroCopy,
            CommTransport::GdrDirect,
        ] {
            for granularity in [CommGranularity::Coarse, CommGranularity::Fine] {
                v.push(CommPolicy {
                    transport,
                    granularity,
                });
            }
        }
        v
    }

    /// Policies usable on `machine` (GDR requires hardware/software support).
    pub fn available(machine: &MachineSpec) -> Vec<CommPolicy> {
        Self::all()
            .into_iter()
            .filter(|p| machine.gdr_available || p.transport != CommTransport::GdrDirect)
            .collect()
    }

    /// Short display name, e.g. `"staged/coarse"`.
    pub fn label(&self) -> String {
        let t = match self.transport {
            CommTransport::StagedDma => "staged",
            CommTransport::ZeroCopy => "zerocopy",
            CommTransport::GdrDirect => "gdr",
        };
        let g = match self.granularity {
            CommGranularity::Coarse => "coarse",
            CommGranularity::Fine => "fine",
        };
        format!("{t}/{g}")
    }

    /// Peak inter-node bandwidth per GPU for this transport on `machine`,
    /// GB/s, before message-size derating. The NIC is shared by all GPUs on
    /// the node; staging additionally rides the CPU link and pays protocol
    /// overheads (the paper's motivation for wanting GDR).
    fn base_inter_bw(&self, machine: &MachineSpec) -> f64 {
        let share = machine.gpus_per_node as f64;
        match self.transport {
            CommTransport::StagedDma => {
                (machine.nic_bw_gbs * 0.55).min(machine.cpu_gpu_bw_gbs * 0.5) / share
            }
            CommTransport::ZeroCopy => {
                (machine.nic_bw_gbs * 0.35).min(machine.cpu_gpu_bw_gbs * 0.4) / share
            }
            CommTransport::GdrDirect => machine.nic_bw_gbs * 0.80 / share,
        }
    }

    /// Message size at which the transport reaches half its peak bandwidth,
    /// bytes. Staging pipelines poorly for small messages.
    fn half_saturation_bytes(&self) -> f64 {
        match self.transport {
            CommTransport::StagedDma => 1.0e6,
            CommTransport::ZeroCopy => 2.5e5,
            CommTransport::GdrDirect => 1.25e5,
        }
    }

    /// Per-message software latency, seconds.
    fn message_latency(&self, machine: &MachineSpec) -> f64 {
        let wire = machine.net_latency_us * 1e-6;
        match self.transport {
            CommTransport::StagedDma => wire + 8e-6,
            CommTransport::ZeroCopy => wire + 4e-6,
            CommTransport::GdrDirect => wire + 2e-6,
        }
    }

    /// Kernel-launch overhead for the halo update, seconds.
    pub fn launch_overhead(&self, n_dirs: usize) -> f64 {
        match self.granularity {
            CommGranularity::Coarse => 10e-6,
            CommGranularity::Fine => 5e-6 * (2 * n_dirs.max(1)) as f64,
        }
    }

    /// Fraction of the halo compute that overlaps with communication.
    pub fn overlap_fraction(&self) -> f64 {
        match self.granularity {
            CommGranularity::Coarse => 0.0,
            CommGranularity::Fine => 0.6,
        }
    }

    /// Time for one operator application's halo exchange under this policy,
    /// seconds: intra-node over NVLink (CUDA IPC), inter-node over the NIC
    /// with message-size derating, plus per-message latencies.
    pub fn exchange_time(&self, machine: &MachineSpec, decomp: &Decomposition) -> f64 {
        let (intra_bytes, inter_bytes) = decomp.halo_bytes();
        let mut t = 0.0;

        if intra_bytes > 0.0 {
            // CUDA IPC over NVLink; negligible software latency after the
            // paper's dense-node optimization removed CPU synchronization.
            t += intra_bytes / (machine.nvlink_bw_gbs * 1e9) + 2e-6;
        }

        if inter_bytes > 0.0 {
            let inter_dirs: Vec<_> = decomp.halos.iter().filter(|h| !h.intra_node).collect();
            let n_msgs = 2 * inter_dirs.len();
            // Average face message size for derating.
            let avg_msg = inter_bytes / n_msgs as f64;
            let half = self.half_saturation_bytes();
            let utilization = avg_msg / (avg_msg + half);
            let bw = self.base_inter_bw(machine) * 1e9 * utilization.max(1e-3);
            t += inter_bytes / bw + n_msgs as f64 * self.message_latency(machine);
        }

        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{ray, sierra, titan};

    fn decomp_48(gpus: usize, gpn: usize) -> Decomposition {
        Decomposition::best([48, 48, 48, 64], 12, gpus, gpn).expect("fits")
    }

    #[test]
    fn six_policies_exist_and_gdr_is_gated() {
        assert_eq!(CommPolicy::all().len(), 6);
        assert_eq!(
            CommPolicy::available(&sierra()).len(),
            4,
            "no GDR on Sierra"
        );
        assert_eq!(CommPolicy::available(&ray()).len(), 6, "GDR on Ray");
    }

    #[test]
    fn gdr_beats_staging_when_available() {
        let m = ray();
        let d = decomp_48(32, m.gpus_per_node);
        let staged = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Coarse,
        };
        let gdr = CommPolicy {
            transport: CommTransport::GdrDirect,
            granularity: CommGranularity::Coarse,
        };
        assert!(gdr.exchange_time(&m, &d) < staged.exchange_time(&m, &d));
    }

    #[test]
    fn single_gpu_needs_no_exchange_time_beyond_zero() {
        let m = sierra();
        let d = decomp_48(1, m.gpus_per_node);
        for p in CommPolicy::available(&m) {
            assert_eq!(p.exchange_time(&m, &d), 0.0, "{}", p.label());
        }
    }

    #[test]
    fn exchange_time_grows_with_gpu_count_past_node() {
        let m = sierra();
        let p = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Coarse,
        };
        // All-intra (4 GPUs, one node) must beat inter-node (32 GPUs).
        let t4 = p.exchange_time(&m, &decomp_48(4, 4));
        let t32 = p.exchange_time(&m, &decomp_48(32, 4));
        assert!(t4 < t32, "intra-node {t4} vs inter-node {t32}");
    }

    #[test]
    fn titan_interconnect_is_slowest() {
        let d_t = decomp_48(16, 1);
        let d_s = decomp_48(16, 4);
        let p = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Coarse,
        };
        assert!(p.exchange_time(&titan(), &d_t) > p.exchange_time(&sierra(), &d_s));
    }

    #[test]
    fn fine_granularity_overlaps_more_but_launches_more() {
        let coarse = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Coarse,
        };
        let fine = CommPolicy {
            transport: CommTransport::StagedDma,
            granularity: CommGranularity::Fine,
        };
        assert!(fine.overlap_fraction() > coarse.overlap_fraction());
        assert!(fine.launch_overhead(4) > coarse.launch_overhead(4));
    }
}
