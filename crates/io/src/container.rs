//! The chunked container format.
//!
//! Layout:
//! ```text
//! magic   8 bytes  "LQIO\x01\0\0\n"
//! u32 LE  header JSON length
//! bytes   header JSON (name, dtype, shape, chunk_bytes, metadata)
//! repeat per chunk:
//!   u64 LE  payload length
//!   bytes   payload
//!   u32 LE  CRC-32C(payload)
//! ```

use crate::crc32c::crc32c;
use crate::IoError;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

/// File magic.
pub const MAGIC: [u8; 8] = *b"LQIO\x01\0\0\n";

/// Default chunk payload size.
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// Container header, stored as JSON.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Header {
    /// Dataset name (e.g. `"gauge"`, `"propagator_column"`).
    pub name: String,
    /// Element type: `"f64"` or `"f32"`.
    pub dtype: String,
    /// Logical shape (e.g. `[x, y, z, t, 4, 18]` for a gauge field).
    pub shape: Vec<usize>,
    /// Number of payload chunks that follow.
    pub n_chunks: usize,
    /// Free-form metadata.
    pub metadata: BTreeMap<String, String>,
}

/// A parsed container: header plus the raw little-endian payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Container {
    /// Header.
    pub header: Header,
    /// Concatenated payload bytes.
    pub payload: Vec<u8>,
}

impl Container {
    /// Total element count implied by the shape.
    pub fn element_count(&self) -> usize {
        self.header.shape.iter().product()
    }

    /// Decode the payload as little-endian `f64`s.
    pub fn to_f64(&self) -> Result<Vec<f64>, IoError> {
        if self.header.dtype != "f64" {
            return Err(IoError::ShapeMismatch(format!(
                "expected dtype f64, file has {}",
                self.header.dtype
            )));
        }
        if self.payload.len() != self.element_count() * 8 {
            return Err(IoError::Format("payload length != shape".into()));
        }
        Ok(self
            .payload
            .par_chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
            .collect())
    }

    /// Decode the payload as little-endian `f32`s.
    pub fn to_f32(&self) -> Result<Vec<f32>, IoError> {
        if self.header.dtype != "f32" {
            return Err(IoError::ShapeMismatch(format!(
                "expected dtype f32, file has {}",
                self.header.dtype
            )));
        }
        if self.payload.len() != self.element_count() * 4 {
            return Err(IoError::Format("payload length != shape".into()));
        }
        Ok(self
            .payload
            .par_chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("4 bytes")))
            .collect())
    }

    /// Build a container from `f64` values.
    pub fn from_f64(
        name: &str,
        shape: Vec<usize>,
        values: &[f64],
        metadata: BTreeMap<String, String>,
    ) -> Self {
        assert_eq!(values.len(), shape.iter().product::<usize>());
        let payload: Vec<u8> = values
            .par_iter()
            .flat_map_iter(|v| v.to_le_bytes())
            .collect();
        Self {
            header: Header {
                name: name.into(),
                dtype: "f64".into(),
                shape,
                n_chunks: 0, // fixed at write time
                metadata,
            },
            payload,
        }
    }

    /// Build a container from `f32` values.
    pub fn from_f32(
        name: &str,
        shape: Vec<usize>,
        values: &[f32],
        metadata: BTreeMap<String, String>,
    ) -> Self {
        assert_eq!(values.len(), shape.iter().product::<usize>());
        let payload: Vec<u8> = values
            .par_iter()
            .flat_map_iter(|v| v.to_le_bytes())
            .collect();
        Self {
            header: Header {
                name: name.into(),
                dtype: "f32".into(),
                shape,
                n_chunks: 0,
                metadata,
            },
            payload,
        }
    }
}

/// Write a container to `path`, chunking the payload and checksumming each
/// chunk (checksums computed in parallel).
pub fn write_container(path: &Path, container: &Container) -> Result<(), IoError> {
    let chunks: Vec<&[u8]> = container.payload.chunks(DEFAULT_CHUNK_BYTES).collect();
    let crcs: Vec<u32> = chunks.par_iter().map(|c| crc32c(c)).collect();

    let mut header = container.header.clone();
    header.n_chunks = chunks.len();
    let header_json = serde_json::to_vec(&header).expect("header serializes");

    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(&MAGIC)?;
    file.write_all(&(header_json.len() as u32).to_le_bytes())?;
    file.write_all(&header_json)?;
    for (chunk, crc) in chunks.iter().zip(&crcs) {
        file.write_all(&(chunk.len() as u64).to_le_bytes())?;
        file.write_all(chunk)?;
        file.write_all(&crc.to_le_bytes())?;
    }
    file.flush()?;
    Ok(())
}

/// Read only the header of a container (no payload, no checksum work) —
/// what a workflow manager uses to inventory files cheaply.
pub fn read_header(path: &Path) -> Result<Header, IoError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let mut len4 = [0u8; 4];
    file.read_exact(&mut len4)?;
    let hlen = u32::from_le_bytes(len4) as usize;
    let mut hbytes = vec![0u8; hlen];
    file.read_exact(&mut hbytes)?;
    serde_json::from_slice(&hbytes).map_err(|e| IoError::Format(format!("header: {e}")))
}

/// Read and verify a container from `path`.
pub fn read_container(path: &Path) -> Result<Container, IoError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let mut len4 = [0u8; 4];
    file.read_exact(&mut len4)?;
    let hlen = u32::from_le_bytes(len4) as usize;
    let mut hbytes = vec![0u8; hlen];
    file.read_exact(&mut hbytes)?;
    let header: Header =
        serde_json::from_slice(&hbytes).map_err(|e| IoError::Format(format!("header: {e}")))?;

    let mut chunks: Vec<Vec<u8>> = Vec::with_capacity(header.n_chunks);
    let mut stored_crcs = Vec::with_capacity(header.n_chunks);
    for _ in 0..header.n_chunks {
        let mut len8 = [0u8; 8];
        file.read_exact(&mut len8)?;
        let clen = u64::from_le_bytes(len8) as usize;
        let mut payload = vec![0u8; clen];
        file.read_exact(&mut payload)?;
        file.read_exact(&mut len4)?;
        stored_crcs.push(u32::from_le_bytes(len4));
        chunks.push(payload);
    }

    // Verify all checksums in parallel.
    let bad = chunks
        .par_iter()
        .zip(stored_crcs.par_iter())
        .enumerate()
        .find_map_first(|(i, (c, &crc))| if crc32c(c) != crc { Some(i) } else { None });
    if let Some(chunk) = bad {
        return Err(IoError::ChecksumMismatch { chunk });
    }

    let payload = chunks.concat();
    Ok(Container { header, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lattice_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn f64_round_trip() {
        let vals: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let c = Container::from_f64("test", vec![100, 100], &vals, BTreeMap::new());
        let path = tmp("roundtrip_f64.lqio");
        write_container(&path, &c).unwrap();
        let back = read_container(&path).unwrap();
        assert_eq!(back.to_f64().unwrap(), vals);
        assert_eq!(back.header.shape, vec![100, 100]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_round_trip_with_metadata() {
        let vals: Vec<f32> = (0..513).map(|i| i as f32 * 0.5).collect();
        let mut md = BTreeMap::new();
        md.insert("beta".into(), "5.7".into());
        md.insert("config".into(), "42".into());
        let c = Container::from_f32("cfg", vec![513], &vals, md.clone());
        let path = tmp("roundtrip_f32.lqio");
        write_container(&path, &c).unwrap();
        let back = read_container(&path).unwrap();
        assert_eq!(back.to_f32().unwrap(), vals);
        assert_eq!(back.header.metadata, md);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let vals: Vec<f64> = (0..300_000).map(|i| i as f64).collect();
        let c = Container::from_f64("big", vec![300_000], &vals, BTreeMap::new());
        let path = tmp("corrupt.lqio");
        write_container(&path, &c).unwrap();
        // Flip one byte in the middle of the payload region.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match read_container(&path) {
            Err(IoError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_only_read_skips_payload() {
        let vals: Vec<f64> = (0..50_000).map(|i| i as f64).collect();
        let mut md = BTreeMap::new();
        md.insert("config".into(), "7".into());
        let c = Container::from_f64("inventory", vec![50_000], &vals, md);
        let path = tmp("header_only.lqio");
        write_container(&path, &c).unwrap();
        let h = read_header(&path).unwrap();
        assert_eq!(h.name, "inventory");
        assert_eq!(h.shape, vec![50_000]);
        assert_eq!(h.metadata.get("config").map(String::as_str), Some("7"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("badmagic.lqio");
        std::fs::write(&path, b"NOTAFILE plus junk").unwrap();
        assert!(matches!(
            read_container(&path),
            Err(IoError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dtype_mismatch_is_rejected() {
        let vals: Vec<f64> = vec![1.0, 2.0];
        let c = Container::from_f64("x", vec![2], &vals, BTreeMap::new());
        let path = tmp("dtype.lqio");
        write_container(&path, &c).unwrap();
        let back = read_container(&path).unwrap();
        assert!(back.to_f32().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_chunk_files_work() {
        // 3.5 chunks worth of data.
        let n = (DEFAULT_CHUNK_BYTES * 7 / 2) / 8;
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let c = Container::from_f64("multi", vec![n], &vals, BTreeMap::new());
        let path = tmp("multichunk.lqio");
        write_container(&path, &c).unwrap();
        let back = read_container(&path).unwrap();
        assert_eq!(back.header.n_chunks, 4);
        assert_eq!(back.to_f64().unwrap(), vals);
        std::fs::remove_file(&path).ok();
    }
}
