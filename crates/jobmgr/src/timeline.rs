//! Utilization timelines: turn a schedule into a busy-nodes-vs-time curve
//! and render it as a terminal sparkline — how the 20-25% naive-bundling
//! waste becomes visible.

use crate::report::SimReport;

/// Sampled utilization curve: `(time, busy_nodes)` at `n_samples` points.
pub fn utilization_timeline(
    report: &SimReport,
    total_nodes: usize,
    n_samples: usize,
) -> Vec<(f64, usize)> {
    assert!(n_samples >= 2);
    let end = report.makespan.max(1e-12);
    (0..n_samples)
        .map(|k| {
            let t = end * k as f64 / (n_samples - 1) as f64;
            let busy: usize = report
                .records
                .iter()
                .filter(|r| r.start <= t && t < r.end)
                .map(|r| r.nodes.len())
                .sum();
            (t, busy.min(total_nodes))
        })
        .collect()
}

/// Sampled wasted-work curve: nodes busy with attempts that were later
/// killed (crash collateral, transient failures), at `n_samples` points.
/// Zero everywhere on a pristine run.
pub fn wasted_timeline(
    report: &SimReport,
    total_nodes: usize,
    n_samples: usize,
) -> Vec<(f64, usize)> {
    assert!(n_samples >= 2);
    let end = report.makespan.max(1e-12);
    (0..n_samples)
        .map(|k| {
            let t = end * k as f64 / (n_samples - 1) as f64;
            let busy: usize = report
                .wasted_records
                .iter()
                .filter(|r| r.start <= t && t < r.end)
                .map(|r| r.nodes.len())
                .sum();
            (t, busy.min(total_nodes))
        })
        .collect()
}

/// Render a timeline as a unicode sparkline (one char per sample).
pub fn sparkline(timeline: &[(f64, usize)], total_nodes: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    timeline
        .iter()
        .map(|&(_, busy)| {
            let frac = busy as f64 / total_nodes.max(1) as f64;
            let idx = ((frac * 7.0).round() as usize).min(7);
            BARS[idx]
        })
        .collect()
}

/// Time-integrated utilization from a sampled timeline (trapezoidal).
pub fn timeline_utilization(timeline: &[(f64, usize)], total_nodes: usize) -> f64 {
    if timeline.len() < 2 || total_nodes == 0 {
        return 0.0;
    }
    let mut busy_area = 0.0;
    let mut total_area = 0.0;
    for w in timeline.windows(2) {
        let dt = w[1].0 - w[0].0;
        busy_area += 0.5 * (w[0].1 + w[1].1) as f64 * dt;
        total_area += total_nodes as f64 * dt;
    }
    busy_area / total_area
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::metaq::MetaqScheduler;
    use crate::naive::NaiveBundler;
    use crate::task::Workload;
    use coral_machine::sierra;

    fn cluster(nodes: usize) -> Cluster {
        Cluster::new(
            sierra(),
            &ClusterConfig {
                nodes,
                jitter_sigma: 0.06,
                startup_failure_prob: 0.0,
                seed: 3,
            },
        )
    }

    #[test]
    fn timeline_matches_report_utilization() {
        let w = Workload::heterogeneous_solves(64, 4, 500.0, 0.3, 1e15, 7);
        let r = MetaqScheduler::run(&mut cluster(32), &w);
        let tl = utilization_timeline(&r, 32, 400);
        let u_tl = timeline_utilization(&tl, 32);
        // Timeline sampling should land close to the exact busy-time ratio.
        assert!(
            (u_tl - r.utilization()).abs() < 0.05,
            "{u_tl} vs {}",
            r.utilization()
        );
    }

    #[test]
    fn naive_timeline_shows_wave_valleys() {
        let w = Workload::heterogeneous_solves(32, 4, 500.0, 0.4, 1e15, 9);
        let r = NaiveBundler::run(&mut cluster(32), &w);
        let tl = utilization_timeline(&r, 32, 200);
        // Waves: utilization must dip well below full between waves.
        let min_busy = tl[5..195].iter().map(|&(_, b)| b).min().unwrap();
        assert!(
            min_busy < 24,
            "naive bundling should show idle valleys, min busy = {min_busy}"
        );
    }

    #[test]
    fn wasted_timeline_is_zero_on_pristine_runs_and_nonzero_under_faults() {
        use crate::fault::{FaultConfig, RetryPolicy};
        let w = Workload::uniform_solves(16, 4, 1000.0, 1e15);
        let pristine = NaiveBundler::run(&mut cluster(16), &w);
        let tl = wasted_timeline(&pristine, 16, 50);
        assert!(tl.iter().all(|&(_, b)| b == 0));

        let faults = FaultConfig {
            node_mtbf_seconds: 8_000.0,
            seed: 3,
            ..FaultConfig::default()
        };
        let faulty =
            NaiveBundler::run_with_faults(&mut cluster(16), &w, &faults, &RetryPolicy::default());
        if !faulty.wasted_records.is_empty() {
            let tl = wasted_timeline(&faulty, 16, 400);
            assert!(tl.iter().any(|&(_, b)| b > 0));
        }
    }

    #[test]
    fn sparkline_has_one_char_per_sample() {
        let tl = vec![(0.0, 0), (1.0, 16), (2.0, 32)];
        let s = sparkline(&tl, 32);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }
}
