//! Serialization of physics objects through the container format.

use crate::container::{read_container, write_container, Container};
use crate::IoError;
use lqcd_core::complex::Complex;
use lqcd_core::field::{FermionField, GaugeField};
use lqcd_core::lattice::{Lattice, ND};
use lqcd_core::su3::{Su3, NC};
use std::collections::BTreeMap;
use std::path::Path;

/// Write a gauge configuration (f64, row-major links, re/im interleaved).
pub fn write_gauge(
    path: &Path,
    lattice: &Lattice,
    gauge: &GaugeField<f64>,
    metadata: BTreeMap<String, String>,
) -> Result<(), IoError> {
    let dims = lattice.dims();
    let mut values = Vec::with_capacity(lattice.volume() * ND * NC * NC * 2);
    for u in gauge.links() {
        for row in &u.m {
            for e in row {
                values.push(e.re);
                values.push(e.im);
            }
        }
    }
    let shape = vec![dims[0], dims[1], dims[2], dims[3], ND, NC * NC * 2];
    let c = Container::from_f64("gauge", shape, &values, metadata);
    write_container(path, &c)
}

/// Read a gauge configuration written by [`write_gauge`].
pub fn read_gauge(path: &Path, lattice: &Lattice) -> Result<GaugeField<f64>, IoError> {
    let c = read_container(path)?;
    let dims = lattice.dims();
    let expect = vec![dims[0], dims[1], dims[2], dims[3], ND, NC * NC * 2];
    if c.header.shape != expect {
        return Err(IoError::ShapeMismatch(format!(
            "file shape {:?}, lattice needs {:?}",
            c.header.shape, expect
        )));
    }
    let values = c.to_f64()?;
    let mut gauge = GaugeField::cold(lattice);
    for (l, link) in gauge.links_mut().iter_mut().enumerate() {
        let base = l * NC * NC * 2;
        let mut u = Su3::zero();
        for i in 0..NC {
            for j in 0..NC {
                let k = base + (i * NC + j) * 2;
                u.m[i][j] = Complex::new(values[k], values[k + 1]);
            }
        }
        *link = u;
    }
    Ok(gauge)
}

/// Write a fermion field (propagator column).
pub fn write_fermion(
    path: &Path,
    field: &FermionField<f64>,
    metadata: BTreeMap<String, String>,
) -> Result<(), IoError> {
    let mut values = Vec::with_capacity(field.len() * 24);
    for sp in &field.data {
        for s in 0..4 {
            for c in 0..NC {
                values.push(sp.s[s].c[c].re);
                values.push(sp.s[s].c[c].im);
            }
        }
    }
    let shape = vec![field.len(), 4, NC, 2];
    let c = Container::from_f64("fermion", shape, &values, metadata);
    write_container(path, &c)
}

/// Read a fermion field written by [`write_fermion`].
pub fn read_fermion(path: &Path) -> Result<FermionField<f64>, IoError> {
    read_fermion_with_meta(path).map(|(f, _)| f)
}

/// Read a fermion field together with the container's metadata map.
///
/// The solve service's spill cache stores the canonical cache key (and the
/// solve provenance) in the metadata and verifies every field of it on
/// load, so a spill file can never be served against the wrong request
/// even if two keys were to share a file name.
pub fn read_fermion_with_meta(
    path: &Path,
) -> Result<(FermionField<f64>, BTreeMap<String, String>), IoError> {
    let c = read_container(path)?;
    if c.header.shape.len() != 4 || c.header.shape[1..] != [4, NC, 2] {
        return Err(IoError::ShapeMismatch(format!(
            "not a fermion file: shape {:?}",
            c.header.shape
        )));
    }
    let n = c.header.shape[0];
    let values = c.to_f64()?;
    let mut field = FermionField::zeros(n);
    for (i, sp) in field.data.iter_mut().enumerate() {
        let base = i * 24;
        for s in 0..4 {
            for col in 0..NC {
                let k = base + (s * NC + col) * 2;
                sp.s[s].c[col] = Complex::new(values[k], values[k + 1]);
            }
        }
    }
    Ok((field, c.header.metadata))
}

/// Write a (complex) correlator as `[nt, 2]`.
pub fn write_correlator(
    path: &Path,
    corr: &[lqcd_core::complex::C64],
    metadata: BTreeMap<String, String>,
) -> Result<(), IoError> {
    let mut values = Vec::with_capacity(corr.len() * 2);
    for c in corr {
        values.push(c.re);
        values.push(c.im);
    }
    let c = Container::from_f64("correlator", vec![corr.len(), 2], &values, metadata);
    write_container(path, &c)
}

/// Read a correlator written by [`write_correlator`].
pub fn read_correlator(path: &Path) -> Result<Vec<lqcd_core::complex::C64>, IoError> {
    let c = read_container(path)?;
    if c.header.shape.len() != 2 || c.header.shape[1] != 2 {
        return Err(IoError::ShapeMismatch(format!(
            "not a correlator file: shape {:?}",
            c.header.shape
        )));
    }
    let values = c.to_f64()?;
    Ok(values
        .chunks_exact(2)
        .map(|p| lqcd_core::complex::C64::new(p[0], p[1]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_core::complex::C64;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lattice_io_field_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn gauge_round_trip_is_exact() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 17);
        let path = tmp("gauge.lqio");
        let mut md = BTreeMap::new();
        md.insert("beta".into(), "6.0".into());
        write_gauge(&path, &lat, &gauge, md).unwrap();
        let back = read_gauge(&path, &lat).unwrap();
        assert_eq!(back.links(), gauge.links());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gauge_shape_mismatch_is_rejected() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let other = Lattice::new([2, 2, 2, 2]);
        let gauge = GaugeField::<f64>::hot(&lat, 19);
        let path = tmp("gauge_shape.lqio");
        write_gauge(&path, &lat, &gauge, BTreeMap::new()).unwrap();
        assert!(matches!(
            read_gauge(&path, &other),
            Err(IoError::ShapeMismatch(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fermion_round_trip_is_exact() {
        let f = FermionField::<f64>::gaussian(128, 3);
        let path = tmp("fermion.lqio");
        write_fermion(&path, &f, BTreeMap::new()).unwrap();
        let back = read_fermion(&path).unwrap();
        assert_eq!(back.data, f.data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn correlator_round_trip_is_exact() {
        let corr: Vec<C64> = (0..16)
            .map(|t| C64::new((t as f64).exp(), -(t as f64)))
            .collect();
        let path = tmp("corr.lqio");
        write_correlator(&path, &corr, BTreeMap::new()).unwrap();
        assert_eq!(read_correlator(&path).unwrap(), corr);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solver_consumes_reread_gauge_identically() {
        // The workflow property that matters: a propagator solved on a
        // round-tripped configuration is bit-identical.
        use lqcd_core::prelude::*;
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 23);
        let path = tmp("gauge_solve.lqio");
        write_gauge(&path, &lat, &gauge, BTreeMap::new()).unwrap();
        let reread = read_gauge(&path, &lat).unwrap();

        let b = point_source(&lat, 0, 0, 0);
        let s1 = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonBicgstab { mass: 0.4 });
        let s2 = PropagatorSolver::new(&lat, &reread, SolverKind::WilsonBicgstab { mass: 0.4 });
        let (q1, _) = s1.solve(&b);
        let (q2, _) = s2.solve(&b);
        assert_eq!(q1.data, q2.data);
        std::fs::remove_file(&path).ok();
    }
}
