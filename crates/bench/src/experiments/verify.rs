//! `repro verify` — run the checkmate concurrency verification pass.
//!
//! ```text
//! repro verify [--check] [--format text|json] [--results DIR]
//!              [--config NAME] [--preemptions N]
//! repro verify --trace FILE
//! ```
//!
//! Exhaustively explores the bounded protocol models in
//! `checkmate::protocols` and checks each against its expectation:
//! the faithful ports (mailbox dedup, NACK/retransmit, two-slot
//! checkpoint rotation, cache get-or-compute single-flight and
//! evict-vs-hit) must verify clean over the full sleep-set-reduced
//! interleaving space, and each seeded-defect twin must produce a
//! violation — that is how CI notices the checker losing its teeth.
//!
//! Without `--check`, the pass rewrites `results/verify.{json,md}` and a
//! replayable `results/traces/<config>.trace` per caught defect. With
//! `--check` it re-explores and fails (exit 1) if any verdict flips or any
//! committed artifact no longer matches byte-for-byte. `--trace FILE`
//! re-executes one serialized schedule and confirms it reproduces the
//! recorded verdict exactly.
//!
//! Exit status mirrors `repro lint`: 0 clean, 1 verification findings or
//! drifted artifacts, 2 usage or I/O errors.

use checkmate::protocols::cache::{CacheSpec, CacheSystem};
use checkmate::protocols::checkpoint::{CheckpointSpec, CheckpointSystem};
use checkmate::protocols::counter::{CounterSpec, CounterSystem};
use checkmate::protocols::mailbox::{MailboxSpec, MailboxSystem};
use checkmate::protocols::retransmit::{RetransmitSpec, RetransmitSystem};
use checkmate::{explore, Exploration, Explorer, Trace, Verdict, Violation};
use obs::json::Json;
use std::path::{Path, PathBuf};

/// One named, bounded model configuration.
struct ConfigRow {
    name: &'static str,
    /// True for seeded-defect twins: the explorer MUST find a violation.
    expect_violation: bool,
    /// One-line description for the report.
    what: &'static str,
}

/// The gated configuration set. Ordering is the report ordering.
const CONFIGS: &[ConfigRow] = &[
    ConfigRow {
        name: "mailbox-exactly-once",
        expect_violation: false,
        what: "2 ranks x 1 dim, duplicating wire: every (side, seq) applied exactly once",
    },
    ConfigRow {
        name: "retransmit-dedup",
        expect_violation: false,
        what: "NACK/retransmit recv loop vs corrupt+drop+dup+reorder wire: \
               intact delivery, no stale apply",
    },
    ConfigRow {
        name: "checkpoint-two-slot",
        expect_violation: false,
        what: "2 writers, torn writes, crash anywhere: restore picks the newest intact slot",
    },
    ConfigRow {
        name: "cache-single-flight",
        expect_violation: false,
        what: "2 getters racing a cold key: exactly one solve, bit-identical responses",
    },
    ConfigRow {
        name: "cache-evict-vs-hit",
        expect_violation: false,
        what: "LRU eviction racing hits on a warm key: never a torn entry, \
               computes bounded by 1 + evictions",
    },
    ConfigRow {
        name: "defect-mailbox-no-dedup",
        expect_violation: true,
        what: "seeded defect: receiver seq gate removed; a duplicated frame must double-apply",
    },
    ConfigRow {
        name: "defect-retransmit-no-dedup",
        expect_violation: true,
        what: "seeded defect: retransmit dedup dropped; a stale frame must reach the solver",
    },
    ConfigRow {
        name: "defect-checkpoint-single-slot",
        expect_violation: true,
        what: "seeded defect: no slot rotation; a torn overwrite must lose the newest commit",
    },
    ConfigRow {
        name: "defect-racy-counter",
        expect_violation: true,
        what: "seeded defect: split load/store increments; an interleaving must lose an update",
    },
    ConfigRow {
        name: "defect-cache-no-claim",
        expect_violation: true,
        what: "seeded defect: miss computes without the in-flight claim; \
               racing misses must double-solve",
    },
    ConfigRow {
        name: "defect-cache-torn-read",
        expect_violation: true,
        what: "seeded defect: hit copies the payload across two locked sections; \
               an eviction between them must tear the response",
    },
];

/// Explore one named configuration. `None` for an unknown name.
fn explore_config(name: &str, explorer: &Explorer) -> Option<Exploration> {
    // Each arm builds fresh systems from the spec; the explorer re-executes
    // from scratch per schedule (stateless CHESS-style search).
    Some(match name {
        "mailbox-exactly-once" => {
            explorer.explore(name, || MailboxSystem::new(MailboxSpec::default()))
        }
        "retransmit-dedup" => {
            explorer.explore(name, || RetransmitSystem::new(RetransmitSpec::default()))
        }
        "checkpoint-two-slot" => {
            explorer.explore(name, || CheckpointSystem::new(CheckpointSpec::default()))
        }
        "defect-mailbox-no-dedup" => explorer.explore(name, || {
            MailboxSystem::new(MailboxSpec {
                skip_dedup: true,
                ..MailboxSpec::default()
            })
        }),
        "defect-retransmit-no-dedup" => explorer.explore(name, || {
            RetransmitSystem::new(RetransmitSpec {
                skip_dedup: true,
                ..RetransmitSpec::default()
            })
        }),
        "defect-checkpoint-single-slot" => explorer.explore(name, || {
            CheckpointSystem::new(CheckpointSpec {
                single_slot: true,
                ..CheckpointSpec::default()
            })
        }),
        "defect-racy-counter" => {
            explorer.explore(name, || CounterSystem::new(CounterSpec::default()))
        }
        "cache-single-flight" => explorer.explore(name, || CacheSystem::new(CacheSpec::default())),
        "cache-evict-vs-hit" => explorer.explore(name, || {
            CacheSystem::new(CacheSpec {
                prepopulate: true,
                evict: true,
                ..CacheSpec::default()
            })
        }),
        "defect-cache-no-claim" => explorer.explore(name, || {
            CacheSystem::new(CacheSpec {
                skip_claim: true,
                ..CacheSpec::default()
            })
        }),
        "defect-cache-torn-read" => explorer.explore(name, || {
            CacheSystem::new(CacheSpec {
                prepopulate: true,
                evict: true,
                torn_read: true,
                ..CacheSpec::default()
            })
        }),
        _ => return None,
    })
}

/// Replay a serialized schedule against a fresh instance of its config.
fn replay_config(name: &str, schedule: &[usize]) -> Option<Result<(), Violation>> {
    Some(match name {
        "mailbox-exactly-once" => {
            explore::replay(&mut MailboxSystem::new(MailboxSpec::default()), schedule)
        }
        "retransmit-dedup" => explore::replay(
            &mut RetransmitSystem::new(RetransmitSpec::default()),
            schedule,
        ),
        "checkpoint-two-slot" => explore::replay(
            &mut CheckpointSystem::new(CheckpointSpec::default()),
            schedule,
        ),
        "defect-mailbox-no-dedup" => explore::replay(
            &mut MailboxSystem::new(MailboxSpec {
                skip_dedup: true,
                ..MailboxSpec::default()
            }),
            schedule,
        ),
        "defect-retransmit-no-dedup" => explore::replay(
            &mut RetransmitSystem::new(RetransmitSpec {
                skip_dedup: true,
                ..RetransmitSpec::default()
            }),
            schedule,
        ),
        "defect-checkpoint-single-slot" => explore::replay(
            &mut CheckpointSystem::new(CheckpointSpec {
                single_slot: true,
                ..CheckpointSpec::default()
            }),
            schedule,
        ),
        "defect-racy-counter" => {
            explore::replay(&mut CounterSystem::new(CounterSpec::default()), schedule)
        }
        "cache-single-flight" => {
            explore::replay(&mut CacheSystem::new(CacheSpec::default()), schedule)
        }
        "cache-evict-vs-hit" => explore::replay(
            &mut CacheSystem::new(CacheSpec {
                prepopulate: true,
                evict: true,
                ..CacheSpec::default()
            }),
            schedule,
        ),
        "defect-cache-no-claim" => explore::replay(
            &mut CacheSystem::new(CacheSpec {
                skip_claim: true,
                ..CacheSpec::default()
            }),
            schedule,
        ),
        "defect-cache-torn-read" => explore::replay(
            &mut CacheSystem::new(CacheSpec {
                prepopulate: true,
                evict: true,
                torn_read: true,
                ..CacheSpec::default()
            }),
            schedule,
        ),
        _ => return None,
    })
}

/// One config's explored outcome plus its pass/fail judgement.
struct Outcome {
    row: &'static ConfigRow,
    exploration: Exploration,
    /// Verdict matches expectation and the space was fully enumerated.
    ok: bool,
    /// Replayable trace for caught defects.
    trace: Option<Trace>,
}

fn judge(row: &'static ConfigRow, exploration: Exploration) -> Outcome {
    let ok = exploration.complete || exploration.violation.is_some();
    let ok = ok && (exploration.violation.is_some() == row.expect_violation);
    let trace = exploration
        .violation
        .as_ref()
        .map(|v| Trace::from_violation(row.name, v));
    Outcome {
        row,
        exploration,
        ok,
        trace,
    }
}

fn verdict_str(o: &Outcome) -> &'static str {
    if o.exploration.violation.is_some() {
        "violation"
    } else if o.exploration.complete {
        "verified"
    } else {
        "incomplete"
    }
}

/// The machine-readable report, key-sorted for bit-stable commits.
fn render_json(outcomes: &[Outcome], explorer: &Explorer) -> String {
    let configs: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            let e = &o.exploration;
            Json::obj(vec![
                ("config", Json::Str(o.row.name.to_string())),
                (
                    "expected",
                    Json::Str(
                        if o.row.expect_violation {
                            "violation"
                        } else {
                            "verified"
                        }
                        .to_string(),
                    ),
                ),
                ("verdict", Json::Str(verdict_str(o).to_string())),
                ("ok", Json::Bool(o.ok)),
                ("complete", Json::Bool(e.complete)),
                ("schedules", Json::Num(e.schedules as f64)),
                ("steps", Json::Num(e.steps as f64)),
                ("max_depth", Json::Num(e.max_depth as f64)),
                (
                    "message",
                    Json::Str(
                        e.violation
                            .as_ref()
                            .map(|v| v.message.clone())
                            .unwrap_or_default(),
                    ),
                ),
                (
                    "trace",
                    match &o.trace {
                        Some(_) => Json::Str(format!("traces/{}.trace", o.row.name)),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    let mut doc = Json::obj(vec![
        ("schema", Json::Str("verify-v1".to_string())),
        ("ok", Json::Bool(outcomes.iter().all(|o| o.ok))),
        (
            "preemption_bound",
            match explorer.preemption_bound {
                Some(b) => Json::Num(b as f64),
                None => Json::Null,
            },
        ),
        ("configs", Json::Arr(configs)),
    ]);
    doc.sort_keys();
    let mut s = doc.to_string_pretty();
    s.push('\n');
    s
}

fn render_markdown(outcomes: &[Outcome]) -> String {
    let mut md = String::from(
        "# Concurrency verification (`repro verify`)\n\n\
         Exhaustive schedule exploration of the bounded protocol models in\n\
         `crates/checkmate` (sleep-set-reduced DFS, no preemption bound).\n\
         `verified` means the full reduced interleaving space was enumerated\n\
         with every property holding; `defect-*` rows are seeded-defect twins\n\
         whose violation proves the checker still has teeth, each with a\n\
         committed replayable trace under `results/traces/`.\n\n\
         | config | expected | verdict | schedules | steps | max depth |\n\
         |---|---|---|---:|---:|---:|\n",
    );
    for o in outcomes {
        let e = &o.exploration;
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            o.row.name,
            if o.row.expect_violation {
                "violation"
            } else {
                "verified"
            },
            verdict_str(o),
            e.schedules,
            e.steps,
            e.max_depth,
        ));
    }
    md.push('\n');
    for o in outcomes {
        md.push_str(&format!("- **{}** — {}\n", o.row.name, o.row.what));
    }
    md
}

fn render_text(outcomes: &[Outcome]) -> String {
    let mut s = String::new();
    for o in outcomes {
        let e = &o.exploration;
        s.push_str(&format!(
            "{:5} {:32} {:10} {:>8} schedules {:>9} steps  depth {}\n",
            if o.ok { "ok" } else { "FAIL" },
            o.row.name,
            verdict_str(o),
            e.schedules,
            e.steps,
            e.max_depth,
        ));
        if let Some(v) = &e.violation {
            s.push_str(&format!("      {}\n", v.message));
        }
    }
    s
}

/// Compare a freshly rendered artifact against the committed copy.
fn check_artifact(path: &Path, fresh: &str, failures: &mut Vec<String>) {
    match std::fs::read_to_string(path) {
        Ok(committed) if committed == fresh => {}
        Ok(_) => failures.push(format!(
            "{} drifted from this build's output (regenerate with `repro verify`)",
            path.display()
        )),
        Err(e) => failures.push(format!("{}: {e}", path.display())),
    }
}

/// Replay one serialized trace file; returns the process exit code.
fn run_trace_replay(path: &Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("verify: reading {}: {e}", path.display());
            return 2;
        }
    };
    let trace = match Trace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("verify: parsing {}: {e}", path.display());
            return 2;
        }
    };
    let Some(result) = replay_config(&trace.config, &trace.schedule) else {
        eprintln!("verify: trace names unknown config {:?}", trace.config);
        return 2;
    };
    // Byte-for-byte reproduction: re-serializing the replayed outcome must
    // recreate the trace exactly (same verdict, message, and schedule).
    let replayed = match &result {
        Ok(()) => Trace {
            config: trace.config.clone(),
            verdict: Verdict::Pass,
            message: String::new(),
            schedule: trace.schedule.clone(),
        },
        Err(v) => Trace::from_violation(&trace.config, v),
    };
    if replayed.render() == trace.render() {
        println!(
            "reproduced: {} on {} ({} steps)",
            match trace.verdict {
                Verdict::Pass => "pass",
                Verdict::Violation => "violation",
            },
            trace.config,
            trace.schedule.len()
        );
        if let Err(v) = &result {
            println!("  {}", v.message);
        }
        0
    } else {
        eprintln!("verify: replay diverged from the recorded trace");
        eprintln!(
            "--- recorded\n{}--- replayed\n{}",
            trace.render(),
            replayed.render()
        );
        1
    }
}

/// Parse `repro verify` arguments and run. Returns the process exit code.
pub fn run_verify(args: &[String]) -> i32 {
    let mut check = false;
    let mut format = "text".to_string();
    let mut results_dir = PathBuf::from("results");
    let mut only: Option<String> = None;
    let mut trace_file: Option<PathBuf> = None;
    let mut explorer = Explorer::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(f @ ("text" | "json")) => format = f.to_string(),
                    _ => {
                        eprintln!("--format needs `text` or `json`");
                        return 2;
                    }
                }
            }
            "--results" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--results needs a directory");
                    return 2;
                };
                results_dir = PathBuf::from(dir);
            }
            "--config" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--config needs a configuration name");
                    return 2;
                };
                only = Some(name.clone());
            }
            "--trace" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--trace needs a file");
                    return 2;
                };
                trace_file = Some(PathBuf::from(file));
            }
            "--preemptions" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => explorer.preemption_bound = Some(n),
                    None => {
                        eprintln!("--preemptions needs an integer");
                        return 2;
                    }
                }
            }
            other => {
                eprintln!("unexpected verify argument: {other}");
                return 2;
            }
        }
        i += 1;
    }

    if let Some(path) = trace_file {
        return run_trace_replay(&path);
    }

    let rows: Vec<&'static ConfigRow> = match &only {
        Some(name) => match CONFIGS.iter().find(|r| r.name == *name) {
            Some(r) => vec![r],
            None => {
                eprintln!(
                    "verify: unknown config {name:?}; known: {}",
                    CONFIGS
                        .iter()
                        .map(|r| r.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return 2;
            }
        },
        None => CONFIGS.iter().collect(),
    };

    let outcomes: Vec<Outcome> = rows
        .iter()
        .map(|row| {
            let exploration =
                explore_config(row.name, &explorer).expect("every registry row has an explore arm");
            judge(row, exploration)
        })
        .collect();

    match format.as_str() {
        "json" => print!("{}", render_json(&outcomes, &explorer)),
        _ => print!("{}", render_text(&outcomes)),
    }
    let all_ok = outcomes.iter().all(|o| o.ok);

    // Artifact handling only applies to full, default-parameter runs; a
    // subset or bounded run would write (or check) partial artifacts.
    let full_run = only.is_none() && explorer.preemption_bound.is_none();
    if !full_run {
        return i32::from(!all_ok);
    }

    let json_path = results_dir.join("verify.json");
    let md_path = results_dir.join("verify.md");
    let fresh_json = render_json(&outcomes, &explorer);
    let fresh_md = render_markdown(&outcomes);

    if check {
        let mut failures: Vec<String> = Vec::new();
        if !all_ok {
            failures.push("one or more configs did not match their expected verdict".into());
        }
        check_artifact(&json_path, &fresh_json, &mut failures);
        check_artifact(&md_path, &fresh_md, &mut failures);
        for o in &outcomes {
            if let Some(t) = &o.trace {
                check_artifact(
                    &results_dir
                        .join("traces")
                        .join(format!("{}.trace", o.row.name)),
                    &t.render(),
                    &mut failures,
                );
            }
        }
        if failures.is_empty() {
            println!("verify --check: all verdicts and committed artifacts match");
            return 0;
        }
        for f in &failures {
            eprintln!("verify: {f}");
        }
        return 1;
    }

    // Default mode: rewrite the committed artifacts.
    let traces_dir = results_dir.join("traces");
    if let Err(e) = std::fs::create_dir_all(&traces_dir) {
        eprintln!("verify: creating {}: {e}", traces_dir.display());
        return 2;
    }
    let writes: Vec<(PathBuf, String)> = [(json_path, fresh_json), (md_path, fresh_md)]
        .into_iter()
        .chain(outcomes.iter().filter_map(|o| {
            o.trace
                .as_ref()
                .map(|t| (traces_dir.join(format!("{}.trace", o.row.name)), t.render()))
        }))
        .collect();
    for (path, content) in writes {
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("verify: writing {}: {e}", path.display());
            return 2;
        }
    }
    i32::from(!all_ok)
}
