//! The execution engine: a persistent work-sharing thread pool.
//!
//! One global pool of `std::thread` workers serves every parallel call in
//! the process. A parallel call ("job") is a function over *chunk indices*
//! `0..n_chunks`; the submitting thread pushes the job onto a shared queue,
//! wakes the workers, and then participates itself. Chunk indices are handed
//! out by a single atomic cursor (`fetch_add`), so each index is executed
//! exactly once, by whichever thread gets to it first — crossbeam-style
//! work sharing without per-thread deques.
//!
//! Determinism contract: the pool decides only *who* runs a chunk and
//! *when*, never *what* the chunks are. Chunk boundaries are chosen by the
//! caller (see `crate::iter` and the `*_chunk` entry points) from input
//! length alone, and reductions combine per-chunk partials in index order
//! on the submitting thread. Results are therefore bit-identical at any
//! pool width, including the inline sequential path used for single-chunk
//! jobs and nested calls.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Race-detector tap (`race-detect` feature): the pool's happens-before
/// edges, mirrored into `checkmate::race` vector clocks. The caller
/// releases a per-job *publish* key before queueing (workers acquire it
/// before touching the closure), every chunk releases a per-job *join* key
/// the caller acquires after the done-wait (ordering chunk writes before
/// result reads), and each chunk marks a per-(job, chunk) location so a
/// broken exactly-once contract surfaces as a write-write race.
#[cfg(feature = "race-detect")]
mod race_tap {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique id per pooled job, never reused for the process lifetime.
    pub fn next_job_id() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::SeqCst)
    }

    pub fn pub_key(job: u64) -> u64 {
        checkmate::race::keyed("rayon.job.pub", job)
    }

    pub fn join_key(job: u64) -> u64 {
        checkmate::race::keyed("rayon.job.join", job)
    }

    pub fn chunk_key(job: u64, chunk: usize) -> u64 {
        checkmate::race::keyed("rayon.chunk", (job << 32) | chunk as u64)
    }
}

/// Snapshot of cumulative pool activity, for observability exports.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Configured pool width (what [`crate::current_num_threads`] reports
    /// outside any [`crate::ThreadPool::install`] scope).
    pub threads: usize,
    /// Worker threads actually spawned so far (lazy, grows on demand).
    pub workers_spawned: usize,
    /// Jobs executed through the shared queue.
    pub jobs: u64,
    /// Jobs that ran inline on the calling thread (single chunk, width 1,
    /// or nested inside another parallel chunk).
    pub sequential_jobs: u64,
    /// Chunks executed, across all threads.
    pub chunks: u64,
    /// Chunks executed by a pool worker rather than the submitting thread.
    pub stolen_chunks: u64,
    /// Busy nanoseconds accumulated by submitting threads inside chunks.
    pub caller_busy_ns: u64,
    /// Busy nanoseconds per spawned worker.
    pub worker_busy_ns: Vec<u64>,
}

/// Type-erased chunk function. The pointer is only dereferenced while the
/// submitting thread is blocked in [`run`], which keeps the borrow alive.
struct FuncPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (callable from any thread through a shared
// reference) and outlives every worker access — `run` blocks the submitting
// thread until all chunks finish, keeping the borrow alive.
unsafe impl Send for FuncPtr {}
// SAFETY: same argument; sharing `&FuncPtr` across workers only ever yields
// `&dyn Fn`, which the `Sync` bound on the pointee makes safe.
unsafe impl Sync for FuncPtr {}

struct Job {
    func: FuncPtr,
    n_chunks: usize,
    /// Next chunk index to hand out.
    cursor: AtomicUsize,
    /// Chunks whose function call has returned.
    completed: AtomicUsize,
    /// Worker participation slots: effective width minus the caller. A
    /// worker must claim a slot before touching the job, so an
    /// `install(k)` scope never fans out wider than `k` threads.
    worker_slots: AtomicI64,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Race-detector job id (see [`race_tap`]).
    #[cfg(feature = "race-detect")]
    race_id: u64,
}

impl Job {
    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) >= self.n_chunks
    }

    fn try_claim_slot(&self) -> bool {
        if self.worker_slots.fetch_sub(1, Ordering::AcqRel) > 0 {
            true
        } else {
            self.worker_slots.fetch_add(1, Ordering::AcqRel);
            false
        }
    }
}

struct Shared {
    /// Configured width (threads the pool presents, caller included).
    width: usize,
    /// FIFO of live jobs; exhausted jobs are pruned by workers.
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
    /// Workers spawned so far; grown under `spawn_lock` up to demand.
    workers_spawned: AtomicUsize,
    spawn_lock: Mutex<()>,
    jobs: AtomicU64,
    sequential_jobs: AtomicU64,
    chunks: AtomicU64,
    stolen_chunks: AtomicU64,
    caller_busy_ns: AtomicU64,
    worker_busy_ns: Mutex<Vec<Arc<AtomicU64>>>,
}

static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();
/// Width requested by `ThreadPoolBuilder::build_global` before first use.
static CONFIGURED_WIDTH: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while this thread is executing a chunk: nested parallel calls
    /// run inline instead of deadlocking or oversubscribing.
    static IN_CHUNK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Width cap installed by `ThreadPool::install` on this thread.
    static WIDTH_CAP: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

fn default_width() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    let configured = CONFIGURED_WIDTH.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn shared() -> &'static Arc<Shared> {
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            width: default_width(),
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            workers_spawned: AtomicUsize::new(0),
            spawn_lock: Mutex::new(()),
            jobs: AtomicU64::new(0),
            sequential_jobs: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            stolen_chunks: AtomicU64::new(0),
            caller_busy_ns: AtomicU64::new(0),
            worker_busy_ns: Mutex::new(Vec::new()),
        })
    })
}

/// The pool's configured width (ignores any `install` cap).
pub(crate) fn base_width() -> usize {
    shared().width
}

/// Width in effect on this thread: an `install` cap if one is active,
/// otherwise the pool's configured width.
pub(crate) fn effective_width() -> usize {
    WIDTH_CAP
        .with(|c| c.get())
        .unwrap_or_else(base_width)
        .max(1)
}

/// Record the width requested by `ThreadPoolBuilder::build_global`.
/// Fails once the global pool has initialized with a different width.
pub(crate) fn configure_global(width: usize) -> Result<(), usize> {
    CONFIGURED_WIDTH.store(width, Ordering::Relaxed);
    match SHARED.get() {
        Some(s) if s.width != width => Err(s.width),
        _ => Ok(()),
    }
}

/// Run `op` with this thread's width cap set to `width`.
pub(crate) fn with_width_cap<R>(width: usize, op: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WIDTH_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(WIDTH_CAP.with(|c| c.replace(Some(width.max(1)))));
    op()
}

/// Ensure at least `n` workers exist (the caller provides one more thread).
fn ensure_workers(sh: &'static Arc<Shared>, n: usize) {
    if sh.workers_spawned.load(Ordering::Acquire) >= n {
        return;
    }
    let _g = sh.spawn_lock.lock().unwrap();
    let mut spawned = sh.workers_spawned.load(Ordering::Acquire);
    while spawned < n {
        let busy = Arc::new(AtomicU64::new(0));
        sh.worker_busy_ns.lock().unwrap().push(busy.clone());
        let shc = Arc::clone(sh);
        std::thread::Builder::new()
            .name(format!("rayon-worker-{spawned}"))
            .spawn(move || worker_loop(shc, busy))
            .expect("spawn rayon worker");
        spawned += 1;
    }
    sh.workers_spawned.store(spawned, Ordering::Release);
}

fn worker_loop(sh: Arc<Shared>, busy: Arc<AtomicU64>) {
    loop {
        let job: Arc<Job> = {
            let mut q = sh.queue.lock().unwrap();
            loop {
                q.retain(|j| !j.exhausted());
                if let Some(j) = q.iter().find(|j| j.try_claim_slot()) {
                    break Arc::clone(j);
                }
                q = sh.work_cv.wait(q).unwrap();
            }
        };
        work_on(&job, &sh, Some(&busy));
    }
}

/// Pull chunk indices off `job`'s cursor and execute them until exhausted.
fn work_on(job: &Job, sh: &Shared, worker_busy: Option<&AtomicU64>) {
    loop {
        let i = job.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_chunks {
            return;
        }
        let t0 = Instant::now();
        IN_CHUNK.with(|c| c.set(true));
        // SAFETY: the submitting thread constructed this pointer from a live
        // `&(dyn Fn(usize) + Sync)` and is blocked in `run` until the job's
        // `remaining` count drains, so the pointee is valid for this borrow.
        let func = unsafe { &*job.func.0 };
        // Everything the tap records stays inside catch_unwind: a
        // panic-on-race report must unwind into the job's panic channel,
        // not kill the worker thread.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            #[cfg(feature = "race-detect")]
            {
                checkmate::race::acquire(race_tap::pub_key(job.race_id));
                checkmate::race::on_write(race_tap::chunk_key(job.race_id, i));
            }
            func(i);
            #[cfg(feature = "race-detect")]
            checkmate::race::release(race_tap::join_key(job.race_id));
        }));
        IN_CHUNK.with(|c| c.set(false));
        let ns = t0.elapsed().as_nanos() as u64;
        if result.is_err() {
            job.panicked.store(true, Ordering::Release);
        }
        sh.chunks.fetch_add(1, Ordering::Relaxed);
        match worker_busy {
            Some(b) => {
                sh.stolen_chunks.fetch_add(1, Ordering::Relaxed);
                b.fetch_add(ns, Ordering::Relaxed);
            }
            None => {
                sh.caller_busy_ns.fetch_add(ns, Ordering::Relaxed);
            }
        }
        if job.completed.fetch_add(1, Ordering::AcqRel) + 1 == job.n_chunks {
            let mut d = job.done.lock().unwrap();
            *d = true;
            job.done_cv.notify_all();
        }
    }
}

/// Execute `f(0), f(1), ..., f(n_chunks - 1)`, each exactly once, across
/// the pool; returns when every call has completed. The distribution of
/// chunks over threads is racy, but since `f` receives only the chunk
/// index, results cannot depend on it.
pub(crate) fn run(n_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    let width = effective_width();
    let nested = IN_CHUNK.with(|c| c.get());
    if n_chunks == 1 || width <= 1 || nested {
        // Inline path: same chunk structure, executed in index order on
        // this thread — bit-identical to the pooled path by construction.
        let sh = shared();
        sh.sequential_jobs.fetch_add(1, Ordering::Relaxed);
        sh.chunks.fetch_add(n_chunks as u64, Ordering::Relaxed);
        for i in 0..n_chunks {
            f(i);
        }
        return;
    }

    let sh = shared();
    ensure_workers(sh, (width - 1).min(n_chunks - 1));
    sh.jobs.fetch_add(1, Ordering::Relaxed);
    // SAFETY: erase the borrow's lifetime. The pointer is dereferenced
    // only by threads executing this job's chunks, and this function does
    // not return until all chunks have completed (`done_cv` wait below),
    // so the borrow outlives every dereference.
    let func = FuncPtr(unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync + 'static)>(f)
    });
    // Publish edge: the caller's writes (the captured closure state) must
    // be ordered before any worker's first chunk.
    #[cfg(feature = "race-detect")]
    let race_id = {
        let id = race_tap::next_job_id();
        checkmate::race::release(race_tap::pub_key(id));
        id
    };
    let job = Arc::new(Job {
        func,
        n_chunks,
        cursor: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        worker_slots: AtomicI64::new(width as i64 - 1),
        panicked: AtomicBool::new(false),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
        #[cfg(feature = "race-detect")]
        race_id,
    });
    sh.queue.lock().unwrap().push_back(Arc::clone(&job));
    sh.work_cv.notify_all();

    // The caller is a full participant in its own job.
    work_on(&job, sh, None);

    // Wait for any chunks still running on workers.
    let mut d = job.done.lock().unwrap();
    while !*d {
        d = job.done_cv.wait(d).unwrap();
    }
    drop(d);
    // Join edge: every chunk's writes are ordered before the caller reads
    // the results.
    #[cfg(feature = "race-detect")]
    checkmate::race::acquire(race_tap::join_key(job.race_id));
    if job.panicked.load(Ordering::Acquire) {
        panic!("rayon: a parallel chunk panicked");
    }
}

/// Cumulative activity counters of the global pool.
pub fn stats() -> PoolStats {
    let sh = shared();
    PoolStats {
        threads: sh.width,
        workers_spawned: sh.workers_spawned.load(Ordering::Acquire),
        jobs: sh.jobs.load(Ordering::Relaxed),
        sequential_jobs: sh.sequential_jobs.load(Ordering::Relaxed),
        chunks: sh.chunks.load(Ordering::Relaxed),
        stolen_chunks: sh.stolen_chunks.load(Ordering::Relaxed),
        caller_busy_ns: sh.caller_busy_ns.load(Ordering::Relaxed),
        worker_busy_ns: sh
            .worker_busy_ns
            .lock()
            .unwrap()
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect(),
    }
}
