//! Model of `Mailboxes` send/recv with dedup-by-seq.
//!
//! Mirrors `crates/core/src/comms/transport.rs`: each rank owns one mailbox
//! per (neighbor direction) side, frames carry a monotone per-box sequence
//! number, and the receiver accepts a frame only when its seq matches the
//! next expected value, dropping stale (duplicate) seqs on the floor. A
//! duplicating-wire adversary re-delivers a parked frame, standing in for
//! the duplicate-delivery fault the `FaultyTransport` wire injector
//! produces.
//!
//! The modeled configuration is the issue's bounded one — 2 ranks × 1 dim —
//! with `applies` exchanges per box. Properties:
//!
//! - every (box, seq) payload is applied at most once, bit-correct
//!   (checked after every step), and
//! - exactly once by the time all tasks finish (final check).
//!
//! The `skip_dedup` switch removes the seq gate — the real bug class the
//! dedup exists for — and must yield a violating schedule.

use crate::explore::{Footprint, System};
use crate::model::ChanM;

const SIDES: usize = 2;

#[derive(Debug, Clone)]
struct FrameM {
    seq: u64,
    src: usize,
    payload: u64,
}

/// Deterministic payload tag, standing in for the frame checksum: lets the
/// checker catch cross-box or cross-seq mixups bit-exactly.
fn payload(src: usize, side: usize, seq: u64) -> u64 {
    crate::fnv1a_64(&[src as u8, side as u8, seq as u8])
}

/// Bounded mailbox configuration (2 ranks × 1 dim).
#[derive(Debug, Clone)]
pub struct MailboxSpec {
    /// Exchanges per (rank, side) box.
    pub applies: u64,
    /// Add a duplicating-wire adversary (budget 1).
    pub wire_dup: bool,
    /// Seeded defect: receivers accept frames without the seq gate.
    pub skip_dedup: bool,
}

impl Default for MailboxSpec {
    fn default() -> Self {
        Self {
            applies: 2,
            wire_dup: true,
            skip_dedup: false,
        }
    }
}

/// Per-receiver-side progress.
#[derive(Debug, Clone, Default)]
struct BoxState {
    expect: u64,
    /// Count of applies per seq (the exactly-once ledger).
    applied: Vec<u64>,
}

/// Task layout: 0,1 senders; 2,3 receivers; 4 (optional) duplicator.
pub struct MailboxSystem {
    spec: MailboxSpec,
    /// `boxes[rank][side]`: frames awaiting rank's receiver.
    boxes: [[ChanM<FrameM>; SIDES]; 2],
    /// Sender program counters: next (side, seq) flattened.
    send_pc: [u64; 2],
    rx: [[BoxState; SIDES]; 2],
    dup_budget: u64,
    /// Set when a receiver observes a protocol impossibility (e.g. a seq
    /// from the future); surfaced through `check`.
    protocol_error: Option<String>,
}

impl MailboxSystem {
    pub fn new(spec: MailboxSpec) -> Self {
        let chan = |rank: usize, side: usize| ChanM::new(&format!("box.r{rank}.s{side}"));
        Self {
            dup_budget: u64::from(spec.wire_dup),
            boxes: [[chan(0, 0), chan(0, 1)], [chan(1, 0), chan(1, 1)]],
            send_pc: [0, 0],
            rx: [
                [BoxState::default(), BoxState::default()],
                [BoxState::default(), BoxState::default()],
            ],
            protocol_error: None,
            spec,
        }
    }

    fn sends_total(&self) -> u64 {
        self.spec.applies * SIDES as u64
    }

    fn receivers_done(&self) -> bool {
        (0..2).all(|r| self.receiver_done(r))
    }

    fn receiver_done(&self, rank: usize) -> bool {
        self.rx[rank].iter().all(|b| b.expect >= self.spec.applies)
    }

    /// First nonempty box of `rank`, the deterministic poll order the
    /// receiver uses.
    fn rx_pick(&self, rank: usize) -> Option<usize> {
        (0..SIDES).find(|&s| !self.boxes[rank][s].is_empty())
    }

    /// First nonempty box overall, the duplicator's deterministic target.
    fn dup_pick(&self) -> Option<(usize, usize)> {
        (0..2)
            .flat_map(|r| (0..SIDES).map(move |s| (r, s)))
            .find(|&(r, s)| !self.boxes[r][s].is_empty())
    }
}

impl System for MailboxSystem {
    fn n_tasks(&self) -> usize {
        4 + usize::from(self.spec.wire_dup)
    }

    fn task_name(&self, task: usize) -> String {
        match task {
            0 | 1 => format!("sender{task}"),
            2 | 3 => format!("receiver{}", task - 2),
            _ => "dup-wire".into(),
        }
    }

    fn done(&self, task: usize) -> bool {
        match task {
            0 | 1 => self.send_pc[task] >= self.sends_total(),
            2 | 3 => self.receiver_done(task - 2),
            _ => self.dup_budget == 0 || self.receivers_done(),
        }
    }

    fn enabled(&self, task: usize) -> bool {
        match task {
            0 | 1 => !self.done(task),
            2 | 3 => self.rx_pick(task - 2).is_some(),
            _ => self.dup_pick().is_some(),
        }
    }

    fn peek(&self, task: usize) -> Footprint {
        match task {
            0 | 1 => {
                let pc = self.send_pc[task];
                let side = (pc % SIDES as u64) as usize;
                Footprint::new().write(self.boxes[1 - task][side].id())
            }
            2 | 3 => {
                let rank = task - 2;
                // Reads both boxes (the poll), writes the one it pops.
                let mut fp = Footprint::new()
                    .read(self.boxes[rank][0].id())
                    .read(self.boxes[rank][1].id());
                if let Some(side) = self.rx_pick(rank) {
                    fp = fp.write(self.boxes[rank][side].id());
                }
                fp
            }
            _ => {
                // Polls every box, mutates the first nonempty one.
                let mut fp = Footprint::new();
                for r in 0..2 {
                    for s in 0..SIDES {
                        fp = fp.read(self.boxes[r][s].id());
                    }
                }
                if let Some((r, s)) = self.dup_pick() {
                    fp = fp.write(self.boxes[r][s].id());
                }
                fp
            }
        }
    }

    fn step(&mut self, task: usize) {
        match task {
            0 | 1 => {
                let pc = self.send_pc[task];
                let side = (pc % SIDES as u64) as usize;
                let seq = pc / SIDES as u64;
                self.boxes[1 - task][side].send(FrameM {
                    seq,
                    src: task,
                    payload: payload(task, side, seq),
                });
                self.send_pc[task] += 1;
            }
            2 | 3 => {
                let rank = task - 2;
                let Some(side) = self.rx_pick(rank) else {
                    return;
                };
                let Some(frame) = self.boxes[rank][side].try_recv() else {
                    return;
                };
                let state = &mut self.rx[rank][side];
                let accept = if self.spec.skip_dedup {
                    // Seeded defect: the seq gate is gone; anything present
                    // gets applied.
                    true
                } else {
                    frame.seq == state.expect
                };
                if !accept {
                    // Stale duplicate: dropped on the floor, like the real
                    // `duplicates_dropped` path.
                    return;
                }
                if frame.seq > state.expect {
                    self.protocol_error = Some(format!(
                        "receiver{rank} saw future seq {} (expect {})",
                        frame.seq, state.expect
                    ));
                    return;
                }
                if frame.payload != payload(frame.src, side, frame.seq) {
                    self.protocol_error = Some(format!(
                        "receiver{rank} applied a corrupted payload for seq {}",
                        frame.seq
                    ));
                    return;
                }
                let idx = frame.seq as usize;
                if state.applied.len() <= idx {
                    state.applied.resize(idx + 1, 0);
                }
                state.applied[idx] += 1;
                if frame.seq == state.expect {
                    state.expect += 1;
                }
            }
            _ => {
                if let Some((r, s)) = self.dup_pick() {
                    self.boxes[r][s].duplicate_front();
                    self.dup_budget -= 1;
                }
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        if let Some(err) = &self.protocol_error {
            return Err(err.clone());
        }
        for rank in 0..2 {
            for side in 0..SIDES {
                for (seq, &n) in self.rx[rank][side].applied.iter().enumerate() {
                    if n > 1 {
                        return Err(format!(
                            "box (rank {rank}, side {side}) applied seq {seq} {n} times"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        self.check()?;
        for rank in 0..2 {
            for side in 0..SIDES {
                let state = &self.rx[rank][side];
                for seq in 0..self.spec.applies {
                    let n = state.applied.get(seq as usize).copied().unwrap_or(0);
                    if n != 1 {
                        return Err(format!(
                            "box (rank {rank}, side {side}) applied seq {seq} {n} times (want 1)"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer};

    #[test]
    fn dedup_makes_delivery_exactly_once_under_duplication() {
        let run =
            Explorer::default().explore("mailbox", || MailboxSystem::new(MailboxSpec::default()));
        assert!(
            run.verified(),
            "exhaustive pass expected, got {:?}",
            run.violation
        );
        assert!(run.schedules > 100, "space should be non-trivial");
    }

    #[test]
    fn dropped_dedup_check_is_caught_and_replayable() {
        let spec = MailboxSpec {
            skip_dedup: true,
            ..MailboxSpec::default()
        };
        let run =
            Explorer::default().explore("mailbox-defect", || MailboxSystem::new(spec.clone()));
        let v = run.violation.expect("skip_dedup must violate exactly-once");
        assert!(v.message.contains("times"), "{}", v.message);
        let mut sys = MailboxSystem::new(spec);
        let replayed = replay(&mut sys, &v.schedule).expect_err("replay must reproduce");
        assert_eq!(replayed.message, v.message);
    }

    #[test]
    fn no_adversary_passes_trivially() {
        let run = Explorer::default().explore("mailbox-clean", || {
            MailboxSystem::new(MailboxSpec {
                wire_dup: false,
                ..MailboxSpec::default()
            })
        });
        assert!(run.verified());
    }
}
