//! Serialized schedule traces.
//!
//! A trace pins one exploration outcome to a replayable artifact: the
//! config name selects the protocol adapter (and any seeded defect), the
//! schedule is the exact decision list, and the verdict/message record what
//! that schedule demonstrated. The format is line-oriented text so traces
//! diff cleanly in review and survive being committed under `results/`.
//!
//! Round-trip stability is load-bearing: `repro verify --trace FILE` must
//! reproduce the identical verdict byte-for-byte, and a proptest in
//! `tests/trace_roundtrip.rs` holds `parse(render(t)) == t` and
//! `render(parse(s)) == s` for every trace the explorer can emit.

use crate::explore::Violation;

const HEADER: &str = "checkmate-trace v1";

/// What the traced schedule demonstrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The schedule runs to completion with every property holding.
    Pass,
    /// The schedule reproduces a property violation or deadlock.
    Violation,
}

impl Verdict {
    fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Violation => "violation",
        }
    }
}

/// A serialized schedule: everything needed to re-execute one interleaving
/// of one named configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Configuration name; `repro verify` maps it back to an adapter.
    pub config: String,
    pub verdict: Verdict,
    /// Violation (or divergence) message; empty for a passing trace.
    pub message: String,
    /// Task index chosen at each step.
    pub schedule: Vec<usize>,
}

impl Trace {
    /// Build the trace for a violating schedule.
    pub fn from_violation(config: &str, v: &Violation) -> Self {
        Self {
            config: config.to_string(),
            verdict: Verdict::Violation,
            // Newlines would break the line-oriented format; messages are
            // single-line by construction, but normalize defensively.
            message: v.message.replace('\n', " "),
            schedule: v.schedule.clone(),
        }
    }

    /// Render to the committed text format (exactly one trailing newline).
    pub fn render(&self) -> String {
        let schedule: Vec<String> = self.schedule.iter().map(|t| t.to_string()).collect();
        format!(
            "{HEADER}\nconfig: {}\nverdict: {}\nmessage: {}\nschedule: {}\n",
            self.config,
            self.verdict.as_str(),
            self.message.replace('\n', " "),
            schedule.join(" ")
        )
    }

    /// Parse the text format; errors name the offending line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == HEADER => {}
            other => return Err(format!("bad trace header: {other:?} (want {HEADER:?})")),
        }
        let mut field = |name: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("missing {name} line"))?;
            line.strip_prefix(&format!("{name}: "))
                .or_else(|| line.strip_prefix(&format!("{name}:")))
                .map(str::to_string)
                .ok_or_else(|| format!("expected {name} line, got {line:?}"))
        };
        let config = field("config")?;
        let verdict = match field("verdict")?.as_str() {
            "pass" => Verdict::Pass,
            "violation" => Verdict::Violation,
            other => return Err(format!("bad verdict {other:?}")),
        };
        let message = field("message")?;
        let schedule_text = field("schedule")?;
        let mut schedule = Vec::new();
        for tok in schedule_text.split_whitespace() {
            let idx: usize = tok
                .parse()
                .map_err(|_| format!("bad schedule index {tok:?}"))?;
            schedule.push(idx);
        }
        Ok(Self {
            config,
            verdict,
            message,
            schedule,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let t = Trace {
            config: "retransmit-dedup".into(),
            verdict: Verdict::Violation,
            message: "property failed after a step of receiver: stale frame accepted".into(),
            schedule: vec![0, 0, 3, 1, 1, 2],
        };
        let text = t.render();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.render(), text, "re-render must be byte-identical");
    }

    #[test]
    fn empty_schedule_and_message_round_trip() {
        let t = Trace {
            config: "c".into(),
            verdict: Verdict::Pass,
            message: String::new(),
            schedule: vec![],
        };
        let back = Trace::parse(&t.render()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("checkmate-trace v0\nconfig: x\n").is_err());
        let bad_idx = "checkmate-trace v1\nconfig: c\nverdict: pass\nmessage: \nschedule: 1 x\n";
        assert!(Trace::parse(bad_idx).is_err());
        let bad_verdict = "checkmate-trace v1\nconfig: c\nverdict: maybe\nmessage: \nschedule:\n";
        assert!(Trace::parse(bad_verdict).is_err());
    }
}
