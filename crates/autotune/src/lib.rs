//! QUDA-style run-time autotuner.
//!
//! The paper's solver library (QUDA) maximizes performance with a run-time
//! autotuner: the first time an un-tuned kernel is encountered, a brute-force
//! search through its launch-parameter space is performed; the optimum is then
//! stored in a map keyed by a unique identifier and looked up on demand ever
//! after. The same machinery was extended in the paper to *communication
//! policy* tuning — choosing how halo exchanges are staged for a given problem
//! size, node count, and machine.
//!
//! This crate reproduces that architecture:
//!
//! - [`TuneKey`] — unique identifier of a (kernel, problem, configuration).
//! - [`Tunable`] — implemented by anything that can enumerate candidate
//!   parameters and time itself under one candidate.
//! - [`Tuner`] — the cache. On a miss it sweeps all candidates (several
//!   repetitions each, best-of policy), stores the winner plus performance
//!   metadata, and can persist/restore the cache as JSON, mirroring QUDA's
//!   `tunecache.tsv`.
//!
//! The tuner is thread-safe ([`parking_lot::RwLock`] around the map) so that
//! parallel solver instances share one cache, as QUDA does per process.

mod key;
mod param;
mod tunable;
mod tuner;

pub use key::TuneKey;
pub use param::{ParamSpace, TuneParam};
pub use tunable::{TimingHarness, Tunable};
pub use tuner::{TuneEntry, Tuner, TunerStats};

#[cfg(test)]
mod tests;
