//! The 4D Wilson Dirac operator and its red–black (even–odd) preconditioned
//! Schur complement.
//!
//! `D ψ(x) = (4 + m) ψ(x) − ½ H ψ(x)` with `H` the hopping term. Because the
//! mass term is site-diagonal, the even–even block inverts trivially and the
//! odd-checkerboard Schur complement is
//!
//! `M̂ = (4+m) − ¼/(4+m) · H_oe H_eo`,
//!
//! which halves the solve's vector length and improves conditioning — the
//! same red–black trick the paper's Möbius solver uses (where the diagonal
//! block is the 5th-dimension structure, see [`super::mobius`]).

use super::hopping::{HoppingKernel, HOPPING_FLOPS_PER_SITE};
use super::{BlockDiracOp, BlockLinearOp, DiracOp, DslashVariant, LinearOp};
use crate::field::GaugeLinks;
use crate::lattice::{Lattice, Parity};
use crate::layout::{hop_full_soa, SoaGaugeField, SoaSpinorField};
use crate::real::Real;
use crate::simd::LANES;
use crate::spinor::Spinor;
use parking_lot::Mutex;
use rayon::prelude::*;

/// Lazily built SoA mirrors of the gauge field plus I/O staging buffers for
/// the [`DslashVariant::Soa`] path.
struct SoaCache<R> {
    gauge: SoaGaugeField<R>,
    inp: SoaSpinorField<R>,
    out: SoaSpinorField<R>,
}

/// The full-lattice Wilson operator.
pub struct WilsonDirac<'a, R: Real, G: GaugeLinks<R>> {
    hopping: HoppingKernel<'a, R, G>,
    lattice: &'a Lattice,
    mass: f64,
    /// Parallel chunk size for the stencil, set by the autotuner.
    pub grain: usize,
    /// Execution strategy of `apply`; all variants are bit-identical.
    pub variant: DslashVariant,
    soa: Mutex<Option<SoaCache<R>>>,
}

impl<'a, R: Real, G: GaugeLinks<R>> WilsonDirac<'a, R, G> {
    /// Bind the operator to a gauge field with bare mass `mass` and
    /// antiperiodic temporal boundary conditions if `antiperiodic_t`.
    pub fn new(lattice: &'a Lattice, gauge: &'a G, mass: f64, antiperiodic_t: bool) -> Self {
        Self {
            hopping: HoppingKernel::new(lattice, gauge, antiperiodic_t),
            lattice,
            mass,
            grain: 1024,
            variant: DslashVariant::AosFused,
            soa: Mutex::new(None),
        }
    }

    /// The bare quark mass.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// The lattice.
    pub fn lattice(&self) -> &Lattice {
        self.lattice
    }

    /// Access to the underlying hopping kernel.
    pub fn hopping(&self) -> &HoppingKernel<'a, R, G> {
        &self.hopping
    }

    /// Variants executable on this geometry (the SoA path needs whole lane
    /// blocks per x-line).
    pub fn supported_variants(&self) -> Vec<DslashVariant> {
        let mut v = vec![DslashVariant::AosScalar, DslashVariant::AosFused];
        if self.lattice.dims()[0].is_multiple_of(LANES) {
            v.push(DslashVariant::Soa);
        }
        v
    }

    /// The SoA execution path: transpose in, lane-parallel fused stencil,
    /// transpose out. The gauge transpose is built once and cached; the
    /// staging conversions are part of what the autotuner times, so this
    /// variant only wins when the lane arithmetic pays for them.
    fn apply_soa(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let diag = R::from_f64(4.0 + self.mass);
        let half = R::from_f64(0.5);
        let mut guard = self.soa.lock();
        let cache = guard.get_or_insert_with(|| SoaCache {
            gauge: SoaGaugeField::from_links(self.hopping.gauge()),
            inp: SoaSpinorField::zeros(self.lattice.volume()),
            out: SoaSpinorField::zeros(self.lattice.volume()),
        });
        cache.inp.fill_from_aos(inp);
        let SoaCache {
            gauge,
            inp: sinp,
            out: sout,
        } = &mut *cache;
        hop_full_soa(
            self.lattice,
            gauge,
            sout,
            sinp,
            self.hopping.antiperiodic_t(),
            self.grain,
            Some((diag, half)),
        );
        sout.store_to_aos(out);
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> LinearOp<R> for WilsonDirac<'a, R, G> {
    fn vec_len(&self) -> usize {
        self.lattice.volume()
    }

    fn apply(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let diag = R::from_f64(4.0 + self.mass);
        let half = R::from_f64(0.5);
        match self.variant {
            DslashVariant::AosScalar => {
                self.hopping.apply_full(out, inp, self.grain);
                out.par_iter_mut().zip(inp.par_iter()).for_each(|(o, i)| {
                    *o = i.scale(diag) - o.scale(half);
                });
            }
            // Same per-site value chain (`i·a − h·b` with `h` the hop) fused
            // into the stencil's single output write: bit-identical.
            DslashVariant::AosFused => {
                self.hopping
                    .apply_full_fused_5d(out, inp, 1, self.grain, &|_, x, h| {
                        inp[x].scale(diag) - h.scale(half)
                    });
            }
            DslashVariant::Soa => self.apply_soa(out, inp),
        }
    }

    fn flops_per_apply(&self) -> f64 {
        // Hopping + diagonal axpy-like update (4 real ops per component).
        self.lattice.volume() as f64 * (HOPPING_FLOPS_PER_SITE + 96.0)
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> DiracOp<R> for WilsonDirac<'a, R, G> {
    fn apply_dagger(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        // γ5-hermiticity: D† = γ5 D γ5.
        let g5in: Vec<Spinor<R>> = inp.par_iter().map(|s| s.apply_gamma5()).collect();
        self.apply(out, &g5in);
        out.par_iter_mut().for_each(|s| *s = s.apply_gamma5());
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> BlockLinearOp<R> for WilsonDirac<'a, R, G> {
    fn apply_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize) {
        self.hopping.apply_full_block(out, inp, nrhs, self.grain);
        let diag = R::from_f64(4.0 + self.mass);
        let half = R::from_f64(0.5);
        out.par_iter_mut().zip(inp.par_iter()).for_each(|(o, i)| {
            *o = i.scale(diag) - o.scale(half);
        });
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> BlockDiracOp<R> for WilsonDirac<'a, R, G> {
    fn apply_dagger_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize) {
        let g5in: Vec<Spinor<R>> = inp.par_iter().map(|s| s.apply_gamma5()).collect();
        self.apply_block(out, &g5in, nrhs);
        out.par_iter_mut().for_each(|s| *s = s.apply_gamma5());
    }
}

/// Even–odd preconditioned Wilson operator acting on the odd checkerboard.
pub struct PrecWilson<'a, R: Real, G: GaugeLinks<R>> {
    hopping: HoppingKernel<'a, R, G>,
    lattice: &'a Lattice,
    mass: f64,
    /// Parallel chunk size for the stencil, set by the autotuner.
    pub grain: usize,
    /// Execution strategy of `apply`; all variants are bit-identical.
    pub variant: DslashVariant,
    /// Reused half-volume intermediate for the fused path (behind a lock so
    /// `apply` keeps its `&self` solver interface).
    scratch: Mutex<Vec<Spinor<R>>>,
}

impl<'a, R: Real, G: GaugeLinks<R>> PrecWilson<'a, R, G> {
    /// Bind the preconditioned operator.
    pub fn new(lattice: &'a Lattice, gauge: &'a G, mass: f64, antiperiodic_t: bool) -> Self {
        Self {
            hopping: HoppingKernel::new(lattice, gauge, antiperiodic_t),
            lattice,
            mass,
            grain: 1024,
            variant: DslashVariant::AosFused,
            scratch: Mutex::new(Vec::new()),
        }
    }

    fn diag(&self) -> f64 {
        4.0 + self.mass
    }

    /// The bound 4D hopping kernel.
    pub fn hopping(&self) -> &HoppingKernel<'a, R, G> {
        &self.hopping
    }

    /// Variants executable on this geometry (the checkerboarded stencil has
    /// no SoA path — parity splits the x-lines to stride 2).
    pub fn supported_variants(&self) -> Vec<DslashVariant> {
        vec![DslashVariant::AosScalar, DslashVariant::AosFused]
    }

    /// The lattice.
    pub fn lattice(&self) -> &Lattice {
        self.lattice
    }

    /// Split a full-volume vector into (even, odd) checkerboards.
    pub fn split(&self, full: &[Spinor<R>]) -> (Vec<Spinor<R>>, Vec<Spinor<R>>) {
        let hv = self.lattice.half_volume();
        let mut even = vec![Spinor::zero(); hv];
        let mut odd = vec![Spinor::zero(); hv];
        for x in 0..self.lattice.volume() {
            match self.lattice.parity(x) {
                Parity::Even => even[self.lattice.cb_index(x)] = full[x],
                Parity::Odd => odd[self.lattice.cb_index(x)] = full[x],
            }
        }
        (even, odd)
    }

    /// Merge (even, odd) checkerboards back into a full-volume vector.
    pub fn merge(&self, even: &[Spinor<R>], odd: &[Spinor<R>]) -> Vec<Spinor<R>> {
        let mut full = vec![Spinor::zero(); self.lattice.volume()];
        for x in 0..self.lattice.volume() {
            let cb = self.lattice.cb_index(x);
            full[x] = match self.lattice.parity(x) {
                Parity::Even => even[cb],
                Parity::Odd => odd[cb],
            };
        }
        full
    }

    /// Preconditioned source: `b'_o = b_o + ½/(4+m) · H_oe b_e`.
    pub fn prepare_source(&self, b_even: &[Spinor<R>], b_odd: &[Spinor<R>]) -> Vec<Spinor<R>> {
        let hv = self.lattice.half_volume();
        let mut tmp = vec![Spinor::zero(); hv];
        self.hopping
            .apply_parity(&mut tmp, b_even, Parity::Odd, self.grain);
        let c = R::from_f64(0.5 / self.diag());
        tmp.par_iter_mut()
            .zip(b_odd.par_iter())
            .for_each(|(t, b)| *t = *b + t.scale(c));
        tmp
    }

    /// Reconstruct the even solution: `x_e = (b_e + ½ H_eo x_o)/(4+m)`.
    pub fn reconstruct_even(&self, b_even: &[Spinor<R>], x_odd: &[Spinor<R>]) -> Vec<Spinor<R>> {
        let hv = self.lattice.half_volume();
        let mut tmp = vec![Spinor::zero(); hv];
        self.hopping
            .apply_parity(&mut tmp, x_odd, Parity::Even, self.grain);
        let inv = R::from_f64(1.0 / self.diag());
        let half = R::from_f64(0.5);
        tmp.par_iter_mut()
            .zip(b_even.par_iter())
            .for_each(|(t, b)| *t = (*b + t.scale(half)).scale(inv));
        tmp
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> LinearOp<R> for PrecWilson<'a, R, G> {
    fn vec_len(&self) -> usize {
        self.lattice.half_volume()
    }

    fn apply(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let hv = self.lattice.half_volume();
        let a = R::from_f64(self.diag());
        let c = R::from_f64(0.25 / self.diag());
        match self.variant {
            DslashVariant::AosScalar | DslashVariant::Soa => {
                let mut even = vec![Spinor::zero(); hv];
                self.hopping
                    .apply_parity(&mut even, inp, Parity::Even, self.grain);
                self.hopping
                    .apply_parity(out, &even, Parity::Odd, self.grain);
                out.par_iter_mut().zip(inp.par_iter()).for_each(|(o, i)| {
                    *o = i.scale(a) - o.scale(c);
                });
            }
            // Fused: the second hop's diagonal combination (`i·a − h·c`) is
            // folded into its output write — the identical value chain, one
            // fewer full pass, and a reused intermediate buffer.
            DslashVariant::AosFused => {
                let mut even = self.scratch.lock();
                if even.len() != hv {
                    even.resize(hv, Spinor::zero());
                }
                self.hopping
                    .apply_parity(&mut even, inp, Parity::Even, self.grain);
                self.hopping.apply_parity_fused_5d(
                    out,
                    &even,
                    Parity::Odd,
                    1,
                    self.grain,
                    &|_, cb, h| inp[cb].scale(a) - h.scale(c),
                );
            }
        }
    }

    fn flops_per_apply(&self) -> f64 {
        // Two half-volume hopping applications + the diagonal combination.
        self.lattice.volume() as f64 * (HOPPING_FLOPS_PER_SITE + 48.0)
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> DiracOp<R> for PrecWilson<'a, R, G> {
    fn apply_dagger(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>]) {
        let g5in: Vec<Spinor<R>> = inp.par_iter().map(|s| s.apply_gamma5()).collect();
        self.apply(out, &g5in);
        out.par_iter_mut().for_each(|s| *s = s.apply_gamma5());
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> BlockLinearOp<R> for PrecWilson<'a, R, G> {
    fn apply_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize) {
        let hv = self.lattice.half_volume();
        let mut even = vec![Spinor::zero(); hv * nrhs];
        self.hopping
            .apply_parity_block(&mut even, inp, Parity::Even, nrhs, self.grain);
        self.hopping
            .apply_parity_block(out, &even, Parity::Odd, nrhs, self.grain);
        let a = R::from_f64(self.diag());
        let c = R::from_f64(0.25 / self.diag());
        out.par_iter_mut().zip(inp.par_iter()).for_each(|(o, i)| {
            *o = i.scale(a) - o.scale(c);
        });
    }
}

impl<'a, R: Real, G: GaugeLinks<R>> BlockDiracOp<R> for PrecWilson<'a, R, G> {
    fn apply_dagger_block(&self, out: &mut [Spinor<R>], inp: &[Spinor<R>], nrhs: usize) {
        let g5in: Vec<Spinor<R>> = inp.par_iter().map(|s| s.apply_gamma5()).collect();
        self.apply_block(out, &g5in, nrhs);
        out.par_iter_mut().for_each(|s| *s = s.apply_gamma5());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;
    use crate::field::{FermionField, GaugeField};

    #[test]
    fn constant_mode_on_periodic_cold_gauge_has_eigenvalue_m() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::cold(&lat);
        let d = WilsonDirac::new(&lat, &gauge, 0.3, false);
        let mut psi = FermionField::zeros(lat.volume());
        for s in psi.data.iter_mut() {
            *s = Spinor::unit(1, 2);
        }
        let mut out = vec![Spinor::zero(); lat.volume()];
        d.apply(&mut out, &psi.data);
        for x in 0..lat.volume() {
            let expect = psi.data[x].scale(0.3);
            assert!((out[x] - expect).norm_sqr() < 1e-20, "D ψ0 = m ψ0");
        }
    }

    #[test]
    fn gamma5_hermiticity_of_wilson() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 21);
        let d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let x = FermionField::<f64>::gaussian(lat.volume(), 1).data;
        let y = FermionField::<f64>::gaussian(lat.volume(), 2).data;
        // ⟨x, D y⟩ = ⟨D† x, y⟩
        let mut dy = vec![Spinor::zero(); lat.volume()];
        d.apply(&mut dy, &y);
        let mut ddag_x = vec![Spinor::zero(); lat.volume()];
        d.apply_dagger(&mut ddag_x, &x);
        let lhs = blas::dot(&x, &dy);
        let rhs = blas::dot(&ddag_x, &y);
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    #[test]
    fn prec_operator_is_gamma5_hermitian() {
        let lat = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 23);
        let m = PrecWilson::new(&lat, &gauge, 0.05, true);
        let hv = lat.half_volume();
        let x = FermionField::<f64>::gaussian(hv, 3).data;
        let y = FermionField::<f64>::gaussian(hv, 4).data;
        let mut my = vec![Spinor::zero(); hv];
        m.apply(&mut my, &y);
        let mut mdag_x = vec![Spinor::zero(); hv];
        m.apply_dagger(&mut mdag_x, &x);
        let lhs = blas::dot(&x, &my);
        let rhs = blas::dot(&mdag_x, &y);
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    #[test]
    fn schur_complement_matches_block_elimination() {
        // For a random full-volume vector ψ with D ψ = b, the Schur identity
        // M̂ ψ_o = b_o + ½/(4+m) H_oe b_e must hold.
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 29);
        let mass = 0.2;
        let d = WilsonDirac::new(&lat, &gauge, mass, true);
        let p = PrecWilson::new(&lat, &gauge, mass, true);

        let psi = FermionField::<f64>::gaussian(lat.volume(), 5).data;
        let mut b = vec![Spinor::zero(); lat.volume()];
        d.apply(&mut b, &psi);

        let (_, psi_o) = p.split(&psi);
        let (b_e, b_o) = p.split(&b);
        let rhs = p.prepare_source(&b_e, &b_o);

        let mut lhs = vec![Spinor::zero(); lat.half_volume()];
        p.apply(&mut lhs, &psi_o);

        let diff = blas::sub(&lhs, &rhs);
        let rel = blas::norm_sqr(&diff) / blas::norm_sqr(&rhs);
        assert!(rel < 1e-22, "Schur identity violated: rel {rel}");
    }

    #[test]
    fn reconstruct_even_recovers_full_solution() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 31);
        let mass = 0.2;
        let d = WilsonDirac::new(&lat, &gauge, mass, true);
        let p = PrecWilson::new(&lat, &gauge, mass, true);

        let psi = FermionField::<f64>::gaussian(lat.volume(), 6).data;
        let mut b = vec![Spinor::zero(); lat.volume()];
        d.apply(&mut b, &psi);

        let (psi_e, psi_o) = p.split(&psi);
        let (b_e, _) = p.split(&b);
        let x_e = p.reconstruct_even(&b_e, &psi_o);
        let diff = blas::sub(&x_e, &psi_e);
        assert!(blas::norm_sqr(&diff) / blas::norm_sqr(&psi_e) < 1e-22);
    }

    #[test]
    fn wilson_variants_are_bit_identical() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 37);
        let mut d = WilsonDirac::new(&lat, &gauge, 0.1, true);
        let x = FermionField::<f64>::gaussian(lat.volume(), 8).data;
        let mut reference = vec![Spinor::zero(); lat.volume()];
        d.variant = DslashVariant::AosScalar;
        d.apply(&mut reference, &x);
        let variants = d.supported_variants();
        assert!(
            variants.contains(&DslashVariant::Soa),
            "x-extent 4 supports SoA"
        );
        for v in variants {
            d.variant = v;
            let mut out = vec![Spinor::zero(); lat.volume()];
            d.apply(&mut out, &x);
            assert_eq!(out, reference, "variant {v:?}");
        }
    }

    #[test]
    fn prec_wilson_variants_are_bit_identical() {
        let lat = Lattice::new([4, 4, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, 39);
        let mut p = PrecWilson::new(&lat, &gauge, 0.1, true);
        let hv = lat.half_volume();
        let x = FermionField::<f64>::gaussian(hv, 9).data;
        let mut reference = vec![Spinor::zero(); hv];
        p.variant = DslashVariant::AosScalar;
        p.apply(&mut reference, &x);
        for v in p.supported_variants() {
            p.variant = v;
            let mut out = vec![Spinor::zero(); hv];
            p.apply(&mut out, &x);
            assert_eq!(out, reference, "prec variant {v:?}");
        }
    }

    #[test]
    fn split_merge_round_trip() {
        let lat = Lattice::new([2, 2, 2, 2]);
        let gauge = GaugeField::<f64>::cold(&lat);
        let p = PrecWilson::new(&lat, &gauge, 0.0, true);
        let v = FermionField::<f64>::gaussian(lat.volume(), 7).data;
        let (e, o) = p.split(&v);
        assert_eq!(p.merge(&e, &o), v);
    }
}
