//! Cross-crate integration tests: the full application stack wired together
//! the way the paper's production runs were.

use lqcd::analysis::jackknife::jackknife;
use lqcd::autotune::Tuner;
use lqcd::core::prelude::*;
use lqcd::core::tune::tune_operator;
use lqcd::jobmgr::{
    weak_scaling_point, Cluster, ClusterConfig, MetaqScheduler, MpiFlavor, NaiveBundler, Workload,
};
use lqcd::machine::{sierra, SolverPerfModel};
use std::collections::BTreeMap;

/// Gauge generation → I/O → tuned solver → contraction → statistics, with
/// each stage from a different crate.
#[test]
fn gauge_to_correlator_through_every_crate() {
    let lat = Lattice::new([4, 4, 4, 8]);
    let mut ens = QuenchedEnsemble::cold_start(&lat, HeatbathParams { beta: 6.0, n_or: 1 }, 3);
    let configs = ens.generate(5, 3, 2);

    let dir = std::env::temp_dir().join("full_stack_test");
    std::fs::create_dir_all(&dir).unwrap();

    let mut pion_t1 = Vec::new();
    for (i, gauge) in configs.iter().enumerate() {
        // lattice-io round trip.
        let path = dir.join(format!("cfg{i}.lqio"));
        lqcd::io::write_gauge(&path, &lat, gauge, BTreeMap::new()).unwrap();
        let gauge = lqcd::io::read_gauge(&path, &lat).unwrap();

        // Autotuned Wilson solver (fast path), then the propagator.
        let tuner = Tuner::new();
        let mut d = WilsonDirac::new(&lat, &gauge, 0.4, true);
        tune_operator(&tuner, &mut d);

        let solver = PropagatorSolver::new(&lat, &gauge, SolverKind::WilsonBicgstab { mass: 0.4 });
        let (prop, stats) = solver.point_propagator(0);
        assert!(stats.iter().all(|s| s.converged));

        let pion = pion_correlator(&lat, &prop);
        assert!(pion.iter().all(|&c| c > 0.0));
        pion_t1.push((pion[1] / pion[2]).ln());
    }
    std::fs::remove_dir_all(&dir).ok();

    // lqcd-analysis: jackknife the effective mass across configs.
    let est = jackknife(&pion_t1, |s| s.iter().sum::<f64>() / s.len() as f64);
    assert!(est.mean > 0.0, "pion effective mass positive: {est:?}");
    assert!(est.error.is_finite());
}

/// The machine model, autotuner, and job simulator agree on the headline
/// weak-scaling claim: sustained rate at scale is within the 15–20%-of-peak
/// band of the paper.
#[test]
fn sierra_at_scale_sustains_paper_efficiency_band() {
    let machine = sierra();
    let p = weak_scaling_point(
        &machine,
        [48, 48, 48, 64],
        12,
        4,
        256,
        4,
        MpiFlavor::Mvapich2JmSingle,
        9,
    )
    .expect("group size decomposes the lattice");
    // Peak of the engaged partition, with the paper's 1.675 accounting.
    let peak_tflops = 256.0 * 4.0 * machine.fp32_tflops_per_node;
    let pct = 100.0 * p.pflops * 1e3 * 1.675 / peak_tflops;
    assert!(
        (10.0..25.0).contains(&pct),
        "sustained {pct}% of peak should sit in the paper's 15-20% band"
    );
}

/// The solver model's 4-node group rate and the scheduler's utilization
/// compose: aggregate sustained ≈ groups × group rate × utilization.
#[test]
fn weak_scaling_decomposes_into_rate_times_utilization() {
    let machine = sierra();
    let tuner = Tuner::new();
    let model = SolverPerfModel::new(machine.clone(), [48, 48, 48, 64], 12);
    let group = model.performance(&tuner, 16).expect("fits");

    let p = weak_scaling_point(
        &machine,
        [48, 48, 48, 64],
        12,
        4,
        64,
        4,
        MpiFlavor::SpectrumIndividual,
        5,
    )
    .expect("group size decomposes the lattice");
    let ideal_pflops = 64.0 * group.tflops / 1000.0;
    assert!(
        p.pflops < ideal_pflops,
        "scheduled rate below ideal: {} vs {}",
        p.pflops,
        ideal_pflops
    );
    assert!(
        p.pflops > 0.55 * ideal_pflops,
        "but within overheads: {} vs {}",
        p.pflops,
        ideal_pflops
    );
}

/// Schedulers preserve work: every task runs exactly once, never before its
/// dependencies, and METAQ beats naive on the same workload.
#[test]
fn scheduler_invariants_on_the_figure2_workflow() {
    let workload = Workload::figure2_workflow(2, 6, 4, 300.0, 1e14);
    let config = ClusterConfig {
        nodes: 16,
        jitter_sigma: 0.05,
        startup_failure_prob: 0.0,
        seed: 7,
    };

    let naive = NaiveBundler::run(&mut Cluster::new(sierra(), &config), &workload);
    let metaq = MetaqScheduler::run(&mut Cluster::new(sierra(), &config), &workload);

    for report in [&naive, &metaq] {
        assert_eq!(report.records.len(), workload.len());
        for t in &workload.tasks {
            let rec = &report.records[t.id];
            assert!(rec.end >= rec.start);
            for &d in &t.deps {
                assert!(report.records[d].end <= rec.start + 1e-9);
            }
        }
    }
    assert!(metaq.makespan <= naive.makespan * 1.05);
}

/// gA from the synthetic Fig. 1 analysis feeds Eq. 1 and lands on a
/// physical lifetime.
#[test]
fn ga_to_lifetime_closure() {
    use lqcd::analysis::corrmodel::A09M310;
    let model = A09M310;
    let tau = lqcd::neutron_lifetime_seconds(model.ga);
    assert!(
        (850.0..900.0).contains(&tau),
        "τ_n({}) = {tau} s should be near the measured ~880 s",
        model.ga
    );
}
