//! Property-based tests (proptest) over the core invariants listed in
//! DESIGN.md.

use lqcd::core::complex::Complex;
use lqcd::core::prelude::*;
use proptest::prelude::*;

fn arb_su3() -> impl Strategy<Value = Su3<f64>> {
    any::<u64>().prop_map(|seed| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        Su3::random(&mut rng)
    })
}

fn arb_spinor() -> impl Strategy<Value = Spinor<f64>> {
    proptest::collection::vec(-10.0f64..10.0, 24).prop_map(|v| {
        let mut s = Spinor::zero();
        for sp in 0..4 {
            for c in 0..3 {
                let k = (sp * 3 + c) * 2;
                s.s[sp].c[c] = Complex::new(v[k], v[k + 1]);
            }
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn su3_product_stays_on_group(a in arb_su3(), b in arb_su3()) {
        let c = a * b;
        prop_assert!(c.unitarity_error() < 1e-10);
        prop_assert!((c.det() - Complex::one()).abs() < 1e-10);
    }

    #[test]
    fn su3_preserves_spinor_norms(u in arb_su3(), psi in arb_spinor()) {
        let rotated = Spinor {
            s: [
                u.mul_vec(&psi.s[0]),
                u.mul_vec(&psi.s[1]),
                u.mul_vec(&psi.s[2]),
                u.mul_vec(&psi.s[3]),
            ],
        };
        prop_assert!((rotated.norm_sqr() - psi.norm_sqr()).abs()
            < 1e-9 * psi.norm_sqr().max(1.0));
    }

    #[test]
    fn chiral_projectors_decompose_any_spinor(psi in arb_spinor()) {
        let p = psi.chiral_project(true);
        let m = psi.chiral_project(false);
        prop_assert!(((p + m) - psi).norm_sqr() < 1e-20);
        prop_assert!(p.dot(&m).abs() < 1e-12);
    }

    #[test]
    fn gamma5_is_involutive_on_spinors(psi in arb_spinor()) {
        let twice = psi.apply_gamma5().apply_gamma5();
        prop_assert!((twice - psi).norm_sqr() < 1e-24);
    }

    #[test]
    fn half_precision_error_is_bounded(psi in arb_spinor()) {
        let v = vec![psi.cast::<f32>(); 4];
        let half = HalfFermionField::encode(&v);
        let back = half.decode();
        // Bound: per-site max component / 2^15, plus rounding.
        let mut max_comp = 0.0f32;
        for sp in 0..4 {
            for c in 0..3 {
                max_comp = max_comp
                    .max(v[0].s[sp].c[c].re.abs())
                    .max(v[0].s[sp].c[c].im.abs());
            }
        }
        let bound = max_comp / 32767.0 * 1.01 + 1e-12;
        for (orig, dec) in v.iter().zip(&back) {
            for sp in 0..4 {
                for c in 0..3 {
                    let d = orig.s[sp].c[c] - dec.s[sp].c[c];
                    prop_assert!(d.re.abs() <= bound && d.im.abs() <= bound);
                }
            }
        }
    }

    #[test]
    fn io_container_round_trips_random_payloads(
        values in proptest::collection::vec(-1e6f64..1e6, 1..512)
    ) {
        use std::collections::BTreeMap;
        let shape = vec![values.len()];
        let c = lqcd::io::Container::from_f64("prop", shape, &values, BTreeMap::new());
        let dir = std::env::temp_dir().join("lqcd_proptest_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{}.lqio", values.len()));
        lqcd::io::write_container(&path, &c).unwrap();
        let back = lqcd::io::read_container(&path).unwrap();
        prop_assert_eq!(back.to_f64().unwrap(), values);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blas_axpy_is_linear(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        seed in 0u64..1000
    ) {
        let x = FermionField::<f64>::gaussian(64, seed).data;
        let y = FermionField::<f64>::gaussian(64, seed + 1).data;
        // (a+b) x + y == a x + (b x + y)
        let mut lhs = y.clone();
        blas::axpy(a + b, &x, &mut lhs);
        let mut rhs = y.clone();
        blas::axpy(b, &x, &mut rhs);
        blas::axpy(a, &x, &mut rhs);
        let diff = blas::sub(&lhs, &rhs);
        prop_assert!(blas::norm_sqr(&diff) < 1e-18 * blas::norm_sqr(&lhs).max(1.0));
    }

    #[test]
    fn wilson_operator_is_linear(seed in 0u64..500, a in -3.0f64..3.0) {
        let lat = Lattice::new([4, 4, 2, 2]);
        let gauge = GaugeField::<f64>::hot(&lat, seed);
        let d = WilsonDirac::new(&lat, &gauge, 0.2, true);
        let x = FermionField::<f64>::gaussian(lat.volume(), seed + 1).data;
        let y = FermionField::<f64>::gaussian(lat.volume(), seed + 2).data;

        // D(a x + y) == a D(x) + D(y)
        let mut axy = y.clone();
        blas::axpy(a, &x, &mut axy);
        let mut lhs = vec![Spinor::zero(); lat.volume()];
        d.apply(&mut lhs, &axy);

        let mut dx = vec![Spinor::zero(); lat.volume()];
        d.apply(&mut dx, &x);
        let mut rhs = vec![Spinor::zero(); lat.volume()];
        d.apply(&mut rhs, &y);
        blas::axpy(a, &dx, &mut rhs);

        let diff = blas::sub(&lhs, &rhs);
        prop_assert!(blas::norm_sqr(&diff) < 1e-18 * blas::norm_sqr(&lhs).max(1.0));
    }

    #[test]
    fn decomposition_always_covers_the_lattice(
        gx in 0u32..4, gy in 0u32..4, gz in 0u32..4, gt in 0u32..5
    ) {
        use lqcd::machine::Decomposition;
        let n_gpus = (1usize << gx) * (1 << gy) * (1 << gz) * (1 << gt);
        if let Some(d) = Decomposition::best([48, 48, 48, 64], 12, n_gpus, 4) {
            prop_assert_eq!(d.grid.iter().product::<usize>(), n_gpus);
            for mu in 0..4 {
                prop_assert_eq!(d.local_dims[mu] * d.grid[mu], [48, 48, 48, 64][mu]);
                prop_assert!(d.local_dims[mu] >= 2);
            }
            prop_assert!(d.surface_fraction() <= 1.0);
            let (intra, inter) = d.halo_bytes();
            prop_assert!(intra >= 0.0 && inter >= 0.0);
        }
    }

    #[test]
    fn multishift_identity_holds(seed in 0u64..200, sigma in 0.01f64..2.0) {
        // Solving (A + σ) with multishift at [0, σ] matches applying
        // (A + σ) to the shifted solution and recovering b.
        use lqcd::core::dirac::{NormalOp, WilsonDirac, LinearOp};
        use lqcd::core::solver::multishift_cg;
        let lat = Lattice::new([2, 2, 2, 4]);
        let gauge = GaugeField::<f64>::hot(&lat, seed);
        let d = WilsonDirac::new(&lat, &gauge, 0.4, true);
        let a = NormalOp::new(&d);
        let b = FermionField::<f64>::gaussian(lat.volume(), seed + 1).data;
        let (xs, stats) = multishift_cg(
            &a,
            &[0.0, sigma],
            &b,
            CgParams { tol: 1e-10, max_iter: 5000 },
        );
        prop_assert!(stats.converged);
        let mut ax = vec![Spinor::zero(); lat.volume()];
        a.apply(&mut ax, &xs[1]);
        blas::axpy(sigma, &xs[1], &mut ax);
        let diff = blas::sub(&ax, &b);
        let rel = blas::norm_sqr(&diff) / blas::norm_sqr(&b);
        prop_assert!(rel < 1e-14, "shifted residual {}", rel);
    }

    #[test]
    fn placement_never_double_books_gpus(
        n_jobs in 1usize..5, job_gpus in prop::sample::select(vec![4usize, 8, 12, 16]),
        nodes in 4usize..16
    ) {
        use lqcd::jobmgr::place_jobs;
        if let Some(placements) = place_jobs(n_jobs, job_gpus, nodes, 6) {
            let mut used = std::collections::HashSet::new();
            for p in &placements {
                let mut total = 0;
                for (node, gpus) in &p.assignment {
                    for &g in gpus {
                        prop_assert!(used.insert((*node, g)), "GPU double-booked");
                        total += 1;
                    }
                }
                prop_assert_eq!(total, job_gpus);
                prop_assert!(p.relative_rate > 0.0 && p.relative_rate <= 1.0);
            }
        }
    }

    #[test]
    fn jackknife_error_is_nonnegative_and_mean_exact(
        samples in proptest::collection::vec(-100.0f64..100.0, 4..64)
    ) {
        let est = lqcd::analysis::jackknife::jackknife(&samples, |s| {
            s.iter().sum::<f64>() / s.len() as f64
        });
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((est.mean - mean).abs() < 1e-9);
        prop_assert!(est.error >= 0.0);
    }

    #[test]
    fn crc_detects_any_single_byte_change(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        at in any::<prop::sample::Index>(),
        delta in 1u8..=255
    ) {
        let base = lqcd::io::crc32c::crc32c(&data);
        let mut corrupt = data.clone();
        let i = at.index(corrupt.len());
        corrupt[i] = corrupt[i].wrapping_add(delta);
        prop_assert_ne!(lqcd::io::crc32c::crc32c(&corrupt), base);
    }
}
