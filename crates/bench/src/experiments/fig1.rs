//! Fig. 1: the Feynman–Hellmann effective axial coupling versus the
//! traditional three-point ratios on the a09m310 spectral model.
//!
//! Reproduced series:
//! - grey points: FH `g_eff(t)` with jackknife errors at `N_FH` configs —
//!   precise at small `t`, exponentially noisy at large `t`;
//! - black points: the same data after subtracting the fitted excited-state
//!   contamination;
//! - blue band: the fit's `gA ± σ`;
//! - colored points: traditional ratios at `t_sep ∈ {10, 12, 14}` with an
//!   order of magnitude larger sample, sitting at large `t` with large
//!   errors (and visibly biased at the smaller separations).

use crate::output::{print_table, ExperimentOutput};
use lqcd_analysis::corrmodel::{SyntheticEnsemble, A09M310};
use lqcd_analysis::fit::{curve_fit, FitSettings};
use lqcd_analysis::jackknife::jackknife_vector;

/// Numeric results of the Fig. 1 reproduction, for tests and reporting.
pub struct Fig1Result {
    /// Fitted gA.
    pub ga: f64,
    /// Fit error on gA.
    pub ga_err: f64,
    /// χ²/dof of the FH fit.
    pub chi2_dof: f64,
    /// (t, g_eff, error) FH series.
    pub fh_series: Vec<(f64, f64, f64)>,
    /// (t_sep, ratio, error) traditional series.
    pub trad_series: Vec<(f64, f64, f64)>,
}

/// Run the Fig. 1 analysis.
pub fn run(out: &ExperimentOutput, n_fh: usize, n_trad: usize, seed: u64) -> Fig1Result {
    let model = A09M310;
    let t_max = 14;

    // FH ensemble and jackknifed effective coupling.
    let ens = model.generate(n_fh, t_max, seed);
    let idx: Vec<usize> = (0..n_fh).collect();
    let est = jackknife_vector(&idx, |ii| {
        let c2: Vec<Vec<f64>> = ii.iter().map(|&i| ens.c2pt[i].clone()).collect();
        let cf: Vec<Vec<f64>> = ii.iter().map(|&i| ens.cfh[i].clone()).collect();
        SyntheticEnsemble::effective_ga_of(&c2, &cf)
    });

    // Correlated-in-t fit of gA + b e^{-ΔE t} over the early-time window.
    let window: Vec<usize> = (2..=10).collect();
    let xs: Vec<f64> = window.iter().map(|&t| t as f64).collect();
    let ys: Vec<f64> = window.iter().map(|&t| est[t].mean).collect();
    let ss: Vec<f64> = window.iter().map(|&t| est[t].error.max(1e-9)).collect();
    let de = model.de;
    let fit = curve_fit(
        &xs,
        &ys,
        &ss,
        |x, p| p[0] + p[1] * (-de * x).exp(),
        &[1.2, -0.3],
        &FitSettings::default(),
    );

    let fh_series: Vec<(f64, f64, f64)> = (1..est.len())
        .map(|t| (t as f64, est[t].mean, est[t].error))
        .collect();

    // Traditional ratios at three separations, 10x the statistics.
    let trad_series: Vec<(f64, f64, f64)> = [10usize, 12, 14]
        .iter()
        .map(|&tsep| {
            let samples = model.traditional_samples(tsep, n_trad, seed + tsep as u64);
            let mean: f64 = samples.iter().sum::<f64>() / n_trad as f64;
            let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / (n_trad as f64 - 1.0);
            (tsep as f64, mean, (var / n_trad as f64).sqrt())
        })
        .collect();

    // Console report.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (t, g, e) in &fh_series {
        let sub = g - fit.params[1] * (-de * t).exp();
        rows.push(vec![
            format!("{t:.0}"),
            format!("{g:.4} ± {e:.4}"),
            format!("{sub:.4}"),
        ]);
    }
    print_table(
        &format!("Fig. 1 — FH effective gA (N = {n_fh} configs)"),
        &["t", "g_eff (grey)", "excited-subtracted (black)"],
        &rows,
    );
    let rows: Vec<Vec<String>> = trad_series
        .iter()
        .map(|(t, g, e)| vec![format!("{t:.0}"), format!("{g:.4} ± {e:.4}")])
        .collect();
    print_table(
        &format!("Fig. 1 — traditional ratios (N = {n_trad} configs)"),
        &["t_sep", "R(t_sep)"],
        &rows,
    );
    println!(
        "\nFH fit over t in [2,10]: gA = {:.4} ± {:.4} (chi2/dof = {:.2})",
        fit.params[0],
        fit.errors[0],
        fit.chi2_per_dof()
    );

    // Model-average over fit windows with Akaike weights (the production
    // analysis does not hand-pick a window).
    // Vary t_min over 1..6 at fixed t_max = 10 (beyond which the data carry
    // no weight anyway).
    let t_hi = 10usize;
    let xs_all: Vec<f64> = (1..=t_hi).map(|t| t as f64).collect();
    let ys_all: Vec<f64> = (1..=t_hi).map(|t| est[t].mean).collect();
    let ss_all: Vec<f64> = (1..=t_hi).map(|t| est[t].error.max(1e-9)).collect();
    let avg = lqcd_analysis::modelavg::model_average(
        &xs_all,
        &ys_all,
        &ss_all,
        |x, p| p[0] + p[1] * (-de * x).exp(),
        &[1.2, -0.3],
        0..6,
        6,
        0,
    );
    println!(
        "model average over fit windows: gA = {:.4} ± {:.4} (stat {:.4}, window {:.4})",
        avg.value, avg.error, avg.stat_error, avg.model_error
    );
    println!("paper (a09m310-style target): gA = 1.271; 1%-level determination");

    // CSVs.
    let fh_rows: Vec<Vec<f64>> = fh_series.iter().map(|&(a, b, c)| vec![a, b, c]).collect();
    out.csv("fig1_fh.csv", "t,geff,err", &fh_rows).expect("csv");
    let tr_rows: Vec<Vec<f64>> = trad_series.iter().map(|&(a, b, c)| vec![a, b, c]).collect();
    out.csv("fig1_traditional.csv", "tsep,ratio,err", &tr_rows)
        .expect("csv");
    out.csv(
        "fig1_fit.csv",
        "ga,ga_err,b,b_err,chi2_dof",
        &[vec![
            fit.params[0],
            fit.errors[0],
            fit.params[1],
            fit.errors[1],
            fit.chi2_per_dof(),
        ]],
    )
    .expect("csv");

    Fig1Result {
        ga: fit.params[0],
        ga_err: fit.errors[0],
        chi2_dof: fit.chi2_per_dof(),
        fh_series,
        trad_series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_recovers_ga_at_percent_level() {
        let out = ExperimentOutput::new(std::env::temp_dir().join("fig1_test")).unwrap();
        let r = run(&out, 800, 8000, 12345);
        assert!(
            (r.ga - 1.271).abs() < 4.0 * r.ga_err + 0.015,
            "gA {} ± {} vs 1.271",
            r.ga,
            r.ga_err
        );
        assert!(r.ga_err < 0.02, "the FH fit reaches ~1% precision");
        assert!(r.chi2_dof < 3.0);
        // Noise at the largest FH time dwarfs the small-t noise.
        let small_t_err = r.fh_series[2].2;
        let large_t_err = r.fh_series.last().unwrap().2;
        assert!(large_t_err > 5.0 * small_t_err);
    }
}
