//! Ablation studies of the paper's design choices:
//!
//! 1. communication-policy autotuning on/off (the §V innovation),
//! 2. reliable-update threshold δ of the mixed-precision solver,
//! 3. inner solver precision: double vs single vs 16-bit gauge storage,
//! 4. `mpi_jm` block boundaries (anti-fragmentation) on/off,
//! 5. Summit partial-node placement with and without backfill mitigation.

use crate::output::{print_table, ExperimentOutput};
use autotune::Tuner;
use coral_machine::{sierra, summit, CommPolicy, SolverPerfModel};
use lqcd_core::dirac::NormalOp;
use lqcd_core::prelude::*;
use mpi_jm::{bundle_throughput, place_jobs};

/// Ablation 1: autotuned communication policy versus every fixed policy,
/// across GPU counts on Sierra. Prints the regret of each fixed choice.
pub fn run_policy_ablation(out: &ExperimentOutput) {
    let tuner = Tuner::new();
    let model = SolverPerfModel::new(sierra(), [48, 48, 48, 64], 12);
    let counts = [4usize, 16, 64, 128];
    let policies = CommPolicy::available(&sierra());

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &g in &counts {
        let tuned = model.performance(&tuner, g).expect("decomposable").tflops;
        let mut row = vec![g.to_string(), format!("{tuned:.1}")];
        let mut csv_row = vec![g as f64, tuned];
        for p in &policies {
            let fixed = model
                .performance_with_policy(g, *p)
                .expect("decomposable")
                .tflops;
            row.push(format!("{:.1}%", 100.0 * (1.0 - fixed / tuned)));
            csv_row.push(fixed);
        }
        rows.push(row);
        csv.push(csv_row);
    }
    let mut headers: Vec<String> = vec!["GPUs".into(), "tuned TFLOPS".into()];
    headers.extend(policies.iter().map(|p| format!("regret {}", p.label())));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Ablation — communication-policy autotuning (Sierra, 48^3x64)",
        &hdr_refs,
        &rows,
    );
    println!(
        "\nno single fixed policy is optimal at every scale — the reason the \
         paper extended the autotuner to communication policies"
    );
    out.csv("ablation_policy.csv", "gpus,tuned_tflops,p0,p1,p2,p3", &csv)
        .expect("csv");
}

/// Ablation 2+3: mixed-precision solver — reliable-update threshold sweep
/// and inner-precision comparison, on a real Wilson system.
pub fn run_solver_ablation(out: &ExperimentOutput) {
    let lat = Lattice::new([4, 4, 4, 8]);
    let gauge64 = GaugeField::<f64>::hot(&lat, 21);
    let gauge32 = gauge64.cast::<f32>();
    let half = HalfGaugeField::from_gauge(&gauge64);
    let b = FermionField::<f64>::gaussian(lat.volume(), 2).data;
    let outer = CgParams {
        tol: 1e-10,
        max_iter: 50_000,
    };

    let d64 = WilsonDirac::new(&lat, &gauge64, 0.3, true);
    let d32 = WilsonDirac::new(&lat, &gauge32, 0.3, true);
    let dh = WilsonDirac::new(&lat, &half, 0.3, true);
    let n64 = NormalOp::new(&d64);
    let n32 = NormalOp::new(&d32);
    let nh = NormalOp::new(&dh);

    // δ sweep at single inner precision.
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &delta in &[0.5, 0.25, 0.1, 0.03, 0.01] {
        let mut x = vec![Spinor::zero(); lat.volume()];
        let s = mixed_cg(
            &n64,
            &n32,
            &mut x,
            &b,
            MixedParams {
                outer,
                delta,
                max_inner: 10_000,
            },
        );
        rows.push(vec![
            format!("{delta}"),
            s.iterations.to_string(),
            s.reliable_updates.to_string(),
            format!("{}", s.converged),
        ]);
        csv.push(vec![delta, s.iterations as f64, s.reliable_updates as f64]);
    }
    print_table(
        "Ablation — reliable-update threshold δ (double/single, Wilson CGNE)",
        &["delta", "inner iterations", "reliable updates", "converged"],
        &rows,
    );
    out.csv(
        "ablation_delta.csv",
        "delta,iterations,reliable_updates",
        &csv,
    )
    .expect("csv");

    // Precision strategies at δ = 0.1.
    let mut rows = Vec::new();
    let mut x = vec![Spinor::zero(); lat.volume()];
    let s_double = cg(
        &n64,
        &mut x,
        {
            // Build D†b once for a fair CGNE comparison.
            let mut rhs = vec![Spinor::zero(); lat.volume()];
            use lqcd_core::dirac::DiracOp;
            d64.apply_dagger(&mut rhs, &b);
            &rhs.clone()
        },
        outer,
    );
    rows.push(vec![
        "pure double".into(),
        s_double.iterations.to_string(),
        "0".into(),
        format!("{:.2e}", s_double.flops),
    ]);
    for (name, s) in [
        ("double/single", {
            let mut x = vec![Spinor::zero(); lat.volume()];
            mixed_cg(
                &n64,
                &n32,
                &mut x,
                &b,
                MixedParams {
                    outer,
                    ..MixedParams::default()
                },
            )
        }),
        ("double/half-gauge", {
            let mut x = vec![Spinor::zero(); lat.volume()];
            mixed_cg(
                &n64,
                &nh,
                &mut x,
                &b,
                MixedParams {
                    outer,
                    ..MixedParams::default()
                },
            )
        }),
    ] {
        assert!(s.converged, "{name} failed: {s:?}");
        rows.push(vec![
            name.into(),
            s.iterations.to_string(),
            s.reliable_updates.to_string(),
            format!("{:.2e}", s.flops),
        ]);
    }
    print_table(
        "Ablation — inner precision (tol 1e-10)",
        &["strategy", "iterations", "reliable updates", "flops"],
        &rows,
    );
    println!(
        "\nthe double/half path pays a few extra iterations but moves ~1.8x \
         fewer bytes per stencil — the bandwidth-bound win the paper exploits"
    );
}

/// Ablation 5: the Summit 3×16-GPU placement with/without backfilling.
pub fn run_placement(out: &ExperimentOutput) {
    let placements = place_jobs(3, 16, 8, summit().gpus_per_node).expect("48 GPUs");
    let mut rows = Vec::new();
    for (i, p) in placements.iter().enumerate() {
        rows.push(vec![
            format!("job {}", i + 1),
            format!("{} GPUs/node", p.gpus_per_node),
            format!("{} nodes", p.assignment.len()),
            format!("{:.2}", p.relative_rate),
        ]);
    }
    print_table(
        "Summit placement — three 16-GPU jobs on 8 six-GPU nodes (§VII)",
        &["job", "occupancy", "span", "relative rate"],
        &rows,
    );
    let (without, with) = bundle_throughput(&placements);
    println!(
        "\nbundle throughput vs ideal: {:.2} without backfill, {:.2} with \
         (paper: 'largely mitigated by the backfilling capability of mpi_jm')",
        without, with
    );
    out.csv(
        "ablation_placement.csv",
        "job,gpus_per_node,nodes,relative_rate",
        &placements
            .iter()
            .enumerate()
            .map(|(i, p)| {
                vec![
                    i as f64,
                    p.gpus_per_node as f64,
                    p.assignment.len() as f64,
                    p.relative_rate,
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("csv");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_run() {
        let out = ExperimentOutput::new(std::env::temp_dir().join("ablation_test")).unwrap();
        run_policy_ablation(&out);
        run_solver_ablation(&out);
        run_placement(&out);
    }
}
